"""Unit tests for distance helpers, relaxation application and buckets."""

import numpy as np
import pytest

from repro.core.buckets import NO_BUCKET, bucket_index, bucket_members, next_bucket
from repro.core.distances import INF, init_distances, is_reached, settled_fraction
from repro.core.relax import apply_relaxations


class TestDistances:
    def test_init(self):
        d = init_distances(5, 2)
        assert d[2] == 0
        assert np.all(d[[0, 1, 3, 4]] == INF)

    def test_init_root_bounds(self):
        with pytest.raises(ValueError):
            init_distances(5, 5)
        with pytest.raises(ValueError):
            init_distances(5, -1)

    def test_inf_is_overflow_safe(self):
        assert INF + 2**40 > 0  # no int64 wraparound for realistic sums

    def test_is_reached(self):
        d = init_distances(3, 0)
        assert list(is_reached(d)) == [True, False, False]

    def test_settled_fraction(self):
        s = np.array([True, True, False, False])
        assert settled_fraction(s) == 0.5
        assert settled_fraction(np.array([], dtype=bool)) == 1.0


class TestApplyRelaxations:
    def test_basic_improvement(self):
        d = np.array([0, 10, 10], dtype=np.int64)
        changed = apply_relaxations(d, np.array([1]), np.array([5]))
        assert list(changed) == [1]
        assert d[1] == 5

    def test_non_improving_ignored(self):
        d = np.array([0, 5], dtype=np.int64)
        changed = apply_relaxations(d, np.array([1, 1]), np.array([5, 9]))
        assert changed.size == 0
        assert d[1] == 5

    def test_duplicates_take_min(self):
        d = np.array([0, 100], dtype=np.int64)
        changed = apply_relaxations(d, np.array([1, 1, 1]), np.array([30, 10, 20]))
        assert list(changed) == [1]
        assert d[1] == 10

    def test_empty_batch(self):
        d = np.array([0, 1], dtype=np.int64)
        changed = apply_relaxations(d, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert changed.size == 0

    def test_changed_is_sorted_unique(self):
        d = np.full(10, 100, dtype=np.int64)
        dst = np.array([7, 3, 7, 5])
        nd = np.array([1, 2, 3, 4])
        changed = apply_relaxations(d, dst, nd)
        assert list(changed) == [3, 5, 7]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            apply_relaxations(np.zeros(3, np.int64), np.array([0]), np.array([1, 2]))

    def test_ties_do_not_count_as_changed(self):
        d = np.array([0, 7], dtype=np.int64)
        changed = apply_relaxations(d, np.array([1]), np.array([7]))
        assert changed.size == 0


class TestBuckets:
    def test_bucket_index(self):
        d = np.array([0, 24, 25, 49, 50, INF], dtype=np.int64)
        idx = bucket_index(d, 25)
        assert list(idx) == [0, 0, 1, 1, 2, NO_BUCKET]

    def test_bucket_members_excludes_settled(self):
        d = np.array([0, 10, 30, 60], dtype=np.int64)
        settled = np.array([True, False, False, False])
        members = bucket_members(d, settled, 0, 25)
        assert list(members) == [1]

    def test_next_bucket_skips_empty(self):
        d = np.array([0, 100], dtype=np.int64)
        settled = np.array([True, False])
        assert next_bucket(d, settled, 25) == 4

    def test_next_bucket_terminates(self):
        d = np.array([0, INF], dtype=np.int64)
        settled = np.array([True, False])
        assert next_bucket(d, settled, 25) == NO_BUCKET

    def test_delta_one_is_per_distance(self):
        d = np.array([3, 4, 4], dtype=np.int64)
        idx = bucket_index(d, 1)
        assert list(idx) == [3, 4, 4]
