"""The Graph 500 SSSP benchmark protocol (Section I-B).

The official benchmark procedure the paper's evaluation follows:

1. generate a scale-``s`` R-MAT graph with edge factor 16;
2. sample 64 search keys uniformly among vertices with degree >= 1;
3. run SSSP from each key, timing each run;
4. validate every result (structural rules, not a reference re-solve);
5. report TEPS per run and their **harmonic mean** (the official statistic
   — TEPS are rates, so the harmonic mean is the right average).

``run_graph500`` executes this protocol on the simulated machine and
reports both simulated TEPS (cost-model seconds) and the Python kernels'
wall-clock TEPS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.solver import BatchSolver
from repro.core.validation import validate_sssp_structure
from repro.graph.csr import CSRGraph
from repro.graph.rmat import RMAT1, RMATParams, rmat_graph
from repro.graph.roots import choose_roots
from repro.runtime.machine import MachineConfig

__all__ = ["Graph500Result", "run_graph500"]


def _harmonic_mean(values: np.ndarray) -> float:
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0 or np.any(values <= 0):
        return 0.0
    return float(values.size / np.sum(1.0 / values))


@dataclass
class Graph500Result:
    """Aggregate outcome of one benchmark execution."""

    scale: int
    edge_factor: int
    num_edges: int
    num_roots: int
    all_valid: bool
    harmonic_mean_gteps: float
    """The official statistic, over simulated per-run TEPS."""
    mean_gteps: float
    min_gteps: float
    max_gteps: float
    harmonic_mean_wall_gteps: float
    """Same statistic over the Python kernels' wall-clock TEPS."""
    per_root: list[dict[str, float | int | bool]] = field(default_factory=list)

    def summary(self) -> dict[str, float | int | bool]:
        return {
            "scale": self.scale,
            "edge_factor": self.edge_factor,
            "m": self.num_edges,
            "roots": self.num_roots,
            "valid": self.all_valid,
            "hmean_gteps": self.harmonic_mean_gteps,
            "min_gteps": self.min_gteps,
            "max_gteps": self.max_gteps,
            "hmean_wall_gteps": self.harmonic_mean_wall_gteps,
        }


def run_graph500(
    scale: int,
    *,
    edge_factor: int = 16,
    params: RMATParams = RMAT1,
    num_roots: int = 64,
    algorithm: str = "opt",
    delta: int = 25,
    machine: MachineConfig | None = None,
    num_ranks: int = 8,
    threads_per_rank: int = 16,
    seed: int = 0,
    graph: CSRGraph | None = None,
) -> Graph500Result:
    """Execute the Graph 500 SSSP protocol on the simulated machine.

    Pass ``graph`` to benchmark a pre-built (e.g. real-world) graph instead
    of generating an R-MAT instance; ``scale``/``params`` are then ignored
    for generation but still reported.
    """
    if num_roots < 1:
        raise ValueError("num_roots must be >= 1")
    if graph is None:
        graph = rmat_graph(scale, edge_factor, params, seed=seed)
    graph = graph.sorted_by_weight()
    roots = choose_roots(graph, num_roots, seed=seed + 1)

    per_root: list[dict[str, float | int | bool]] = []
    sim_gteps = []
    wall_gteps = []
    all_valid = True
    m = graph.num_undirected_edges
    solver = BatchSolver(
        graph,
        algorithm=algorithm,
        delta=delta,
        machine=machine,
        num_ranks=num_ranks,
        threads_per_rank=threads_per_rank,
    )
    for root in roots:
        res = solver.solve(int(root))
        report = validate_sssp_structure(graph, int(root), res.distances)
        all_valid &= report.valid
        wall = m / res.wall_time_s / 1e9 if res.wall_time_s > 0 else 0.0
        sim_gteps.append(res.gteps)
        wall_gteps.append(wall)
        per_root.append(
            {
                "root": int(root),
                "valid": report.valid,
                "reached": report.num_reached,
                "max_distance": report.max_distance,
                "sim_gteps": res.gteps,
                "wall_gteps": wall,
                "relaxations": res.metrics.total_relaxations,
            }
        )

    sim = np.asarray(sim_gteps)
    return Graph500Result(
        scale=scale,
        edge_factor=edge_factor,
        num_edges=m,
        num_roots=len(roots),
        all_valid=all_valid,
        harmonic_mean_gteps=_harmonic_mean(sim),
        mean_gteps=float(sim.mean()),
        min_gteps=float(sim.min()),
        max_gteps=float(sim.max()),
        harmonic_mean_wall_gteps=_harmonic_mean(np.asarray(wall_gteps)),
        per_root=per_root,
    )
