"""Snapshot-versioned graphs: immutable lineage with bounded retention.

:class:`GraphVersioner` owns the mutation history of one live graph.
Every :meth:`~GraphVersioner.apply` call runs an
:class:`~repro.dynamic.updates.UpdateBatch` through
:func:`~repro.dynamic.updates.apply_batch` and mints a new
:class:`GraphSnapshot` — an immutable ``(snapshot_id, CSRGraph, digest,
parent_id, delta)`` record. Snapshot ids are dense integers starting at
0 (the seed graph); they are the version half of every
``(snapshot_id, root)`` distance-cache key and the ``snapshot_id``
field on wide events.

Two serving-plane needs shape the class:

- **Structural digests** — a SHA-256 over the CSR arrays plus the
  directedness flag, computed lazily and memoised. Two snapshots with
  equal digests are byte-identical graphs, which is what replay
  verification and cross-process cache audits compare.
- **Bounded retention** — only the newest ``retention`` snapshots stay
  resident (graphs, contexts, digests). :meth:`apply` returns the ids it
  retired so the caller (the broker's epoch handoff) can evict dependent
  state; asking for a retired snapshot raises ``KeyError``.

:meth:`context_for` memoises one preprocessed
:class:`~repro.core.context.ExecutionContext` per resident snapshot —
the weight-sort / short-long split / partition work is paid once per
snapshot, not per repair.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.dynamic.updates import EdgeDelta, UpdateBatch, apply_batch
from repro.graph.csr import CSRGraph

__all__ = ["GraphSnapshot", "GraphVersioner", "structural_digest"]


def structural_digest(graph: CSRGraph) -> str:
    """SHA-256 hex digest of the CSR arrays and the directedness flag.

    Canonical over graph *structure*: two graphs with identical
    ``indptr``/``adj``/``weights``/``undirected`` digest equally
    regardless of how they were constructed or whether they have been
    weight-sorted (sorting produces a different graph object and a
    different digest — digest the snapshot graph, not derived views).
    """
    h = hashlib.sha256()
    h.update(b"csr-v1")
    h.update(b"U" if graph.undirected else b"D")
    for arr in (graph.indptr, graph.adj, graph.weights):
        h.update(arr.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class GraphSnapshot:
    """One immutable version of the live graph.

    ``delta`` and ``batch`` describe the transition *from* ``parent_id``
    (both ``None`` on the seed snapshot 0).
    """

    snapshot_id: int
    graph: CSRGraph
    parent_id: int | None = None
    delta: EdgeDelta | None = None
    batch: UpdateBatch | None = None


class GraphVersioner:
    """Mint and retain snapshot-versioned graphs.

    Parameters
    ----------
    graph:
        The seed graph; becomes snapshot 0.
    machine, config:
        Defaults for :meth:`context_for`. Optional — required only when
        contexts are requested without explicit overrides.
    retention:
        How many snapshots (newest-first) stay resident. Must be >= 1.

    Thread safety: all public methods take one internal lock; ``apply``
    is serialized against concurrent readers, which only ever observe a
    fully-minted snapshot.
    """

    def __init__(self, graph: CSRGraph, *, machine=None, config=None, retention: int = 4):
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self._lock = threading.RLock()
        self._machine = machine
        self._config = config
        self.retention = int(retention)
        self._snapshots: OrderedDict[int, GraphSnapshot] = OrderedDict()
        self._contexts: dict[int, object] = {}
        self._digests: dict[int, str] = {}
        self._next_id = 0
        self._current_id = 0
        self._mint(GraphSnapshot(snapshot_id=0, graph=graph))

    # ------------------------------------------------------------------
    def _mint(self, snap: GraphSnapshot) -> list[int]:
        self._snapshots[snap.snapshot_id] = snap
        self._current_id = snap.snapshot_id
        self._next_id = snap.snapshot_id + 1
        retired: list[int] = []
        while len(self._snapshots) > self.retention:
            old_id, _ = self._snapshots.popitem(last=False)
            self._contexts.pop(old_id, None)
            self._digests.pop(old_id, None)
            retired.append(old_id)
        return retired

    # ------------------------------------------------------------------
    @property
    def current_id(self) -> int:
        with self._lock:
            return self._current_id

    @property
    def current(self) -> GraphSnapshot:
        with self._lock:
            return self._snapshots[self._current_id]

    def ids(self) -> list[int]:
        """Resident snapshot ids, oldest first."""
        with self._lock:
            return list(self._snapshots)

    def __contains__(self, snapshot_id: int) -> bool:
        with self._lock:
            return snapshot_id in self._snapshots

    def get(self, snapshot_id: int) -> GraphSnapshot:
        with self._lock:
            try:
                return self._snapshots[snapshot_id]
            except KeyError:
                raise KeyError(
                    f"snapshot {snapshot_id} is not resident "
                    f"(retention={self.retention}, resident={list(self._snapshots)})"
                ) from None

    # ------------------------------------------------------------------
    def apply(self, batch: UpdateBatch) -> tuple[GraphSnapshot, list[int]]:
        """Apply ``batch`` to the current snapshot; mint and return the new one.

        Returns ``(snapshot, retired_ids)`` where ``retired_ids`` are the
        snapshots evicted by retention (oldest first) — the caller owns
        the cleanup of any state keyed on them.
        """
        with self._lock:
            parent = self._snapshots[self._current_id]
            new_graph, delta = apply_batch(parent.graph, batch)
            snap = GraphSnapshot(
                snapshot_id=self._next_id,
                graph=new_graph,
                parent_id=parent.snapshot_id,
                delta=delta,
                batch=batch,
            )
            retired = self._mint(snap)
            return snap, retired

    # ------------------------------------------------------------------
    def digest(self, snapshot_id: int | None = None) -> str:
        """Structural digest of ``snapshot_id`` (default: current), memoised."""
        with self._lock:
            sid = self._current_id if snapshot_id is None else snapshot_id
            cached = self._digests.get(sid)
            if cached is None:
                cached = structural_digest(self.get(sid).graph)
                self._digests[sid] = cached
            return cached

    def context_for(self, snapshot_id: int | None = None, *, machine=None, config=None):
        """Memoised :func:`~repro.core.context.make_context` per snapshot.

        ``machine``/``config`` default to the constructor's; the first
        call for a snapshot fixes the context, later calls with
        different overrides raise rather than silently returning a
        context built for other parameters.
        """
        from repro.core.context import make_context

        with self._lock:
            sid = self._current_id if snapshot_id is None else snapshot_id
            ctx = self._contexts.get(sid)
            if ctx is not None:
                if (machine is not None and machine is not ctx.machine) or (
                    config is not None and config != ctx.config
                ):
                    raise ValueError(
                        f"snapshot {sid} context already built with different "
                        "machine/config"
                    )
                return ctx
            use_machine = machine if machine is not None else self._machine
            use_config = config if config is not None else self._config
            if use_machine is None or use_config is None:
                raise ValueError(
                    "context_for needs machine and config (constructor defaults unset)"
                )
            ctx = make_context(self.get(sid).graph, use_machine, use_config)
            self._contexts[sid] = ctx
            return ctx
