"""Property-based tests (hypothesis) for the core invariants.

The headline invariant — every distributed variant returns exactly the
sequential Dijkstra distances — is exercised over randomly drawn graphs,
weights, bucket widths, machine shapes and optimisation flags.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.buckets import bucket_index
from repro.core.config import DELTA_INFINITY, SolverConfig
from repro.core.load_balance import _occurrence_index, split_heavy_vertices
from repro.core.reference import dijkstra_reference
from repro.core.relax import apply_relaxations
from repro.core.solver import solve_sssp
from repro.graph.builder import compact_edges, from_undirected_edges
from repro.graph.partition import BlockPartition
from repro.runtime.machine import MachineConfig
from repro.runtime.work import thread_work, thread_work_balanced
from repro.util.ranges import concat_ranges


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def random_graphs(draw, max_n=32, max_m=96, max_w=40, min_w=1):
    """A random small undirected weighted graph plus a valid root."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    tails = rng.integers(0, n, m)
    heads = rng.integers(0, n, m)
    weights = rng.integers(min_w, max_w + 1, m).astype(np.int64)
    graph = from_undirected_edges(tails, heads, weights, n)
    deg = graph.degrees
    with_edges = np.nonzero(deg > 0)[0]
    if with_edges.size == 0:
        root = 0
    else:
        root = int(with_edges[draw(st.integers(0, int(with_edges.size) - 1))])
    return graph, root


solver_flags = st.fixed_dictionaries(
    {
        "use_ios": st.booleans(),
        "use_pruning": st.booleans(),
        "use_hybrid": st.booleans(),
        "intra_lb": st.booleans(),
        "tau": st.sampled_from([0.0, 0.4, 0.9]),
        "pushpull_mode": st.sampled_from(["auto", "push", "pull"]),
        "pushpull_estimator": st.sampled_from(["expectation", "exact"]),
    }
)


class TestSolverMatchesDijkstra:
    @settings(max_examples=60, deadline=None)
    @given(
        gr=random_graphs(),
        delta=st.sampled_from([1, 2, 7, 25, DELTA_INFINITY]),
        flags=solver_flags,
        ranks=st.sampled_from([1, 2, 3, 5]),
    )
    def test_every_variant_is_exact(self, gr, delta, flags, ranks):
        graph, root = gr
        cfg = SolverConfig(delta=delta, **flags)
        res = solve_sssp(
            graph, root, algorithm="prop", config=cfg,
            num_ranks=ranks, threads_per_rank=2,
        )
        ref = dijkstra_reference(graph, root)
        assert np.array_equal(res.distances, ref)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        n=st.integers(2, 24),
        m=st.integers(1, 60),
        delta=st.sampled_from([1, 7, 25, DELTA_INFINITY]),
        flags=solver_flags,
    )
    def test_directed_variants_are_exact(self, seed, n, m, delta, flags):
        from repro.graph.builder import from_edges

        rng = np.random.default_rng(seed)
        graph = from_edges(
            rng.integers(0, n, m),
            rng.integers(0, n, m),
            rng.integers(1, 30, m).astype(np.int64),
            n,
        )
        deg = graph.degrees
        candidates = np.nonzero(deg > 0)[0]
        root = int(candidates[0]) if candidates.size else 0
        cfg = SolverConfig(delta=delta, **flags)
        if cfg.intra_lb:
            cfg = cfg.evolve(intra_lb=True)
        res = solve_sssp(graph, root, algorithm="dir-prop", config=cfg,
                         num_ranks=2, threads_per_rank=2)
        assert np.array_equal(res.distances, dijkstra_reference(graph, root))

    @settings(max_examples=25, deadline=None)
    @given(gr=random_graphs(min_w=0))
    def test_zero_weight_edges_supported(self, gr):
        graph, root = gr
        res = solve_sssp(graph, root, algorithm="delta", delta=5,
                         num_ranks=2, threads_per_rank=2)
        assert np.array_equal(res.distances, dijkstra_reference(graph, root))

    @settings(max_examples=25, deadline=None)
    @given(gr=random_graphs(), threshold=st.integers(1, 10))
    def test_vertex_splitting_preserves_distances(self, gr, threshold):
        graph, root = gr
        split = split_heavy_vertices(graph, threshold, seed=1)
        ref = dijkstra_reference(graph, root)
        d_new = dijkstra_reference(
            split.graph, int(split.new_id_of_original[root])
        )
        assert np.array_equal(split.distances_for_original(d_new), ref)

    @settings(max_examples=20, deadline=None)
    @given(gr=random_graphs(), seed=st.integers(0, 100))
    def test_relaxation_counters_independent_of_machine_shape(self, gr, seed):
        # Work done is an algorithm property; the machine shape only changes
        # where the work lands, never how much of it there is.
        graph, root = gr
        a = solve_sssp(graph, root, algorithm="delta", delta=7,
                       num_ranks=1, threads_per_rank=1)
        b = solve_sssp(graph, root, algorithm="delta", delta=7,
                       num_ranks=4, threads_per_rank=4)
        assert a.metrics.total_relaxations == b.metrics.total_relaxations
        assert a.metrics.total_phases == b.metrics.total_phases


class TestDataStructureInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(0, 200),
        p=st.integers(1, 17),
    )
    def test_partition_tiles_vertex_space(self, n, p):
        part = BlockPartition(n, p)
        b = part.boundaries
        assert b[0] == 0 and b[-1] == n
        assert np.all(np.diff(b) >= 0)
        sizes = [part.rank_size(r) for r in range(p)]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(1, 200), p=st.integers(1, 17), seed=st.integers(0, 99))
    def test_owner_is_inverse_of_blocks(self, n, p, seed):
        part = BlockPartition(n, p)
        rng = np.random.default_rng(seed)
        v = rng.integers(0, n, 50)
        owners = np.asarray(part.owner(v))
        b = part.boundaries
        assert np.all(v >= b[owners])
        assert np.all(v < b[owners + 1])

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**31), k=st.integers(1, 30))
    def test_concat_ranges_matches_reference(self, seed, k):
        rng = np.random.default_rng(seed)
        starts = rng.integers(0, 40, k)
        ends = starts + rng.integers(0, 8, k)
        idx, owners = concat_ranges(starts, ends)
        ref = [x for s, e in zip(starts, ends) for x in range(s, e)]
        assert list(idx) == ref
        assert np.all((idx >= starts[owners]) & (idx < ends[owners]))

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**31), n=st.integers(1, 60), k=st.integers(0, 120))
    def test_apply_relaxations_is_grouped_min(self, seed, n, k):
        rng = np.random.default_rng(seed)
        d = rng.integers(0, 100, n).astype(np.int64)
        dst = rng.integers(0, n, k)
        nd = rng.integers(0, 100, k).astype(np.int64)
        expected = d.copy()
        for v, x in zip(dst, nd):
            expected[v] = min(expected[v], x)
        actual = d.copy()
        changed = apply_relaxations(actual, dst, nd)
        assert np.array_equal(actual, expected)
        assert np.array_equal(np.nonzero(actual < d)[0], changed)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**31), m=st.integers(0, 80))
    def test_compact_edges_keeps_min_weight(self, seed, m):
        rng = np.random.default_rng(seed)
        t = rng.integers(0, 10, m)
        h = rng.integers(0, 10, m)
        w = rng.integers(1, 50, m).astype(np.int64)
        ct, ch, cw = compact_edges(t, h, w)
        # no self loops, unique pairs, min weights
        assert np.all(ct != ch)
        pairs = set(zip(ct.tolist(), ch.tolist()))
        assert len(pairs) == ct.size
        ref = {}
        for a, b, x in zip(t.tolist(), h.tolist(), w.tolist()):
            if a == b:
                continue
            ref[(a, b)] = min(ref.get((a, b), 10**9), x)
        assert {(a, b): int(x) for a, b, x in zip(ct, ch, cw)} == ref

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**31), k=st.integers(0, 60))
    def test_occurrence_index_property(self, seed, k):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 8, k)
        occ = _occurrence_index(values)
        counts: dict[int, int] = {}
        for i, v in enumerate(values.tolist()):
            assert occ[i] == counts.get(v, 0)
            counts[v] = counts.get(v, 0) + 1

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        ranks=st.integers(1, 6),
        threads=st.integers(1, 6),
        threshold=st.floats(0.5, 100),
    )
    def test_thread_work_conserves_totals(self, seed, ranks, threads, threshold):
        rng = np.random.default_rng(seed)
        n = 48
        part = BlockPartition(n, ranks)
        machine = MachineConfig(num_ranks=ranks, threads_per_rank=threads)
        v = rng.integers(0, n, 30)
        u = rng.uniform(0, 20, 30)
        plain = thread_work(v, u, part, machine)
        balanced = thread_work_balanced(v, u, part, machine, threshold)
        # Work is conserved exactly; note that balancing may raise the max on
        # a thread that was already busy with light work (the spread share
        # lands on every thread of the rank), so only totals are invariant.
        assert plain.sum() == pytest.approx(u.sum())
        assert balanced.sum() == pytest.approx(u.sum())
        # Per-rank totals are preserved too: spreading is rank-internal.
        t = machine.threads_per_rank
        assert plain.reshape(ranks, t).sum(axis=1) == pytest.approx(
            balanced.reshape(ranks, t).sum(axis=1)
        )

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**31), delta=st.integers(1, 50))
    def test_bucket_index_floor_property(self, seed, delta):
        rng = np.random.default_rng(seed)
        d = rng.integers(0, 1000, 40).astype(np.int64)
        idx = bucket_index(d, delta)
        assert np.all(idx * delta <= d)
        assert np.all(d < (idx + 1) * delta)
