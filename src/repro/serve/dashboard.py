"""serve-top: a live terminal dashboard over the serving plane (§14).

Renders the broker's registry counters, latency window, breaker states,
burn rate and recent wide events as a refreshing ``top``-style text
frame. Split pure-function style for testability: :func:`snapshot` reads
everything once into a plain dict (computing instantaneous rates against
the previous snapshot), :func:`render` turns a snapshot into the frame
text, and :func:`run` loops the two with ANSI clear-and-home between
frames. The CLI's ``serve-top`` subcommand drives :func:`run` while a
background workload exercises the broker.

Read-side only: a dashboard never mutates broker state, so watching a
service cannot perturb it.
"""

from __future__ import annotations

import sys
import time

from repro.serve.slo import percentile

__all__ = ["snapshot", "render", "run"]

#: ANSI clear screen + cursor home (the classic ``top`` refresh).
CLEAR = "\x1b[2J\x1b[H"

_LADDER_GLYPH = {"closed": "·", "half-open": "◐", "open": "●"}


def snapshot(broker, *, monitor=None, prev=None) -> dict:
    """One consistent read of everything the dashboard shows.

    ``prev`` (the previous snapshot) turns cumulative counters into
    instantaneous rates over the refresh interval; with ``None`` the
    rate fields fall back to run-lifetime averages.
    """
    report = broker.report()
    now = broker._clock()
    snap: dict = {"t": now, "report": report}

    completed = report.get("completed", 0)
    offered = report.get("offered", 0)
    retries = report.get("retries", 0)
    shed = report.get("shed", 0)
    if prev is not None and now > prev["t"]:
        dt = now - prev["t"]
        prev_report = prev["report"]
        snap["qps"] = (completed - prev_report.get("completed", 0)) / dt
    else:
        snap["qps"] = report.get("throughput_qps", 0.0)
    hits = report.get("outcome_cache", 0)
    snap["hit_rate"] = hits / completed if completed else 0.0
    snap["shed_rate"] = shed / offered if offered else 0.0
    snap["retry_rate"] = retries / offered if offered else 0.0

    by_source: dict[str, dict[str, float]] = {}
    for source in ("cache", "solve", "coalesced", "degraded"):
        samples = broker.latency.samples(source)
        if samples:
            by_source[source] = {
                "n": len(samples),
                "p50_s": percentile(samples, 50),
                "p99_s": percentile(samples, 99),
            }
    snap["latency_by_source"] = by_source

    snap["breaker"] = (
        broker.breaker.states() if broker.breaker is not None else {}
    )
    snap["chaos"] = (
        broker.chaos.summary() if broker.chaos is not None else {}
    )
    snap["burn"] = monitor.summary(now=now) if monitor is not None else None
    snap["recent"] = (
        broker.events.tail(5) if broker.events is not None else []
    )
    return snap


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.2f}ms"


def render(snap: dict) -> str:
    """Render one snapshot as the serve-top frame text."""
    report = snap["report"]
    lines = [
        "serve-top — SSSP serving plane",
        (
            f"  offered {report.get('offered', 0):>7}   "
            f"completed {report.get('completed', 0):>7}   "
            f"queue {report.get('queue_depth', 0):>4}   "
            f"batches {report.get('batches', 0):>6}   "
            f"mean batch {report.get('mean_batch_size', 0.0):5.2f}"
        ),
        (
            f"  qps {snap['qps']:9.1f}   "
            f"hit {snap['hit_rate'] * 100:5.1f}%   "
            f"shed {snap['shed_rate'] * 100:5.1f}%   "
            f"retry {snap['retry_rate'] * 100:5.1f}%   "
            f"hedges {report.get('hedges', 0):>4}"
        ),
        "",
        "  latency by source        n        p50        p99",
    ]
    for source, row in snap["latency_by_source"].items():
        lines.append(
            f"    {source:<18} {int(row['n']):>7} "
            f"{_fmt_ms(row['p50_s'])} {_fmt_ms(row['p99_s'])}"
        )
    if not snap["latency_by_source"]:
        lines.append("    (no completed requests yet)")

    if snap["breaker"]:
        states = "   ".join(
            f"{cls} {_LADDER_GLYPH.get(state, '?')} {state}"
            for cls, state in sorted(snap["breaker"].items())
        )
        lines += ["", f"  breaker   {states}"]
    if snap["chaos"]:
        injected = "  ".join(
            f"{kind}={count}" for kind, count in sorted(snap["chaos"].items())
        )
        lines.append(f"  chaos     {injected}")

    burn = snap.get("burn")
    if burn is not None:
        def _burn(value: float) -> str:
            return "   n/a" if value != value else f"{value:6.2f}x"

        lines += [
            "",
            (
                f"  burn rate (objective {burn['objective'] * 100:.1f}%)   "
                f"fast {_burn(burn['burn_fast'])} "
                f"({burn['burn_fast_bad']}/{burn['burn_fast_total']} bad)   "
                f"slow {_burn(burn['burn_slow'])} "
                f"({burn['burn_slow_bad']}/{burn['burn_slow_total']} bad)"
            ),
        ]
        for alert in burn["alerts"]:
            lines.append(f"  ALERT {alert}")

    if snap["recent"]:
        lines += ["", "  recent requests"]
        for ev in snap["recent"]:
            attempts = ev.get("attempts", [])
            lat = ev.get("timing", {}).get("latency_s", 0.0)
            lines.append(
                f"    {ev.get('request_id'):<12} root={ev.get('root'):<8} "
                f"{ev.get('outcome'):<12} src={str(ev.get('source')):<10} "
                f"attempts={len(attempts)} {_fmt_ms(lat)}"
            )
    return "\n".join(lines) + "\n"


def run(
    broker,
    *,
    monitor=None,
    refresh_s: float = 0.5,
    frames: int | None = None,
    clear: bool = True,
    out=None,
    should_stop=None,
) -> int:
    """Refresh loop: snapshot → render → sleep, until ``frames`` frames
    are drawn or ``should_stop()`` turns true. Returns frames drawn.
    ``clear=False`` appends frames instead of redrawing in place (CI and
    non-TTY logs)."""
    stream = out if out is not None else sys.stdout
    prev = None
    drawn = 0
    while frames is None or drawn < frames:
        snap = snapshot(broker, monitor=monitor, prev=prev)
        text = render(snap)
        stream.write((CLEAR + text) if clear else text + "\n")
        stream.flush()
        prev = snap
        drawn += 1
        if should_stop is not None and should_stop():
            break
        if frames is not None and drawn >= frames:
            break
        time.sleep(refresh_s)
    return drawn
