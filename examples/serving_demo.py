"""Serving quickstart: an embedded SSSP query service with cache and SLOs.

Stands up a :class:`~repro.serve.broker.QueryBroker` over an R-MAT graph,
issues single-root and k-root distance/path queries, demonstrates the
distance cache (hits are bit-identical to fresh solves and orders of
magnitude faster), drives a Zipf-skewed closed-loop workload, and prints
the service report with an SLO verdict.

Run:  python examples/serving_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import rmat_graph, solve_sssp
from repro.graph.roots import choose_roots
from repro.serve import QueryBroker, SloPolicy, WorkloadSpec, run_workload
from repro.util import format_table


def main() -> None:
    # 1. The served graph: one broker serves one (graph, config, machine)
    #    triple, paying the preprocessing once.
    graph = rmat_graph(scale=13, seed=42)
    print(f"graph: {graph}")
    roots = [int(r) for r in choose_roots(graph, 3, seed=0)]

    with QueryBroker(
        graph,
        algorithm="opt",
        delta=25,
        num_ranks=8,
        threads_per_rank=16,
        max_batch_size=8,
        flush_interval_s=0.002,
        cache_bytes=32 << 20,
    ) as broker:
        # 2. A single-root distance query, then the same root again: the
        #    second answer comes from the cache, bit-identical to the first
        #    (and to an offline solve_sssp call).
        cold = broker.query(roots[0])
        warm = broker.query(roots[0])
        offline = solve_sssp(graph, roots[0], algorithm="opt", delta=25,
                             num_ranks=8, threads_per_rank=16)
        assert warm.cached
        assert np.array_equal(cold.distances, offline.distances)
        assert np.array_equal(warm.distances, offline.distances)
        print(f"root {roots[0]}: cold {cold.latency_s * 1e3:.2f} ms "
              f"({cold.source}), warm {warm.latency_s * 1e3:.3f} ms "
              f"({warm.source}) — bit-identical to offline solve")

        # 3. A k-root query with path extraction: futures resolve in input
        #    order; coalesced duplicates share one solve.
        target = roots[0]
        futures = broker.submit_many(roots + [roots[1]], targets=(target,))
        broker.drain()
        for future in futures:
            res = future.result()
            path = res.paths[target]
            hops = len(path) - 1 if path else "unreachable"
            print(f"  root {res.root:>6} [{res.source:>9}]  "
                  f"d(root,{target}) = {res.distance_to(target)}  "
                  f"hops = {hops}")

        # 4. A Zipf-skewed closed-loop workload: a few hot roots dominate,
        #    so the cache absorbs most of the traffic.
        spec = WorkloadSpec(num_requests=300, arrival="closed",
                            concurrency=4, zipf_s=1.2, root_universe=32,
                            seed=7)
        report = run_workload(broker, spec)
        keys = ("completed", "shed", "throughput_qps", "p50_s", "p99_s",
                "cache_hit_rate", "mean_batch_size", "solves")
        print(format_table([{k: report[k] for k in keys}],
                           "Zipf closed-loop workload"))

        # 5. SLO verdict over the measured report.
        policy = SloPolicy(p99_s=0.5, min_hit_rate=0.25)
        violations = policy.check(report)
        print("SLOs:", "MET" if not violations else f"VIOLATED {violations}")


if __name__ == "__main__":
    main()
