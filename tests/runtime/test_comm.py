"""Unit tests for the accounting communicator."""

import numpy as np
import pytest

from repro.graph.partition import BlockPartition
from repro.runtime.comm import (
    RELAX_RECORD_BYTES,
    REQUEST_RECORD_BYTES,
    Communicator,
)
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import Metrics


def make_comm(num_ranks=4, n=16):
    machine = MachineConfig(num_ranks=num_ranks, threads_per_rank=2)
    part = BlockPartition(n, num_ranks)
    metrics = Metrics(num_ranks=num_ranks, threads_per_rank=2)
    return Communicator(machine, part, metrics), metrics, part


class TestExchangeByVertex:
    def test_intra_rank_traffic_is_free(self):
        comm, metrics, part = make_comm()
        # vertices 0 and 1 both live on rank 0
        comm.exchange_by_vertex(np.array([0]), np.array([1]), RELAX_RECORD_BYTES)
        rec = metrics.records[-1]
        assert rec.bytes_max == 0
        assert rec.msgs_max == 0

    def test_cross_rank_bytes_counted_both_sides(self):
        comm, metrics, part = make_comm()
        # vertex 0 (rank 0) -> vertex 15 (rank 3)
        comm.exchange_by_vertex(np.array([0]), np.array([15]), 16)
        rec = metrics.records[-1]
        assert rec.bytes_max == 16  # 16 out at rank0, 16 in at rank3
        assert rec.bytes_total == 16
        assert rec.msgs_max == 1

    def test_aggregation_one_message_per_pair(self):
        comm, metrics, part = make_comm()
        src = np.zeros(10, dtype=np.int64)  # all rank 0
        dst = np.full(10, 15, dtype=np.int64)  # all rank 3
        comm.exchange_by_vertex(src, dst, 16)
        rec = metrics.records[-1]
        assert rec.msgs_max == 1  # aggregated
        assert rec.bytes_max == 160

    def test_fan_out_message_count(self):
        comm, metrics, part = make_comm()
        # rank 0 sends one record to each other rank
        src = np.zeros(3, dtype=np.int64)
        dst = np.array([5, 9, 13])  # ranks 1, 2, 3
        comm.exchange_by_vertex(src, dst, 8)
        rec = metrics.records[-1]
        assert rec.msgs_max == 3

    def test_conservation_bytes_sent_equals_received(self):
        comm, metrics, part = make_comm()
        rng = np.random.default_rng(0)
        src = rng.integers(0, 16, 200)
        dst = rng.integers(0, 16, 200)
        comm.exchange_by_vertex(src, dst, 16)
        rec = metrics.records[-1]
        src_r = part.owner(src)
        dst_r = part.owner(dst)
        off = src_r != dst_r
        assert rec.bytes_total == off.sum() * 16

    def test_shape_mismatch_rejected(self):
        comm, _, _ = make_comm()
        with pytest.raises(ValueError):
            comm.exchange_by_vertex(np.array([0]), np.array([1, 2]), 8)

    def test_negative_record_bytes_rejected(self):
        comm, _, _ = make_comm()
        with pytest.raises(ValueError):
            comm.exchange_by_rank(np.array([0]), np.array([1]), -1)

    def test_empty_exchange_records_zeroes(self):
        comm, metrics, _ = make_comm()
        comm.exchange_by_vertex(np.array([], dtype=np.int64), np.array([], dtype=np.int64), 16)
        rec = metrics.records[-1]
        assert rec.bytes_max == 0 and rec.msgs_max == 0


class TestAllreduce:
    def test_counted(self):
        comm, metrics, _ = make_comm()
        comm.allreduce(2)
        assert metrics.total_allreduces == 2

    def test_zero_is_noop(self):
        comm, metrics, _ = make_comm()
        comm.allreduce(0)
        assert len(metrics.records) == 0

    def test_negative_rejected(self):
        comm, _, _ = make_comm()
        with pytest.raises(ValueError):
            comm.allreduce(-1)


class TestConstruction:
    def test_rank_mismatch_rejected(self):
        machine = MachineConfig(num_ranks=4, threads_per_rank=2)
        part = BlockPartition(16, 8)
        metrics = Metrics(num_ranks=4, threads_per_rank=2)
        with pytest.raises(ValueError, match="ranks"):
            Communicator(machine, part, metrics)

    def test_record_sizes(self):
        assert RELAX_RECORD_BYTES == 16
        assert REQUEST_RECORD_BYTES == 24
