"""Cost-model decomposition and calibration.

The simulated time of a run is *linear* in the machine constants:

    T = t_relax·A + t_request·B + t_scan·C + alpha·D + beta·E + F_base·n_ar
        + F_log·(n_ar·log2 P)

where the coefficients (A … n_ar) are pure counter aggregates of the run.
:func:`cost_coefficients` extracts them exactly — the run's *time
signature* — which enables:

- **sensitivity analysis** without re-running: retime any run under any
  constants with a dot product (:func:`retime`);
- **calibration**: given target times (e.g. scaled-down versions of the
  paper's Fig. 12 rates), fit non-negative constants by least squares
  (:func:`calibrate`), quantifying how well *any* constant choice could
  reproduce a target profile — and therefore how much of the result shape
  is determined by the counters alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.runtime.costmodel import _compute_unit_cost
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import ComputeKind, Metrics

__all__ = ["CostCoefficients", "cost_coefficients", "retime", "calibrate"]

_RELAX_KINDS = {
    ComputeKind.SHORT_RELAX.value,
    ComputeKind.LONG_PUSH_RELAX.value,
    ComputeKind.BF_RELAX.value,
    ComputeKind.PULL_RESPONSE.value,
}


@dataclass(frozen=True)
class CostCoefficients:
    """A run's exact linear time signature over the machine constants."""

    relax_units: float
    """Busiest-thread work units priced at ``t_relax`` (A)."""
    request_units: float
    """Busiest-thread work units priced at ``t_request`` (B)."""
    scan_units: float
    """Busiest-thread scan units priced at ``t_scan`` (C)."""
    messages: float
    """Busiest-rank message count priced at ``alpha`` (D)."""
    bytes_moved: float
    """Busiest-rank bytes priced at ``beta`` (E)."""
    allreduces: float
    """Allreduce count (priced at base + log2(P) terms)."""

    def as_vector(self, num_ranks: int) -> np.ndarray:
        """Coefficient vector aligned with :func:`constants_vector`."""
        log_term = self.allreduces * math.log2(max(2, num_ranks))
        return np.array(
            [
                self.relax_units,
                self.request_units,
                self.scan_units,
                self.messages,
                self.bytes_moved,
                self.allreduces,
                log_term,
            ]
        )


def constants_vector(machine: MachineConfig) -> np.ndarray:
    """Machine constants aligned with :meth:`CostCoefficients.as_vector`."""
    return np.array(
        [
            machine.t_relax,
            machine.t_request,
            machine.t_scan,
            machine.alpha,
            machine.beta,
            machine.t_allreduce_base,
            machine.t_allreduce_log,
        ]
    )


def cost_coefficients(metrics: Metrics) -> CostCoefficients:
    """Extract a run's exact time signature from its step records."""
    relax = request = scan = 0.0
    messages = 0.0
    bytes_moved = 0.0
    allreduces = 0.0
    for rec in metrics.records:
        if rec.kind == "exchange":
            messages += rec.msgs_max
            bytes_moved += rec.bytes_max
        elif rec.kind == "allreduce":
            allreduces += rec.allreduces
        elif rec.kind in _RELAX_KINDS:
            relax += rec.comp_max
        elif rec.kind == ComputeKind.PULL_REQUEST.value:
            request += rec.comp_max
        elif rec.kind == ComputeKind.BUCKET_SCAN.value:
            scan += rec.comp_max
        else:  # pragma: no cover - new kinds must be classified explicitly
            raise ValueError(f"unknown record kind {rec.kind!r}")
    return CostCoefficients(
        relax_units=relax,
        request_units=request,
        scan_units=scan,
        messages=messages,
        bytes_moved=bytes_moved,
        allreduces=allreduces,
    )


def retime(metrics: Metrics, machine: MachineConfig) -> float:
    """Total simulated time under ``machine`` — a dot product, no replay.

    Exactly equals ``evaluate_cost(metrics, machine).total_time``.
    """
    coeffs = cost_coefficients(metrics)
    return float(
        coeffs.as_vector(machine.num_ranks) @ constants_vector(machine)
    )


def calibrate(
    runs: list[tuple[Metrics, int]],
    target_times: list[float],
    *,
    base: MachineConfig | None = None,
) -> tuple[MachineConfig, float]:
    """Fit machine constants so the runs' times approach the targets.

    ``runs`` pairs each run's metrics with its rank count; the fit is a
    non-negative least squares over the 7 constants (projected gradient on
    the normal equations — small and self-contained). Returns the fitted
    :class:`MachineConfig` (ranks taken from ``base`` or the first run) and
    the relative RMS error of the fit.
    """
    if len(runs) != len(target_times) or not runs:
        raise ValueError("need one target time per run")
    A = np.stack(
        [cost_coefficients(m).as_vector(p) for m, p in runs]
    )
    b = np.asarray(target_times, dtype=np.float64)
    if np.any(b <= 0):
        raise ValueError("target times must be positive")
    # Scale rows so each target contributes equally (relative fit), then
    # solve the non-negative least squares exactly.
    from scipy.optimize import nnls

    W = 1.0 / b
    Aw = A * W[:, None]
    bw = np.ones_like(b)
    # Column scaling keeps the NNLS well conditioned across constants that
    # differ by ~9 orders of magnitude (nanoseconds vs microseconds).
    col_scale = np.where(Aw.max(axis=0) > 0, Aw.max(axis=0), 1.0)
    x_scaled, _ = nnls(Aw / col_scale, bw)
    x = x_scaled / col_scale
    pred = A @ x
    rel_rms = float(np.sqrt(np.mean(((pred - b) / b) ** 2)))
    ranks = base.num_ranks if base is not None else runs[0][1]
    threads = base.threads_per_rank if base is not None else 16
    fitted = MachineConfig(
        num_ranks=ranks,
        threads_per_rank=threads,
        t_relax=float(x[0]),
        t_request=float(x[1]),
        t_scan=float(x[2]),
        alpha=float(x[3]),
        beta=float(x[4]),
        t_allreduce_base=float(x[5]),
        t_allreduce_log=float(x[6]),
    )
    return fitted, rel_rms
