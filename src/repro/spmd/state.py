"""Rank-local state for the SPMD engine.

Each :class:`RankState` holds exactly what one node of the paper's machine
holds: the adjacency rows of its owned vertex block (weight-sorted, with
the short/long split offsets), its slice of the tentative-distance array,
and its settled flags. Global vertex ids appear only as *addresses* (arc
heads, message destinations) — a rank never reads another rank's distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bucket_index import BucketIndex
from repro.core.buckets import NO_BUCKET
from repro.core.distances import INF
from repro.graph.csr import CSRGraph
from repro.graph.partition import ContiguousPartition

__all__ = ["RankState", "build_rank_states"]


@dataclass
class RankState:
    """Everything rank ``rank`` owns."""

    rank: int
    lo: int
    hi: int
    indptr: np.ndarray
    """Local CSR offsets for the owned rows (length ``hi - lo + 1``)."""
    adj: np.ndarray
    """Arc heads as *global* vertex ids (addresses, not state)."""
    weights: np.ndarray
    short_offsets: np.ndarray
    """Per-owned-vertex count of short arcs (weight-sorted prefix)."""
    d: np.ndarray
    """Local tentative distances (length ``hi - lo``)."""
    settled: np.ndarray
    active: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    """Local indices of currently active vertices."""
    index: BucketIndex | None = None
    """Incremental bucket index over the local slice (``attach_index``)."""
    num_unsettled: int = -1
    """Tracked unsettled count, valid while ``index`` is attached."""

    @property
    def num_local(self) -> int:
        return self.hi - self.lo

    def to_global(self, local: np.ndarray) -> np.ndarray:
        return np.asarray(local, dtype=np.int64) + self.lo

    def to_local(self, global_ids: np.ndarray) -> np.ndarray:
        return np.asarray(global_ids, dtype=np.int64) - self.lo

    def local_degrees(self, local: np.ndarray) -> np.ndarray:
        return self.indptr[local + 1] - self.indptr[local]

    # ------------------------------------------------------------------
    def attach_index(self, delta: int) -> None:
        """Build the incremental bucket index over the current local state."""
        self.index = BucketIndex(delta, self.d, self.settled)
        self.num_unsettled = int((~self.settled).sum())

    def reindex(self) -> None:
        """Rebuild after a state restore (distances may have risen)."""
        if self.index is not None:
            self.index.rebuild(self.d, self.settled)
            self.num_unsettled = int((~self.settled).sum())

    def unsettled_count(self) -> int:
        if self.index is not None:
            return self.num_unsettled
        return int((~self.settled).sum())

    def min_unsettled_bucket(self, delta: int) -> int:
        """Local next-bucket candidate (INF marker when none)."""
        if self.index is not None:
            k = self.index.min_bucket()
            return int(INF) if k == NO_BUCKET else int(k)
        mask = (self.d < INF) & ~self.settled
        if not mask.any():
            return int(INF)
        return int(self.d[mask].min() // delta)


def build_rank_states(
    graph: CSRGraph,
    partition: ContiguousPartition,
    delta: int,
    root: int,
) -> list[RankState]:
    """Slice a weight-sorted graph into per-rank local states."""
    short = graph.short_edge_offsets(delta)
    states: list[RankState] = []
    for rank in range(partition.num_ranks):
        lo, hi = partition.rank_range(rank)
        row_ptr = graph.indptr[lo : hi + 1]
        base = row_ptr[0]
        local_indptr = (row_ptr - base).astype(np.int64)
        adj = graph.adj[base : row_ptr[-1]].copy()
        weights = graph.weights[base : row_ptr[-1]].copy()
        d = np.full(hi - lo, INF, dtype=np.int64)
        settled = np.zeros(hi - lo, dtype=bool)
        active = np.empty(0, dtype=np.int64)
        if lo <= root < hi:
            d[root - lo] = 0
            active = np.array([root - lo], dtype=np.int64)
        states.append(
            RankState(
                rank=rank,
                lo=lo,
                hi=hi,
                indptr=local_indptr,
                adj=adj,
                weights=weights,
                short_offsets=short[lo:hi].copy(),
                d=d,
                settled=settled,
                active=active,
            )
        )
    return states
