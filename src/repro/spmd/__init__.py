"""True message-passing (SPMD) execution mode.

The main engine (:mod:`repro.core.delta_stepping`) is *globally
orchestrated*: it operates on whole-graph arrays and declares the traffic a
distributed run would generate to the accounting communicator. That style
is fast and debuggable, but its honesty rests on an argument, not a
mechanism.

This subpackage provides the mechanism: an SPMD engine where each simulated
rank owns only its vertex slice (local distances, local adjacency rows) and
*all* cross-rank information flows through explicit per-rank mailboxes —
a rank physically cannot read another rank's state. The SPMD engine
implements Bellman-Ford and Δ-stepping with edge classification; the test
suite asserts it produces bit-identical distances *and identical
relaxation/phase/bucket counters* to the orchestrated engine, which is the
equivalence witness for the whole simulation approach (DESIGN.md §5).
"""

from repro.spmd.engine import spmd_bellman_ford, spmd_delta_stepping
from repro.spmd.mailbox import Mailbox
from repro.spmd.state import RankState, build_rank_states

__all__ = [
    "Mailbox",
    "RankState",
    "build_rank_states",
    "spmd_bellman_ford",
    "spmd_delta_stepping",
]
