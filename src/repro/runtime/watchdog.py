"""Solve deadlines and livelock detection (DESIGN.md §8).

PR 1's ReliableMailbox bounds a retry storm only by the blunt
``max_recovery_rounds`` cap, and an adversarial fault plan (e.g. a rank
stalled for longer than the retry budget) either spins to that cap and
dies with a bare ``RuntimeError`` or makes no forward progress at all.
This module gives every solve a *superstep-granular* budget and a
progress watchdog:

- The **budget** (``max_supersteps``) counts every global synchronisation:
  engine epochs plus every ReliableMailbox recovery round. Retry storms
  burn budget even though the epoch counter stands still, so they hit the
  deadline instead of spinning.
- The **stall detector** (``stall_patience``) watches a progress signature
  — total settled vertices and cumulative relaxations — and trips when
  *k* consecutive supersteps pass without it advancing.

When either trips, the watchdog raises :class:`DeadlineExceeded`, an
internal control-flow exception the engine catches and resolves by
policy:

``raise``
    Write a final durable checkpoint and raise :class:`SolveTimeout`, a
    structured error carrying the partial distances, progress counters and
    the resumable checkpoint path.
``degrade``
    Collapse all remaining buckets into one Bellman-Ford fixpoint pass —
    the paper's own hybridization machinery — which is sound because
    tentative distances are always lengths of real paths. The solve then
    finishes with *correct* distances, slower but bounded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DeadlineConfig",
    "DeadlineExceeded",
    "SolveTimeout",
    "Watchdog",
    "POLICIES",
]

POLICIES = ("raise", "degrade")


class DeadlineExceeded(RuntimeError):
    """Internal signal: the watchdog tripped. Engines catch this and apply
    the configured policy; it never escapes to callers."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class SolveTimeout(RuntimeError):
    """A solve exceeded its deadline under the ``raise`` policy.

    Carries everything the caller needs to triage or continue: the
    tripping ``reason``, the ``distances`` array as of the last completed
    superstep (valid upper bounds — every finite entry is a real path
    length), progress counters, and ``checkpoint_path`` pointing at a
    durable checkpoint the solve can be resumed from (None when no
    checkpoint directory was configured).
    """

    def __init__(
        self,
        reason: str,
        *,
        distances: np.ndarray | None = None,
        epochs_completed: int = 0,
        supersteps: int = 0,
        checkpoint_path=None,
        root: int | None = None,
    ) -> None:
        detail = f"solve deadline exceeded: {reason} " \
                 f"(epochs={epochs_completed}, supersteps={supersteps})"
        if checkpoint_path is not None:
            detail += f"; resumable checkpoint at {checkpoint_path}"
        super().__init__(detail)
        self.reason = reason
        self.distances = distances
        self.epochs_completed = epochs_completed
        self.supersteps = supersteps
        self.checkpoint_path = checkpoint_path
        #: the solve's source vertex when known — the serving layer
        #: (:mod:`repro.serve`) sets it so a timeout stays attributable to
        #: its request after leaving the engine.
        self.root = root


@dataclass(frozen=True)
class DeadlineConfig:
    """Deadline/watchdog knobs for one solve.

    ``max_supersteps`` bounds the total superstep count (epochs + mailbox
    recovery rounds); ``stall_patience`` bounds consecutive supersteps
    without settled/relaxation progress. Either may be None (unbounded).
    ``policy`` picks what happens on a trip.
    """

    max_supersteps: int | None = None
    stall_patience: int | None = None
    policy: str = "raise"

    def __post_init__(self) -> None:
        if self.max_supersteps is not None and self.max_supersteps < 1:
            raise ValueError("max_supersteps must be >= 1")
        if self.stall_patience is not None and self.stall_patience < 1:
            raise ValueError("stall_patience must be >= 1")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown deadline policy {self.policy!r}; "
                f"choose from {POLICIES}"
            )

    @property
    def enabled(self) -> bool:
        return self.max_supersteps is not None or self.stall_patience is not None

    @classmethod
    def degraded(cls, max_supersteps: int = 8) -> "DeadlineConfig":
        """The bounded-exact fallback shape: after ``max_supersteps`` the
        engine collapses the remaining buckets into one Bellman-Ford
        fixpoint pass and finishes with *correct* distances. Used by the
        serving layer's circuit-breaker degradation path."""
        return cls(max_supersteps=max_supersteps, policy="degrade")


class Watchdog:
    """Tracks supersteps and progress for one solve.

    The engine calls :meth:`note_epoch` once per epoch with the current
    progress signature; the ReliableMailbox calls
    :meth:`note_recovery_round` once per retransmission round. Both raise
    :class:`DeadlineExceeded` the moment a bound is crossed, so even a
    solve livelocked *inside* a single delivery (a retry storm) is
    interrupted without waiting for the epoch to finish.
    """

    def __init__(self, config: DeadlineConfig) -> None:
        self.config = config
        self.supersteps = 0
        self.epochs = 0
        self.stalled_for = 0
        self._last_progress: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    def _check_budget(self) -> None:
        limit = self.config.max_supersteps
        if limit is not None and self.supersteps > limit:
            raise DeadlineExceeded(
                f"superstep budget exhausted ({self.supersteps} > {limit})"
            )

    def _check_stall(self) -> None:
        patience = self.config.stall_patience
        if patience is not None and self.stalled_for >= patience:
            raise DeadlineExceeded(
                f"no progress for {self.stalled_for} consecutive supersteps "
                f"(stall patience {patience})"
            )

    # ------------------------------------------------------------------
    def note_epoch(self, *, settled_total: int, relaxations: int) -> None:
        """One engine epoch completed; check progress and budget."""
        self.epochs += 1
        self.supersteps += 1
        signature = (int(settled_total), int(relaxations))
        if self._last_progress is not None and signature == self._last_progress:
            self.stalled_for += 1
        else:
            self.stalled_for = 0
        self._last_progress = signature
        self._check_budget()
        self._check_stall()

    def note_recovery_round(self) -> None:
        """One mailbox recovery round completed inside a delivery.

        Recovery rounds never settle vertices, so they always count as
        stalled supersteps — a retry storm trips either bound.
        """
        self.supersteps += 1
        self.stalled_for += 1
        self._check_budget()
        self._check_stall()
