"""Span tracer: nested spans, per-record dual clocks, per-rank attribution.

One :class:`Tracer` instance accompanies one solve. It keeps two clocks:

- the **wall clock** — ``time.perf_counter`` relative to tracer creation,
  measuring what the Python simulator actually spends;
- the **simulated clock** — the cumulative α–β price of the record stream
  (:func:`repro.runtime.costmodel.price_record`), the time the modelled
  machine would spend.

Engines open nested spans (solve → bucket epoch → phase → superstep) and
emit instant events (checkpoints, hybrid-switch checks, push/pull
decisions, crashes, retransmissions); the metrics sink forwards every
:class:`~repro.runtime.metrics.StepRecord` together with its per-rank
work/traffic arrays, from which the tracer derives *per-rank simulated
durations* — the data behind the one-track-per-rank Perfetto view. Each
record also carries the wall-clock delta since the previous record, which
feeds the :class:`~repro.obs.drift.DriftMonitor` and the
:class:`~repro.obs.registry.MetricsRegistry`.

Everything here is pay-for-use: when no :class:`TraceConfig` is attached to
the solver configuration, no tracer exists and every hook site is a single
``is not None`` check.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.obs.drift import DEFAULT_DRIFT_THRESHOLD, DriftMonitor
from repro.obs.registry import MetricsRegistry
from repro.runtime.costmodel import _compute_unit_cost, price_record
from repro.runtime.machine import MachineConfig

__all__ = ["TraceConfig", "Tracer"]

TRACE_FORMATS = ("jsonl", "perfetto")
"""Supported on-disk trace formats."""


@dataclass(frozen=True)
class TraceConfig:
    """Telemetry knobs of one solve (attached as ``SolverConfig.trace``).

    Attributes
    ----------
    path:
        Trace output file; ``None`` keeps events in memory only (useful
        for benches and tests that read the tracer object directly).
    format:
        ``"jsonl"`` — newline-delimited event log; ``"perfetto"`` — Chrome
        ``trace_events`` JSON loadable in ``ui.perfetto.dev``.
    metrics_path:
        Optional Prometheus text-exposition dump of the metrics registry.
    progress:
        Emit a live one-line progress report to stderr at epoch boundaries.
    drift_threshold:
        Band for the wall vs. cost-model drift flags (see
        :class:`~repro.obs.drift.DriftMonitor`).
    enabled:
        Master switch; ``False`` behaves exactly like ``trace=None``.
    """

    path: str | None = None
    format: str = "jsonl"
    metrics_path: str | None = None
    progress: bool = False
    drift_threshold: float = DEFAULT_DRIFT_THRESHOLD
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.format not in TRACE_FORMATS:
            raise ValueError(
                f"unknown trace format {self.format!r}; "
                f"choose from {TRACE_FORMATS}"
            )
        if self.drift_threshold <= 1.0:
            raise ValueError("drift_threshold must be > 1")


class Tracer:
    """Event recorder for one solve (see module docstring).

    Event stream entries (``self.events``, in emission order) are plain
    dicts with a ``type`` discriminator:

    - ``span``: ``name``, ``cat``, ``ts``/``dur`` (wall seconds),
      ``sim_ts``/``sim_dur`` (simulated seconds), ``depth``, ``args``;
    - ``instant``: ``name``, ``ts``, ``sim_ts``, ``args``;
    - ``record``: ``step``, ``kind``, ``phase``, ``ts``, ``wall_dt``,
      ``sim_ts``, ``sim_dt``, ``rank_sim`` (per-rank simulated seconds).
    """

    def __init__(self, machine: MachineConfig, config: TraceConfig) -> None:
        self.machine = machine
        self.config = config
        self.registry = MetricsRegistry()
        self.drift = DriftMonitor(threshold=config.drift_threshold)
        self.events: list[dict[str, Any]] = []
        self.num_records = 0
        self.cum_bytes = 0
        self.cum_relax = 0
        self.sim_t = 0.0
        self.wall_total: float | None = None
        self.summary: dict[str, Any] | None = None
        self.drift_rows: list[dict[str, Any]] = []
        self.artifacts: dict[str, str] = {}
        """Paths written by :func:`repro.obs.export.finalize_trace`."""
        self.finished = False
        self._stack: list[dict[str, Any]] = []
        self._epochs_seen = 0
        self._unit_cache: dict[str, float] = {}
        # Per-kind accumulators for the registry counters; flushed once in
        # :meth:`finish` so the per-record hot path never touches the
        # registry's label machinery.
        self._kind_records: dict[str, int] = {}
        self._kind_wall: dict[str, float] = {}
        self._kind_sim: dict[str, float] = {}
        self._kind_relax: dict[str, int] = {}
        self.cum_allreduces = 0
        self._t0 = time.perf_counter()
        self._last_mark = 0.0

    # ------------------------------------------------------------------
    # Clocks
    # ------------------------------------------------------------------
    def wall_now(self) -> float:
        """Wall seconds since tracer creation."""
        return time.perf_counter() - self._t0

    def _attribute_wall(self) -> tuple[float, float]:
        """Advance the attribution mark; returns (now, delta since mark).

        Records are emitted immediately after the numpy work that produced
        them, so the delta since the previous record is that record's wall
        cost — the quantity the drift monitor compares against its price.
        """
        now = self.wall_now()
        dt = now - self._last_mark
        self._last_mark = now
        return now, dt

    # ------------------------------------------------------------------
    # Spans and instants
    # ------------------------------------------------------------------
    def begin(self, name: str, *, cat: str = "span", **args) -> dict[str, Any]:
        """Open a nested span; returns the (mutable) span event."""
        ev: dict[str, Any] = {
            "type": "span",
            "name": name,
            "cat": cat,
            "ts": self.wall_now(),
            "dur": None,
            "sim_ts": self.sim_t,
            "sim_dur": None,
            "depth": len(self._stack),
            "args": dict(args),
            "_rec0": self.num_records,
            "_bytes0": self.cum_bytes,
            "_relax0": self.cum_relax,
        }
        self.events.append(ev)
        self._stack.append(ev)
        return ev

    def end(self, span: dict[str, Any], **args) -> None:
        """Close a span opened by :meth:`begin`; extra args are merged.

        The span's delta counters (records, bytes, relaxations that
        happened inside it) are filled in here.
        """
        if span.get("dur") is not None:
            return
        if span in self._stack:
            while self._stack[-1] is not span:
                # Defensive: close any child left open (e.g. by an exception).
                self.end(self._stack[-1])
            self._stack.pop()
        span["dur"] = self.wall_now() - span["ts"]
        span["sim_dur"] = self.sim_t - span["sim_ts"]
        span["args"].update(args)
        span["args"].setdefault("records", self.num_records - span.pop("_rec0"))
        span["args"].setdefault("bytes", self.cum_bytes - span.pop("_bytes0"))
        span["args"].setdefault(
            "relaxations", self.cum_relax - span.pop("_relax0")
        )
        if span["cat"] == "epoch":
            self._epochs_seen += 1
            self.registry.observe(
                "sssp_epoch_wall_seconds",
                span["dur"],
                help="wall-clock duration of bucket epochs",
            )
            if self.config.progress:
                self._progress_line(span)

    @contextmanager
    def span(self, name: str, *, cat: str = "span", **args):
        """Context-manager form of :meth:`begin`/:meth:`end`."""
        ev = self.begin(name, cat=cat, **args)
        try:
            yield ev
        finally:
            self.end(ev)

    def instant(self, name: str, **args) -> None:
        """Emit a zero-duration event (checkpoint, decision, crash, ...)."""
        self.events.append(
            {
                "type": "instant",
                "name": name,
                "ts": self.wall_now(),
                "sim_ts": self.sim_t,
                "args": dict(args),
            }
        )

    # ------------------------------------------------------------------
    # Record hooks (called by Metrics.add_*)
    # ------------------------------------------------------------------
    def _unit(self, kind: str) -> float:
        unit = self._unit_cache.get(kind)
        if unit is None:
            unit = self._unit_cache[kind] = _compute_unit_cost(
                kind, self.machine
            )
        return unit

    def _emit_record(self, rec, rank_sim: np.ndarray) -> None:
        now, wall_dt = self._attribute_wall()
        sim_dt = price_record(rec, self.machine)
        kind = rec.kind
        self.events.append(
            {
                "type": "record",
                "step": self.num_records,
                "kind": kind,
                "phase": rec.phase_kind,
                "ts": now,
                "wall_dt": wall_dt,
                "sim_ts": self.sim_t,
                "sim_dt": sim_dt,
                "rank_sim": rank_sim.tolist(),
            }
        )
        self.sim_t += sim_dt
        self.num_records += 1
        self.cum_bytes += rec.bytes_total
        self.cum_allreduces += rec.allreduces
        self.drift.add(kind, wall_dt, sim_dt)
        self._kind_records[kind] = self._kind_records.get(kind, 0) + 1
        self._kind_wall[kind] = self._kind_wall.get(kind, 0.0) + wall_dt
        self._kind_sim[kind] = self._kind_sim.get(kind, 0.0) + sim_dt

    def on_compute(self, rec, thread_work: np.ndarray, relax_count: int) -> None:
        """Record hook for compute steps; ``thread_work`` is the per-thread
        work array (length P×T) the step was charged from."""
        p = self.machine.num_ranks
        t = self.machine.threads_per_rank
        rank_sim = np.asarray(thread_work, dtype=np.float64).reshape(
            p, t
        ).max(axis=1) * self._unit(rec.kind)
        self.cum_relax += relax_count
        if relax_count:
            self._kind_relax[rec.kind] = (
                self._kind_relax.get(rec.kind, 0) + relax_count
            )
        self._emit_record(rec, rank_sim)

    def on_exchange(
        self, rec, msgs_per_rank: np.ndarray, bytes_per_rank: np.ndarray
    ) -> None:
        """Record hook for exchanges; per-rank arrays carry the α–β split."""
        rank_sim = (
            self.machine.alpha * np.asarray(msgs_per_rank, dtype=np.float64)
            + self.machine.beta * np.asarray(bytes_per_rank, dtype=np.float64)
        )
        self._emit_record(rec, rank_sim)

    def on_allreduce(self, rec) -> None:
        """Record hook for allreduces (uniform across ranks by the model)."""
        dt = price_record(rec, self.machine)
        rank_sim = np.full(self.machine.num_ranks, dt)
        self._emit_record(rec, rank_sim)

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def finish(self, metrics=None) -> None:
        """Seal the trace: close open spans, bake gauges and drift rows.

        Idempotent; engines call it when the solve returns and
        :func:`repro.obs.export.finalize_trace` calls it defensively
        before writing.
        """
        if self.finished:
            return
        while self._stack:
            self.end(self._stack[-1])
        self.wall_total = self.wall_now()
        reg = self.registry
        # Flush the batched per-record counters (see __init__).
        for kind in sorted(self._kind_records):
            reg.inc("sssp_records_total", self._kind_records[kind], kind=kind,
                    help="step records by kind")
            reg.inc("sssp_wall_seconds_total", self._kind_wall[kind],
                    kind=kind,
                    help="wall-clock seconds attributed to records, by kind")
            reg.inc("sssp_sim_seconds_total", self._kind_sim[kind], kind=kind,
                    help="simulated seconds priced by the cost model, by kind")
        for kind in sorted(self._kind_relax):
            reg.inc("sssp_relaxations_total", self._kind_relax[kind],
                    kind=kind, help="relaxations by compute kind")
        if self.cum_bytes:
            reg.inc("sssp_bytes_total", self.cum_bytes,
                    help="bytes moved across the simulated network")
        if self.cum_allreduces:
            reg.inc("sssp_allreduces_total", self.cum_allreduces,
                    help="small allreduce operations")
        if metrics is not None:
            self.summary = dict(metrics.summary())
            for key, value in self.summary.items():
                if isinstance(value, bool):
                    value = int(value)
                if isinstance(value, (int, float)):
                    reg.set_gauge(f"sssp_{key}", value,
                                  help=f"Metrics.summary() field {key!r}")
        reg.set_gauge("sssp_wall_seconds", self.wall_total,
                      help="wall-clock duration of the solve")
        reg.set_gauge("sssp_simulated_seconds", self.sim_t,
                      help="total simulated seconds of the solve")
        self.drift_rows = self.drift.report()
        for row in self.drift_rows:
            reg.set_gauge("sssp_drift_rel", row["rel"], kind=row["kind"],
                          help="normalized wall/simulated ratio by kind")
        self.finished = True
        if self.config.progress:
            sys.stderr.write("\n")
            sys.stderr.flush()

    def _progress_line(self, span: dict[str, Any]) -> None:
        sys.stderr.write(
            f"\r[trace] epoch {self._epochs_seen:>5} {span['name']:<14} "
            f"wall {span['dur'] * 1e3:8.2f} ms  "
            f"sim {span['sim_dur'] * 1e6:10.2f} us  "
            f"total wall {self.wall_now():7.2f} s"
        )
        sys.stderr.flush()
