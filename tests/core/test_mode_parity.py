"""Push/pull decision parity: SPMD and orchestrated engines never drift.

The per-bucket push-vs-pull decision is computed from per-rank partial sums
of the expectation estimator. Historically the SPMD engine carried its own
copy of those formulas, which can drift from the orchestrated estimator one
refactor at a time; both now call the shared
:func:`~repro.core.pushpull.expectation_partials` /
:func:`~repro.core.pushpull.combine_expectation_costs` pair. These are the
regression tests: the shared helpers must compose to exactly
:func:`~repro.core.pushpull.estimate_models`, and the two engines must make
the same mode decision for every bucket of every preset.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import preset
from repro.core.context import make_context
from repro.core.pushpull import (
    combine_expectation_costs,
    estimate_models,
    expectation_partials,
)
from repro.core.solver import solve_sssp
from repro.runtime.machine import MachineConfig
from repro.spmd.engine import spmd_delta_stepping

MACHINE = MachineConfig(num_ranks=4, threads_per_rank=2)
PRESETS = ["delta", "prune", "opt", "lb-opt"]


def bucket_modes(metrics) -> list[tuple[int, str]]:
    """(bucket id, chosen mode) sequence; '-' where no long phase ran."""
    return [
        (int(s.get("bucket", -1)), str(s.get("mode", "-")))
        for s in metrics.per_bucket_stats
    ]


class TestSharedPartials:
    @pytest.mark.parametrize("use_ios", [False, True])
    def test_partials_compose_to_estimate_models(self, rmat1_small, use_ios):
        """Summing per-rank partials of the shared helper must reproduce
        the orchestrated estimator bit-for-bit."""
        cfg = preset("opt", 25).evolve(use_ios=use_ios)
        ctx = make_context(rmat1_small, MACHINE, cfg)
        d = np.full(ctx.graph.num_vertices, 2**62, dtype=np.int64)
        rng = np.random.default_rng(0)
        reached = rng.random(d.size) < 0.5
        d[reached] = rng.integers(0, 200, int(reached.sum()))
        settled = np.zeros(d.size, dtype=bool)
        k = 1
        lo, hi = k * cfg.delta, (k + 1) * cfg.delta
        members = np.nonzero((d >= lo) & (d < hi) & ~settled)[0]
        later = np.nonzero((d >= hi) & ~settled)[0]
        whole = estimate_models(ctx, d, settled, members, k)

        w_max = max(ctx.graph.max_weight, 1)
        push_parts, pull_parts = [], []
        for r in range(MACHINE.num_ranks):
            start = int(ctx.partition.boundaries[r])
            stop = int(ctx.partition.boundaries[r + 1])
            m = members[(members >= start) & (members < stop)]
            lt = later[(later >= start) & (later < stop)]
            if use_ios:
                total_in = ctx.in_graph.indptr[lt + 1] - ctx.in_graph.indptr[lt]
                long_in = None
            else:
                total_in = None
                long_in = ctx.in_long_degrees[lt]
            push, pull = expectation_partials(
                ctx.config, w_max, lo, ctx.long_degrees[m], d[lt],
                total_in, long_in,
            )
            push_parts.append(push)
            pull_parts.append(pull)
        combined = combine_expectation_costs(
            ctx.config, ctx.machine, push_parts, pull_parts
        )
        assert combined == whole


class TestEngineDecisionParity:
    @pytest.mark.parametrize("algorithm", PRESETS)
    @pytest.mark.parametrize("family", ["rmat1", "rmat2"])
    def test_same_mode_every_bucket(
        self, algorithm, family, rmat1_small, rmat2_small
    ):
        """Satellite 1: per-bucket push/pull decisions are identical."""
        graph = rmat1_small if family == "rmat1" else rmat2_small
        cfg = preset(algorithm, 25)
        res = solve_sssp(
            graph, 0, config=cfg, machine=MACHINE,
            num_ranks=MACHINE.num_ranks,
            threads_per_rank=MACHINE.threads_per_rank,
        )
        d_spmd, ctx_spmd = spmd_delta_stepping(graph, 0, MACHINE, config=cfg)
        assert np.array_equal(res.distances, d_spmd)
        assert bucket_modes(res.metrics) == bucket_modes(ctx_spmd.metrics)
        assert res.metrics.summary() == ctx_spmd.metrics.summary()
