"""Journey invariant harness: randomized chaos journeys, replayed.

The tentpole test of the resilience work (ISSUE 6 / DESIGN §12). Each
journey drives a fully-armed broker — chaos injection, retries, a
circuit breaker on an injected clock, structural verification, tracing —
through a seeded random request stream, then checks *cross-system*
invariants rather than per-component behaviour:

1. every admitted request reaches exactly one typed terminal outcome
   (a result or a typed error; no future is ever leaked or dropped);
2. every ``ok`` response is bit-identical to an un-chaos'd offline
   solve with the same coordinates — through retries, hedges, cache
   hits, and the degraded Bellman-Ford fallback alike;
3. replaying the same seed reproduces the same outcome counts, the
   same chaos fault log, and the same breaker transition sequence;
4. the SLO accounting agrees with the tracer's span stream.

The harness runs on three fixed seeds (CI's ``chaos-smoke`` job) plus a
hypothesis sweep over random plans for invariant 2.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.solver import solve_sssp
from repro.graph.builder import from_undirected_edges
from repro.graph.roots import choose_roots
from repro.obs.burnrate import OK_SOURCES
from repro.obs.tracer import TraceConfig
from repro.serve.breaker import BreakerConfig, CircuitBreaker
from repro.serve.broker import QueryBroker
from repro.serve.chaos import ChaosEvent, ChaosPlan, InjectedFault
from repro.serve.events import WideEventLog
from repro.serve.request import (
    ServiceUnavailable,
    SolveCorrupted,
)
from repro.serve.retry import RetryPolicy
from repro.runtime.watchdog import SolveTimeout

SEEDS = [3, 11, 42]
JOURNEY_STEPS = 24
TYPED_ERRORS = (InjectedFault, SolveTimeout, SolveCorrupted, ServiceUnavailable)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def run_journey(graph, seed: int) -> dict:
    """Drive one seeded journey; return everything the invariants need.

    Shape: a deterministic warm-up (one transient fault that recovers
    via retry, then a poisoned root that exhausts its budget and trips
    the breaker), a seeded random request stream over a small root pool
    (cache hits, degraded fallbacks, stale reads, more rate faults),
    and a final cold probe after the breaker's recovery window — so
    every seed crosses the whole resilience ladder.
    """
    rng = np.random.default_rng(seed)
    pool = [int(r) for r in choose_roots(graph, 8, seed=seed)]
    probe_root = pool.pop()
    poisoned, transient = pool[0], pool[1]
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=3, recovery_time_s=1.0),
        clock=clock,
    )
    broker = QueryBroker(
        graph,
        algorithm="opt", delta=25, num_ranks=2, threads_per_rank=2,
        num_workers=0, flush_interval_s=0.0,
        chaos=ChaosPlan(seed=seed, error_rate=0.15, stall_rate=0.05,
                        corrupt_rate=0.10, max_faulty_attempts=2,
                        events=(ChaosEvent(transient, 0, "error"),)
                        + tuple(ChaosEvent(poisoned, a, "error")
                                for a in range(3))),
        retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0),
        breaker=breaker,
        verify="structural",
        trace=TraceConfig(path=None),
        events=WideEventLog(),
    )
    journeys = []

    def step(root: int) -> None:
        future = broker.submit(root)
        # execute this request (and any retries it spawns) to completion
        # so the interleaving is sequential and the replay deterministic
        assert broker.drain(timeout=60.0)
        journeys.append((root, future))
        clock.advance(0.05)  # march the breaker clock between requests

    step(transient)  # fails once, retried-ok
    step(poisoned)   # exhausts its budget: terminal, trips the breaker
    for _ in range(JOURNEY_STEPS):
        step(int(pool[rng.integers(0, len(pool))]))
    clock.advance(2.0)  # past the recovery window: next acquire probes
    step(probe_root)
    report = broker.report()
    record = {
        "journeys": journeys,
        "report": report,
        "outcomes": {k: v for k, v in report.items()
                     if k.startswith("outcome_")},
        "chaos_log": list(broker.chaos.log),
        "transitions": [(cls, a, b)
                        for _, cls, a, b in breaker.transitions],
        "trace_events": list(broker.tracer.events),
        "events": broker.events.events(),
        "canonical": broker.events.canonical_text(),
        "latency_count": broker.latency.count,
        "registry": broker.registry.snapshot(),
        "exemplars": {
            source: broker.registry.exemplars(
                "serve_request_latency_seconds", source=source
            )
            for source in OK_SOURCES
        },
    }
    broker.shutdown()
    return record


@pytest.fixture(scope="module")
def offline(rmat1_small):
    """Memoised un-chaos'd reference solves."""
    cache: dict[int, np.ndarray] = {}

    def solve(root: int) -> np.ndarray:
        if root not in cache:
            cache[root] = solve_sssp(
                rmat1_small, root, algorithm="opt", delta=25,
                num_ranks=2, threads_per_rank=2,
            ).distances
        return cache[root]

    return solve


@pytest.mark.parametrize("seed", SEEDS)
class TestJourneyInvariants:
    def test_every_request_reaches_one_typed_outcome(self, rmat1_small, seed):
        record = run_journey(rmat1_small, seed)
        for root, future in record["journeys"]:
            assert future.done()
            exc = future.exception()
            if exc is not None:
                assert isinstance(exc, TYPED_ERRORS), exc
        report = record["report"]
        assert report["offered"] == len(record["journeys"])
        assert report["shed"] == 0
        assert sum(record["outcomes"].values()) == report["offered"]

    def test_ok_responses_are_bit_identical(self, rmat1_small, seed, offline):
        record = run_journey(rmat1_small, seed)
        checked = 0
        for root, future in record["journeys"]:
            if future.exception() is not None:
                continue
            res = future.result()
            ref = offline(root)
            assert np.array_equal(res.distances, ref), (
                f"root {root} via {res.source!r} diverged from offline solve"
            )
            assert res.distances.dtype == ref.dtype
            checked += 1
        assert checked > 0  # the journey can't be all failures

    def test_replay_is_deterministic(self, rmat1_small, seed):
        first = run_journey(rmat1_small, seed)
        second = run_journey(rmat1_small, seed)
        assert first["outcomes"] == second["outcomes"]
        assert first["chaos_log"] == second["chaos_log"]
        assert first["transitions"] == second["transitions"]
        firsts = [(r, f.exception() is None) for r, f in first["journeys"]]
        seconds = [(r, f.exception() is None) for r, f in second["journeys"]]
        assert firsts == seconds

    def test_slo_accounting_agrees_with_trace_spans(self, rmat1_small, seed):
        record = run_journey(rmat1_small, seed)
        spans = [e for e in record["trace_events"]
                 if e["type"] == "span" and e["name"] == "request"]
        assert len(spans) == sum(record["outcomes"].values())
        by_outcome: dict[str, int] = {}
        for span in spans:
            key = f"outcome_{span['args']['outcome']}"
            by_outcome[key] = by_outcome.get(key, 0) + 1
        assert by_outcome == record["outcomes"]
        retry_spans = [e for e in record["trace_events"]
                       if e["type"] == "span" and e["name"] == "retry"]
        assert len(retry_spans) == record["report"]["retries"]


@pytest.mark.parametrize("seed", SEEDS)
class TestWideEventReconciliation:
    """ISSUE 9 tentpole: every request's wide event reconciles with the
    tracer spans, the registry counters, and the SLO window."""

    def test_exactly_one_event_per_request(self, rmat1_small, seed):
        record = run_journey(rmat1_small, seed)
        events = record["events"]
        journeys = record["journeys"]
        assert len(events) == record["report"]["offered"] == len(journeys)
        ids = [e["request_id"] for e in events]
        assert len(set(ids)) == len(ids)
        # ids are minted in admission order: req-000000 .. req-NNNNNN
        assert sorted(ids) == [f"req-{i:06d}" for i in range(len(ids))]
        # submission is sequential here, so the i-th admitted request is
        # the i-th journey step; events carry the matching root
        by_id = {e["request_id"]: e for e in events}
        for i, (root, future) in enumerate(journeys):
            ev = by_id[f"req-{i:06d}"]
            assert ev["root"] == root
            assert ev["admission"] == "admitted"
            ok = future.exception() is None
            assert (ev["outcome"] in OK_SOURCES) == ok
            if ok:
                res = future.result()
                assert res.request_id == ev["request_id"]
                assert ev["outcome"] == res.source
                assert ev["source"] == res.source
                assert ev["attempts_total"] == res.attempts
                assert ev["stale_ok"] == res.stale_ok
                assert ev["degraded"] == res.degraded

    def test_events_reconcile_with_counters_and_spans(self, rmat1_small, seed):
        record = run_journey(rmat1_small, seed)
        events = record["events"]
        # outcome counts from events == report outcome_* == registry
        by_outcome: dict[str, int] = {}
        for ev in events:
            key = f"outcome_{ev['outcome']}"
            by_outcome[key] = by_outcome.get(key, 0) + 1
        assert by_outcome == record["outcomes"]
        for key, count in by_outcome.items():
            outcome = key[len("outcome_"):]
            counter = f'serve_requests_total{{outcome="{outcome}"}}'
            assert record["registry"][counter] == count
        # every request span's request_id and outcome match its event
        by_id = {e["request_id"]: e for e in events}
        spans = [e for e in record["trace_events"]
                 if e["type"] == "span" and e["name"] == "request"]
        assert len(spans) == len(events)
        for span in spans:
            ev = by_id[span["args"]["request_id"]]
            assert span["args"]["outcome"] == ev["outcome"]
            assert span["args"]["root"] == ev["root"]
        # batch and solve spans only name admitted request ids
        for span in record["trace_events"]:
            if span.get("type") == "span" and "request_ids" in span.get(
                "args", {}
            ):
                for rid in span["args"]["request_ids"]:
                    assert rid in by_id

    def test_events_reconcile_with_slo_window_and_exemplars(
        self, rmat1_small, seed
    ):
        record = run_journey(rmat1_small, seed)
        events = record["events"]
        # one latency sample per terminal completion (no sheds here)
        assert record["latency_count"] == len(events)
        # every exemplar points at a request that was actually served
        # from that source
        ids_by_source: dict[str, set] = {}
        for ev in events:
            ids_by_source.setdefault(ev["outcome"], set()).add(
                ev["request_id"]
            )
        seen = 0
        for source, slots in record["exemplars"].items():
            for slot in slots.values():
                assert slot["ref"] in ids_by_source.get(source, set())
                seen += 1
        assert seen > 0  # the run must have produced exemplars at all

    def test_event_internals_are_coherent(self, rmat1_small, seed):
        record = run_journey(rmat1_small, seed)
        for ev in record["events"]:
            # solved requests went through >= 1 batch and queue wait
            if ev["outcome"] == "solve":
                assert ev["batches"]
                assert ev["timing"]["queue_waits_s"]
                assert ev["attempts"]
                assert ev["attempts"][-1]["outcome"] == "ok"
            if ev["outcome"] == "cache":
                # submit-time hits carry attempts_total 0; dispatch-time
                # hits 1 (they consumed a dispatch) — never more, and no
                # solve attempt is ever recorded for either
                assert ev["attempts_total"] in (0, 1)
                assert ev["attempts"] == []
            if ev["degraded"]:
                assert ev["degraded_tier"] is not None

    def test_canonical_stream_is_replay_identical(self, rmat1_small, seed):
        first = run_journey(rmat1_small, seed)
        second = run_journey(rmat1_small, seed)
        assert first["canonical"]
        assert first["canonical"] == second["canonical"]


class TestJourneyChaosActuallyBites:
    def test_faults_are_injected_and_survived(self, rmat1_small):
        # Sanity for the whole harness: across the fixed seeds, chaos
        # really fires, retries really recover, and some requests still
        # end in typed errors — the invariants above are not vacuous.
        for seed in SEEDS:
            record = run_journey(rmat1_small, seed)
            assert len(record["chaos_log"]) > 0
            assert record["report"]["retried_ok"] > 0
            assert any(f.exception() is not None
                       for _, f in record["journeys"])
            # the breaker both opened and began recovering
            transitions = record["transitions"]
            assert ("error", "closed", "open") in transitions
            assert ("error", "open", "half_open") in transitions


def run_live_journey(graph, seed: int, *, steps: int = 18,
                     updates: int = 3) -> dict:
    """A journey with live-graph churn interleaved (DESIGN §15).

    Same resilience ladder as :func:`run_journey` minus the breaker
    theatrics, plus ``apply_updates`` fired at fixed step indices so
    requests straddle snapshot swaps — including requests admitted
    *before* a swap and executed after it.
    """
    from repro.dynamic.updates import random_update_batch

    rng = np.random.default_rng(seed)
    pool = [int(r) for r in choose_roots(graph, 6, seed=seed)]
    broker = QueryBroker(
        graph,
        algorithm="opt", delta=25, num_ranks=2, threads_per_rank=2,
        num_workers=0, flush_interval_s=0.0,
        snapshot_retention=updates + 1,
        chaos=ChaosPlan(seed=seed, error_rate=0.15, corrupt_rate=0.10,
                        max_faulty_attempts=2),
        retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0),
        verify="structural",
        events=WideEventLog(),
    )
    update_at = {((r + 1) * steps) // (updates + 1): r
                 for r in range(updates)}
    journeys = []
    for i in range(steps):
        if i in update_at:
            batch = random_update_batch(
                broker.versioner.current.graph,
                np.random.default_rng((seed, update_at[i])),
                churn_fraction=0.02,
            )
            broker.apply_updates(batch, repair_hot_roots=2)
        root = int(pool[rng.integers(0, len(pool))])
        future = broker.submit(root)
        if i % 3 == 0:
            # Let some requests straddle the *next* swap: only drain on
            # every third step, so queued work crosses snapshot epochs.
            assert broker.drain(timeout=60.0)
        journeys.append((root, future))
    assert broker.drain(timeout=60.0)
    record = {
        "journeys": journeys,
        "report": broker.report(),
        "chaos_log": list(broker.chaos.log),
        "events": broker.events.events(),
        "canonical": broker.events.canonical_text(),
        "graphs": {sid: broker.versioner.get(sid).graph
                   for sid in broker.versioner.ids()},
    }
    broker.shutdown()
    return record


@pytest.mark.parametrize("seed", SEEDS)
class TestLiveJourneyInvariants:
    """ISSUE 10 acceptance: the invariant harness under interleaved
    updates — no request ever observes mixed-snapshot distances."""

    def test_ok_answers_match_their_events_snapshot(self, rmat1_small, seed):
        record = run_live_journey(rmat1_small, seed)
        by_id = {e["request_id"]: e for e in record["events"]}
        ref: dict[tuple, np.ndarray] = {}
        checked = 0
        for root, future in record["journeys"]:
            if future.exception() is not None:
                continue
            res = future.result()
            sid = by_id[res.request_id]["snapshot_id"]
            assert sid == res.snapshot_id
            key = (sid, root)
            if key not in ref:
                ref[key] = solve_sssp(
                    record["graphs"][sid], root, algorithm="opt", delta=25,
                    num_ranks=2, threads_per_rank=2,
                ).distances
            # Bit-identical to an offline solve of the event's snapshot:
            # a mixed-snapshot answer could not satisfy this exactly.
            assert np.array_equal(res.distances, ref[key]), (
                f"root {root} on snapshot {sid} via {res.source!r} diverged"
            )
            checked += 1
        assert checked > 0
        # The journey genuinely crossed snapshots with live answers.
        assert len({sid for sid, _ in ref}) > 1

    def test_requests_straddle_swaps(self, rmat1_small, seed):
        record = run_live_journey(rmat1_small, seed)
        report = record["report"]
        assert report["updates"] == 3
        assert report["snapshot_id"] == 3
        # Some request was admitted on an older snapshot than the final
        # one and still completed there (pinning, not draining).
        events = record["events"]
        assert {e["snapshot_id"] for e in events} == {0, 1, 2, 3}

    def test_live_replay_is_deterministic(self, rmat1_small, seed):
        first = run_live_journey(rmat1_small, seed)
        second = run_live_journey(rmat1_small, seed)
        assert first["canonical"]
        assert first["canonical"] == second["canonical"]
        assert first["chaos_log"] == second["chaos_log"]
        firsts = [(r, f.exception() is None) for r, f in first["journeys"]]
        seconds = [(r, f.exception() is None) for r, f in second["journeys"]]
        assert firsts == seconds
        for sid, graph in first["graphs"].items():
            np.testing.assert_array_equal(
                graph.weights, second["graphs"][sid].weights
            )


def tiny_graph() -> object:
    rng = np.random.default_rng(1234)
    n, m = 24, 60
    tails = rng.integers(0, n, m)
    heads = rng.integers(0, n, m)
    weights = rng.integers(1, 30, m).astype(np.int64)
    return from_undirected_edges(tails, heads, weights, n)


_TINY = tiny_graph()
_TINY_REF: dict[int, np.ndarray] = {}


def tiny_reference(root: int) -> np.ndarray:
    if root not in _TINY_REF:
        _TINY_REF[root] = solve_sssp(
            _TINY, root, algorithm="opt", delta=25,
            num_ranks=2, threads_per_rank=2,
        ).distances
    return _TINY_REF[root]


class TestChaosBitIdentityProperty:
    """Satellite (d): under *any* seeded plan, ok answers stay exact."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        error=st.floats(min_value=0.0, max_value=0.4),
        corrupt=st.floats(min_value=0.0, max_value=0.4),
        stall=st.floats(min_value=0.0, max_value=0.2),
        clean_after=st.integers(min_value=1, max_value=2),
    )
    def test_ok_responses_match_fresh_solves(
        self, seed, error, corrupt, stall, clean_after
    ):
        broker = QueryBroker(
            _TINY,
            algorithm="opt", delta=25, num_ranks=2, threads_per_rank=2,
            num_workers=0, flush_interval_s=0.0,
            chaos=ChaosPlan(seed=seed, error_rate=error, stall_rate=stall,
                            corrupt_rate=corrupt,
                            max_faulty_attempts=clean_after),
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0),
            verify="structural",
        )
        rng = np.random.default_rng(seed)
        futures = [broker.submit(int(rng.integers(0, _TINY.num_vertices)))
                   for _ in range(6)]
        assert broker.drain(timeout=60.0)
        for future in futures:
            if future.exception() is not None:
                assert isinstance(future.exception(), TYPED_ERRORS)
                continue
            res = future.result()
            assert np.array_equal(res.distances, tiny_reference(res.root))
        broker.shutdown()
