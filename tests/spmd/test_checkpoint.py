"""Durable checkpoint format and kill/resume round trips (DESIGN.md §8)."""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.core.config import SolverConfig, preset
from repro.core.solver import solve_sssp
from repro.graph.rmat import RMAT1, rmat_graph
from repro.runtime.machine import MachineConfig
from repro.spmd.checkpoint import (
    CheckpointError,
    CheckpointManager,
    SolveCheckpoint,
    ensure_checkpoint_dir,
    fingerprint_graph,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.spmd.engine import spmd_bellman_ford, spmd_delta_stepping
from repro.spmd.faults import FaultPlan, RankCrash, RankStall, solve_with_faults


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=8, edge_factor=4, params=RMAT1, seed=7)


@pytest.fixture(scope="module")
def machine():
    return MachineConfig(num_ranks=4, threads_per_rank=2)


def _make_ckpt(n=16, epoch=3, **overrides):
    kwargs = dict(
        epoch=epoch,
        stage="bucket",
        bucket_ordinal=2,
        superstep=11,
        root=0,
        d=np.arange(n, dtype=np.int64),
        settled=np.zeros(n, dtype=bool),
        active=np.array([1, 5], dtype=np.int64),
        graph_digest="g" * 64,
        run_digest="r" * 64,
    )
    kwargs.update(overrides)
    return SolveCheckpoint(**kwargs)


class TestFormat:
    def test_round_trip(self, tmp_path):
        ckpt = _make_ckpt()
        path = save_checkpoint(tmp_path, ckpt)
        loaded = load_checkpoint(path)
        assert loaded.epoch == ckpt.epoch
        assert loaded.stage == ckpt.stage
        assert loaded.bucket_ordinal == ckpt.bucket_ordinal
        assert loaded.superstep == ckpt.superstep
        assert np.array_equal(loaded.d, ckpt.d)
        assert np.array_equal(loaded.settled, ckpt.settled)
        assert np.array_equal(loaded.active, ckpt.active)
        assert loaded.graph_digest == ckpt.graph_digest
        assert loaded.run_digest == ckpt.run_digest

    def test_corrupt_file_detected(self, tmp_path):
        path = save_checkpoint(tmp_path, _make_ckpt())
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_truncated_file_detected(self, tmp_path):
        path = save_checkpoint(tmp_path, _make_ckpt())
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_garbage_file_detected(self, tmp_path):
        path = tmp_path / "ckpt-00000009.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_latest_skips_corrupt_and_falls_back(self, tmp_path):
        save_checkpoint(tmp_path, _make_ckpt(epoch=1))
        newest = save_checkpoint(tmp_path, _make_ckpt(epoch=2))
        newest.write_bytes(b"garbage written over the newest checkpoint")
        found = latest_checkpoint(tmp_path)
        assert found is not None
        path, ckpt = found
        assert ckpt.epoch == 1

    def test_latest_none_on_empty_or_missing_dir(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "nope") is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        save_checkpoint(tmp_path, _make_ckpt())
        leftovers = [p for p in os.listdir(tmp_path) if "tmp" in p]
        assert leftovers == []

    def test_ensure_checkpoint_dir_rejects_unwritable(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.mkdir()
        blocked.chmod(0o500)
        try:
            if os.access(blocked, os.W_OK):  # running as root: cannot test
                pytest.skip("permissions are not enforced for this user")
            with pytest.raises(ValueError, match="not writable"):
                ensure_checkpoint_dir(blocked)
        finally:
            blocked.chmod(0o700)

    def test_ensure_checkpoint_dir_rejects_file_path(self, tmp_path):
        target = tmp_path / "afile"
        target.write_text("x")
        with pytest.raises(ValueError):
            ensure_checkpoint_dir(target)


class TestManager:
    def test_retention_prunes_old_files(self, tmp_path, graph, machine):
        mgr = CheckpointManager(
            tmp_path, graph=graph, config=SolverConfig(), machine=machine,
            root=0, engine="t", keep=2,
        )
        for epoch in range(5):
            mgr.save(epoch=epoch, stage="bucket", bucket_ordinal=epoch,
                     superstep=epoch, d=np.zeros(4, np.int64),
                     settled=np.zeros(4, bool),
                     active=np.empty(0, np.int64))
        files = sorted(glob.glob(str(tmp_path / "*.npz")))
        assert len(files) == 2
        assert files[-1].endswith("ckpt-00000004.npz")

    def test_interval_cadence(self, tmp_path, graph, machine):
        mgr = CheckpointManager(
            tmp_path, graph=graph, config=SolverConfig(), machine=machine,
            root=0, engine="t", interval=3, keep=10,
        )
        saved = [
            mgr.maybe_save(epoch=e, stage="bucket", bucket_ordinal=0,
                           superstep=0, d=np.zeros(2, np.int64),
                           settled=np.zeros(2, bool),
                           active=np.empty(0, np.int64))
            for e in range(1, 7)
        ]
        assert [p is not None for p in saved] == [
            False, False, True, False, False, True
        ]

    def test_resume_rejects_different_graph(self, tmp_path, graph, machine):
        mgr = CheckpointManager(
            tmp_path, graph=graph, config=SolverConfig(), machine=machine,
            root=0, engine="t",
        )
        mgr.save(epoch=0, stage="bucket", bucket_ordinal=0, superstep=0,
                 d=np.zeros(graph.num_vertices, np.int64),
                 settled=np.zeros(graph.num_vertices, bool),
                 active=np.empty(0, np.int64))
        other = rmat_graph(scale=7, edge_factor=4, params=RMAT1, seed=99)
        mgr2 = CheckpointManager(
            tmp_path, graph=other, config=SolverConfig(), machine=machine,
            root=0, engine="t",
        )
        with pytest.raises(CheckpointError, match="different graph"):
            mgr2.load_resume()

    def test_resume_rejects_different_config_or_engine(
        self, tmp_path, graph, machine
    ):
        mgr = CheckpointManager(
            tmp_path, graph=graph, config=SolverConfig(delta=25),
            machine=machine, root=0, engine="spmd-delta",
        )
        mgr.save(epoch=0, stage="bucket", bucket_ordinal=0, superstep=0,
                 d=np.zeros(graph.num_vertices, np.int64),
                 settled=np.zeros(graph.num_vertices, bool),
                 active=np.empty(0, np.int64))
        for config, engine in [
            (SolverConfig(delta=50), "spmd-delta"),  # different Δ
            (SolverConfig(delta=25), "core-delta"),  # different engine
        ]:
            bad = CheckpointManager(
                tmp_path, graph=graph, config=config, machine=machine,
                root=0, engine=engine,
            )
            with pytest.raises(CheckpointError, match="different run"):
                bad.load_resume()

    def test_fingerprint_tracks_graph_content(self, graph):
        other = rmat_graph(scale=8, edge_factor=4, params=RMAT1, seed=8)
        assert fingerprint_graph(graph) == fingerprint_graph(graph)
        assert fingerprint_graph(graph) != fingerprint_graph(other)


class TestKillResume:
    """Kill-at-arbitrary-epoch + resume is bit-identical (the tentpole
    acceptance criterion)."""

    def _kill_after(self, tmp_path, keep_epochs):
        """Simulate a kill: drop every checkpoint newer than the first
        ``keep_epochs`` (as if the process died before writing them)."""
        files = sorted(glob.glob(str(tmp_path / "*.npz")))
        for stale in files[keep_epochs:]:
            os.unlink(stale)
        return len(files)

    def test_spmd_delta_resume_every_epoch(self, tmp_path, graph, machine):
        cfg = preset("opt", 25)
        d_ref, _ = spmd_delta_stepping(graph, 0, machine, config=cfg)
        full = tmp_path / "full"
        d_ck, _ = spmd_delta_stepping(
            graph, 0, machine, config=cfg,
            checkpoint_dir=full, checkpoint_keep=100,
        )
        assert np.array_equal(d_ref, d_ck)
        total = len(glob.glob(str(full / "*.npz")))
        assert total >= 2
        for kill_at in range(1, total):
            trial = tmp_path / f"kill{kill_at}"
            trial.mkdir()
            for f in sorted(glob.glob(str(full / "*.npz")))[:kill_at]:
                (trial / os.path.basename(f)).write_bytes(
                    open(f, "rb").read()
                )
            d_res, _ = spmd_delta_stepping(
                graph, 0, machine, config=cfg,
                checkpoint_dir=trial, resume=True,
            )
            assert np.array_equal(d_ref, d_res), (
                f"resume from epoch-{kill_at} checkpoint diverged"
            )

    def test_spmd_bf_kill_resume(self, tmp_path, graph, machine):
        d_ref, _ = spmd_bellman_ford(graph, 0, machine)
        d_ck, _ = spmd_bellman_ford(
            graph, 0, machine, checkpoint_dir=tmp_path, checkpoint_keep=100,
        )
        assert np.array_equal(d_ref, d_ck)
        self._kill_after(tmp_path, 1)
        d_res, _ = spmd_bellman_ford(
            graph, 0, machine, checkpoint_dir=tmp_path, resume=True,
        )
        assert np.array_equal(d_ref, d_res)

    def test_core_engine_kill_resume(self, tmp_path, graph):
        r_ref = solve_sssp(graph, 0, algorithm="opt", num_ranks=4,
                           threads_per_rank=2)
        ckdir = tmp_path / "core"
        solve_sssp(graph, 0, algorithm="opt", num_ranks=4,
                   threads_per_rank=2, checkpoint_dir=ckdir)
        files = sorted(glob.glob(str(ckdir / "*.npz")))
        for stale in files[1:]:
            os.unlink(stale)
        r_res = solve_sssp(graph, 0, algorithm="opt", num_ranks=4,
                           threads_per_rank=2, checkpoint_dir=ckdir,
                           resume=True)
        assert np.array_equal(r_ref.distances, r_res.distances)

    def test_resume_under_fault_plan_bit_identical(
        self, tmp_path, graph, machine
    ):
        """Crash-during-recovery is itself recoverable: kill+resume under
        an active fault plan still lands on the exact distances."""
        cfg = preset("opt", 25)
        d_ref, _ = spmd_delta_stepping(graph, 0, machine, config=cfg)
        plan = FaultPlan(seed=5, loss_rate=0.05, dup_rate=0.03,
                         crashes=(RankCrash(1, 4),),
                         stalls=(RankStall(2, 6, 2),))
        res = solve_with_faults(
            graph, 0, plan, config=cfg, machine=machine,
            checkpoint_dir=tmp_path, validate=True,
        )
        assert np.array_equal(d_ref, res.distances)
        files = sorted(glob.glob(str(tmp_path / "*.npz")))
        for stale in files[1:]:
            os.unlink(stale)
        resumed = solve_with_faults(
            graph, 0, plan, config=cfg, machine=machine,
            checkpoint_dir=tmp_path, resume=True, validate=True,
        )
        assert np.array_equal(d_ref, resumed.distances)

    def test_resume_with_empty_dir_starts_fresh(self, tmp_path, graph, machine):
        d_ref, _ = spmd_delta_stepping(graph, 0, machine, delta=25)
        d_res, _ = spmd_delta_stepping(
            graph, 0, machine, delta=25,
            checkpoint_dir=tmp_path, resume=True,
        )
        assert np.array_equal(d_ref, d_res)

    def test_checkpointing_does_not_change_metrics(self, graph, machine, tmp_path):
        cfg = preset("opt", 25)
        _, ctx_plain = spmd_delta_stepping(graph, 0, machine, config=cfg)
        _, ctx_ck = spmd_delta_stepping(
            graph, 0, machine, config=cfg, checkpoint_dir=tmp_path,
        )
        assert ctx_plain.metrics.summary() == ctx_ck.metrics.summary()
