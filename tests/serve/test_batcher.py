"""Unit tests for the micro-batcher's flush and admission policy.

The clock is injected so flush timing is tested without sleeping.
"""

import pytest

from repro.serve.batcher import MicroBatcher
from repro.serve.request import ServiceOverload, ServiceShutdown


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def make(capacity=8, max_batch_size=3, flush_interval_s=1.0):
    clock = FakeClock()
    batcher = MicroBatcher(
        capacity=capacity,
        max_batch_size=max_batch_size,
        flush_interval_s=flush_interval_s,
        clock=clock,
    )
    return batcher, clock


class TestFlushTriggers:
    def test_size_trigger(self):
        batcher, _ = make(max_batch_size=3)
        for i in range(2):
            batcher.put(i)
        assert batcher.take(block=False) is None  # below size, before interval
        batcher.put(2)
        assert batcher.take(block=False) == [0, 1, 2]

    def test_latency_trigger(self):
        batcher, clock = make(max_batch_size=8, flush_interval_s=1.0)
        batcher.put("lonely")
        clock.t = 0.5
        assert batcher.take(block=False) is None
        clock.t = 1.0  # the oldest request has now waited the full interval
        assert batcher.take(block=False) == ["lonely"]

    def test_fifo_and_batch_bound(self):
        batcher, clock = make(max_batch_size=3, flush_interval_s=1.0)
        for i in range(5):
            batcher.put(i)
        assert batcher.take(block=False) == [0, 1, 2]
        clock.t = 1.0
        assert batcher.take(block=False) == [3, 4]
        assert batcher.depth == 0

    def test_zero_interval_flushes_immediately(self):
        batcher, _ = make(max_batch_size=8, flush_interval_s=0.0)
        batcher.put("x")
        assert batcher.take(block=False) == ["x"]


class TestAdmission:
    def test_put_returns_depth(self):
        batcher, _ = make()
        assert batcher.put("a") == 1
        assert batcher.put("b") == 2
        assert len(batcher) == 2

    def test_overload_at_capacity(self):
        batcher, _ = make(capacity=2)
        batcher.put("a")
        batcher.put("b")
        with pytest.raises(ServiceOverload) as info:
            batcher.put("c")
        assert info.value.depth == 2
        assert info.value.capacity == 2
        assert batcher.depth == 2  # the queue never grows past its bound

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(capacity=0, max_batch_size=1, flush_interval_s=0)
        with pytest.raises(ValueError):
            MicroBatcher(capacity=1, max_batch_size=0, flush_interval_s=0)
        with pytest.raises(ValueError):
            MicroBatcher(capacity=1, max_batch_size=1, flush_interval_s=-1)


class Req:
    """Minimal request exposing the EDF contract of QueryRequest."""

    def __init__(self, name, deadline_at=float("inf")):
        self.name = name
        self.deadline_at = deadline_at

    def __repr__(self):  # pragma: no cover - assertion messages only
        return f"Req({self.name})"


class TestEdfOrder:
    def test_tight_deadline_jumps_fifo(self):
        # A late-arriving tight-deadline request is scheduled before
        # older slack ones (the ROADMAP follow-up).
        batcher, _ = make(max_batch_size=8, flush_interval_s=0.0)
        slack1 = Req("slack1", deadline_at=10.0)
        slack2 = Req("slack2", deadline_at=12.0)
        tight = Req("tight", deadline_at=0.5)  # arrives last
        for r in (slack1, slack2, tight):
            batcher.put(r)
        assert batcher.take(block=False) == [tight, slack1, slack2]

    def test_edf_spills_slackest_past_batch_bound(self):
        batcher, _ = make(max_batch_size=2, flush_interval_s=0.0)
        slack = Req("slack", deadline_at=99.0)
        mid = Req("mid", deadline_at=5.0)
        tight = Req("tight", deadline_at=1.0)
        for r in (slack, mid, tight):
            batcher.put(r)
        assert batcher.take(block=False) == [tight, mid]
        assert batcher.take(block=False) == [slack]

    def test_no_budgets_preserves_fifo(self):
        batcher, _ = make(max_batch_size=8, flush_interval_s=0.0)
        reqs = [Req(i) for i in range(4)]
        for r in reqs:
            batcher.put(r)
        assert batcher.take(block=False) == reqs

    def test_plain_payloads_still_work(self):
        # Non-request payloads (no deadline_at attribute) sort as FIFO.
        batcher, _ = make(max_batch_size=8, flush_interval_s=0.0)
        batcher.put("a")
        batcher.put("b")
        assert batcher.take(block=False) == ["a", "b"]


class TestRequeue:
    def test_requeue_bypasses_capacity(self):
        batcher, _ = make(capacity=1, flush_interval_s=0.0)
        batcher.put("a")
        batcher.requeue("retry")  # over capacity, still admitted
        assert batcher.depth == 2

    def test_requeue_bypasses_closed(self):
        batcher, _ = make(flush_interval_s=0.0)
        batcher.close()
        with pytest.raises(ServiceShutdown):
            batcher.put("a")
        batcher.requeue("retry")
        assert batcher.take(block=False) == ["retry"]

    def test_ready_at_holds_entry_until_backoff_expires(self):
        batcher, clock = make(flush_interval_s=0.0)
        batcher.requeue("retry", ready_at=2.0)
        assert batcher.take(block=False) is None  # backoff not expired
        assert batcher.depth == 1
        clock.t = 2.0
        assert batcher.take(block=False) == ["retry"]

    def test_held_back_entry_does_not_block_ready_ones(self):
        batcher, clock = make(flush_interval_s=0.0)
        batcher.requeue("later", ready_at=5.0)
        batcher.put("now")
        assert batcher.take(block=False) == ["now"]
        clock.t = 5.0
        assert batcher.take(block=False) == ["later"]

    def test_latency_trigger_runs_off_oldest_ready_entry(self):
        batcher, clock = make(max_batch_size=8, flush_interval_s=1.0)
        batcher.requeue("held", ready_at=10.0)
        clock.t = 0.5
        batcher.put("fresh")
        clock.t = 1.2  # "fresh" has waited only 0.7s; "held" not ready
        assert batcher.take(block=False) is None
        clock.t = 1.5  # now "fresh" hits the interval
        assert batcher.take(block=False) == ["fresh"]

    def test_requeue_preserves_original_enqueue_time(self):
        # Regression: requeue used to stamp a fresh enqueued_at, so each
        # retry restarted the full flush_interval_s wait and a lone
        # retried request slipped further past its budget every attempt.
        batcher, clock = make(max_batch_size=8, flush_interval_s=1.0)
        clock.t = 0.5  # request originally entered at 0.5
        batcher.requeue("retry", ready_at=1.0, enqueued_at=0.5)
        clock.t = 1.0
        # Without preservation the trigger would not fire until 2.0;
        # anchored to the original 0.5 it fires at 1.5.
        assert batcher.take(block=False) is None
        clock.t = 1.5
        assert batcher.take(block=False) == ["retry"]

    def test_latency_trigger_uses_min_enqueue_time_not_queue_head(self):
        # A requeued entry sits at the queue *tail* but can carry the
        # oldest enqueued_at; the trigger must scan all ready entries.
        batcher, clock = make(max_batch_size=8, flush_interval_s=1.0)
        clock.t = 0.5
        batcher.put("young")  # head of queue, enqueued at 0.5
        batcher.requeue("old-retry", enqueued_at=0.0)  # tail, but oldest
        clock.t = 1.0  # "old-retry" has waited the full interval
        assert batcher.take(block=False) == ["young", "old-retry"]


class TestShutdown:
    def test_close_refuses_new_but_drains_queued(self):
        batcher, _ = make(max_batch_size=8, flush_interval_s=60.0)
        batcher.put("a")
        batcher.put("b")
        batcher.close()
        with pytest.raises(ServiceShutdown):
            batcher.put("c")
        # a closed batcher flushes immediately regardless of triggers
        assert batcher.take(block=False) == ["a", "b"]
        assert batcher.take(block=True) is None  # closed + empty: exit signal

    def test_cancel_pending(self):
        batcher, _ = make()
        batcher.put("a")
        batcher.put("b")
        assert batcher.cancel_pending() == ["a", "b"]
        assert batcher.depth == 0

    def test_wait_empty(self):
        batcher, _ = make(flush_interval_s=0.0)
        assert batcher.wait_empty(timeout=0.01)
        batcher.put("a")
        assert not batcher.wait_empty(timeout=0.01)
        batcher.take(block=False)
        assert batcher.wait_empty(timeout=0.01)
