"""Runtime invariant guards: detection power and zero-overhead gating.

Each invariant gets a seeded mutation test: corrupt the solve state (or
the guard's view of it) in exactly the way the invariant forbids and
assert the guard trips with :class:`GuardViolation`. Clean solves under
``paranoid`` must pass every check while leaving distances *and metrics*
bit-identical to an unguarded run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SolverConfig, preset
from repro.core.solver import solve_sssp
from repro.graph.rmat import RMAT1, rmat_graph
from repro.runtime.guards import GuardViolation, InvariantGuards
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import Metrics
from repro.spmd import engine as spmd_engine
from repro.spmd.engine import spmd_bellman_ford, spmd_delta_stepping
from repro.spmd.faults import FaultPlan, RankCrash, solve_with_faults


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=8, edge_factor=4, params=RMAT1, seed=7)


@pytest.fixture(scope="module")
def machine():
    return MachineConfig(num_ranks=4, threads_per_rank=2)


# ----------------------------------------------------------------------
# Unit-level: every invariant trips on a minimal synthetic violation.
# ----------------------------------------------------------------------
class TestUnitViolations:
    def test_bucket_monotonicity(self):
        g = InvariantGuards(8, 25)
        g.on_bucket_start(0)
        g.on_bucket_start(3)
        with pytest.raises(GuardViolation, match="bucket monotonicity"):
            g.on_bucket_start(3)
        g2 = InvariantGuards(8, 25)
        g2.on_bucket_start(5)
        with pytest.raises(GuardViolation, match="bucket monotonicity"):
            g2.on_bucket_start(2)

    def test_distance_monotonicity(self):
        g = InvariantGuards(4, 25)
        d = np.array([0, 10, 20, 30], dtype=np.int64)
        g.after_relaxations(d)
        d2 = d.copy()
        d2[2] = 25  # a tentative distance rose
        with pytest.raises(GuardViolation, match="distance monotonicity"):
            g.after_relaxations(d2)

    def test_rollback_permits_one_raise(self):
        g = InvariantGuards(4, 25)
        d = np.array([0, 10, 20, 30], dtype=np.int64)
        g.after_relaxations(d)
        g.on_rollback()
        d2 = d.copy()
        d2[2] = 99  # lawful: rank restarted from a checkpoint
        g.after_relaxations(d2)  # no raise
        with pytest.raises(GuardViolation):
            d3 = d2.copy()
            d3[1] = 50
            g.after_relaxations(d3)

    def test_settled_flag_finality(self):
        g = InvariantGuards(4, 25)
        d = np.array([0, 10, 20, 30], dtype=np.int64)
        settled = np.array([True, True, False, False])
        g.check_settled(d, settled)
        with pytest.raises(GuardViolation, match="settled finality"):
            g.check_settled(d, np.array([True, False, False, False]))

    def test_settled_distance_finality(self):
        g = InvariantGuards(4, 25)
        d = np.array([0, 10, 20, 30], dtype=np.int64)
        settled = np.array([True, True, False, False])
        g.check_settled(d, settled)
        d2 = d.copy()
        d2[1] = 8  # settled vertex got a new (even better) distance
        with pytest.raises(GuardViolation, match="settled finality"):
            g.check_settled(d2, settled)

    def test_ios_partition(self):
        g = InvariantGuards(4, 25)
        proposed = np.array([10, 40, 20, 60], dtype=np.int64)
        good_inner = proposed < 50
        g.check_ios_partition(proposed, 50, good_inner)  # no raise
        with pytest.raises(GuardViolation, match="IOS partition"):
            g.check_ios_partition(proposed, 50, proposed < 30)  # 40 -> outer
        with pytest.raises(GuardViolation, match="IOS partition"):
            g.check_ios_partition(proposed, 50, proposed < 70)  # 60 -> inner

    def test_ios_coverage(self):
        g = InvariantGuards(4, 25)
        g.check_ios_coverage(7, 7)  # no raise
        with pytest.raises(GuardViolation, match="edge conservation"):
            g.check_ios_coverage(7, 6)

    def test_recovery_separation(self):
        g = InvariantGuards(4, 25)
        clean = Metrics(num_ranks=4, threads_per_rank=2)
        g.check_recovery_separation(clean, allowed=False)  # no raise
        dirty = Metrics(num_ranks=4, threads_per_rank=2)
        dirty.recovery.recovery_supersteps = 3
        with pytest.raises(GuardViolation, match="recovery-traffic"):
            g.check_recovery_separation(dirty, allowed=False)
        g.check_recovery_separation(dirty, allowed=True)  # faults ran: fine

    def test_final_sanity(self):
        g = InvariantGuards(4, 25)
        d = np.array([0, 10, 20, 30], dtype=np.int64)
        g.check_final(d, 0)  # no raise
        with pytest.raises(GuardViolation, match="d\\[root\\]"):
            g.check_final(d, 1)


# ----------------------------------------------------------------------
# Engine-level seeded mutations: corrupt a live solve, guard catches it.
# ----------------------------------------------------------------------
class TestEngineMutations:
    def test_distance_raise_mid_solve_caught(self, graph, machine, monkeypatch):
        """Seeded mutation: the solve silently *raises* the root's settled
        zero distance mid-epoch. Only the paranoid run notices."""
        original = spmd_engine._decide_mode_spmd
        fired = {"done": False}
        INF = 2**62

        def corrupting(ctx, states, mailbox, members_per_rank, k, bucket_ordinal):
            # Runs between the settle step and the long phase.
            if not fired["done"]:
                owner = next(st for st in states if st.lo <= 0 < st.hi)
                owner.d[0] = INF - 1  # root's distance rises from 0
                fired["done"] = True
            return original(ctx, states, mailbox, members_per_rank, k,
                            bucket_ordinal)

        monkeypatch.setattr(spmd_engine, "_decide_mode_spmd", corrupting)
        cfg = preset("delta", 25).evolve(paranoid=True)
        with pytest.raises(GuardViolation, match="monotonicity|finality"):
            spmd_delta_stepping(graph, 0, machine, config=cfg)
        assert fired["done"]

    def test_settled_lowering_mid_solve_caught(self, graph, machine, monkeypatch):
        """Seeded mutation: a settled vertex's distance is *lowered* after
        settling (never a monotonicity breach, only a finality one)."""
        original = spmd_engine._decide_mode_spmd
        fired = {"done": False}

        def corrupting(ctx, states, mailbox, members_per_rank, k, bucket_ordinal):
            # Runs right after the settle step of each epoch.
            if not fired["done"]:
                for st in states:
                    hit = np.nonzero(st.settled & (st.d > 0))[0]
                    if hit.size:
                        st.d[hit[0]] -= 1
                        fired["done"] = True
                        break
            return original(ctx, states, mailbox, members_per_rank, k,
                            bucket_ordinal)

        monkeypatch.setattr(spmd_engine, "_decide_mode_spmd", corrupting)
        cfg = preset("delta", 25).evolve(paranoid=True)
        with pytest.raises(GuardViolation, match="finality"):
            spmd_delta_stepping(graph, 0, machine, config=cfg)
        assert fired["done"]

    def test_repeated_bucket_caught(self, graph, machine, monkeypatch):
        """Seeded mutation: the next-bucket allreduce repeats an index."""
        from repro.spmd.mailbox import Mailbox

        original = Mailbox.allreduce_min
        state = {"first": None}

        def stuck(self, values):
            k = original(self, values)
            if state["first"] is None and k < 2**60:
                state["first"] = k
            return state["first"] if state["first"] is not None else k

        monkeypatch.setattr(Mailbox, "allreduce_min", stuck)
        cfg = preset("delta", 25).evolve(paranoid=True)
        with pytest.raises(GuardViolation, match="bucket monotonicity"):
            spmd_delta_stepping(graph, 0, machine, config=cfg)

    def test_recovery_leak_caught(self, graph, machine):
        """Seeded mutation: recovery-phase traffic charged in a fault-free
        paranoid solve must trip the separation guard at solve end."""
        from repro.core.context import make_context

        cfg = preset("delta", 25).evolve(paranoid=True)
        ctx = make_context(graph, machine, cfg)
        assert ctx.guards is not None
        ctx.metrics.recovery.recovery_supersteps = 1
        with pytest.raises(GuardViolation, match="recovery-traffic"):
            ctx.guards.check_recovery_separation(ctx.metrics, allowed=False)


# ----------------------------------------------------------------------
# Clean solves: guards pass, and disabling them changes nothing.
# ----------------------------------------------------------------------
class TestCleanSolves:
    @pytest.mark.parametrize("algorithm", ["delta", "opt", "lb-opt", "bellman-ford"])
    def test_paranoid_identical_distances_and_metrics(
        self, graph, machine, algorithm
    ):
        cfg = preset(algorithm, 25)
        d0, ctx0 = spmd_delta_stepping(graph, 0, machine, config=cfg)
        d1, ctx1 = spmd_delta_stepping(
            graph, 0, machine, config=cfg.evolve(paranoid=True)
        )
        assert np.array_equal(d0, d1)
        assert ctx0.metrics.summary() == ctx1.metrics.summary()
        assert ctx0.guards is None
        assert ctx1.guards is not None
        assert ctx1.guards.checks > 0
        assert ctx1.guards.violations == 0

    def test_paranoid_core_engine(self, graph):
        ref = solve_sssp(graph, 0, algorithm="opt", num_ranks=4,
                         threads_per_rank=2)
        par = solve_sssp(graph, 0, algorithm="opt", num_ranks=4,
                         threads_per_rank=2, paranoid=True, validate=True)
        assert np.array_equal(ref.distances, par.distances)
        assert ref.metrics.summary() == par.metrics.summary()

    def test_paranoid_with_ios(self, graph, machine):
        cfg = SolverConfig(delta=25, use_ios=True)
        d0, _ = spmd_delta_stepping(graph, 0, machine, config=cfg)
        d1, ctx1 = spmd_delta_stepping(
            graph, 0, machine, config=cfg.evolve(paranoid=True)
        )
        assert np.array_equal(d0, d1)
        assert ctx1.guards.violations == 0

    def test_paranoid_spmd_bf(self, graph, machine):
        d0, _ = spmd_bellman_ford(graph, 0, machine)
        d1, ctx1 = spmd_bellman_ford(graph, 0, machine, paranoid=True)
        assert np.array_equal(d0, d1)
        assert ctx1.guards.violations == 0

    def test_paranoid_under_faults_and_recovery(self, graph, machine):
        """A rank restart lawfully raises distances; on_rollback keeps the
        guards from flagging it, and recovery traffic is allowed."""
        plan = FaultPlan(seed=3, loss_rate=0.05, crashes=(RankCrash(1, 4),))
        ref = solve_with_faults(graph, 0, FaultPlan(), machine=machine,
                                config=preset("opt", 25))
        res = solve_with_faults(graph, 0, plan, machine=machine,
                                config=preset("opt", 25), paranoid=True,
                                validate=True)
        assert np.array_equal(ref.distances, res.distances)

    def test_degrade_pass_is_allowed_recovery_traffic(self, graph, machine):
        from repro.runtime.watchdog import DeadlineConfig

        cfg = preset("opt", 25).evolve(paranoid=True)
        d_ref, _ = spmd_delta_stepping(graph, 0, machine, delta=25,
                                       config=preset("opt", 25))
        d, ctx = spmd_delta_stepping(
            graph, 0, machine, config=cfg,
            deadline=DeadlineConfig(max_supersteps=2, policy="degrade"),
        )
        assert np.array_equal(d_ref, d)
        assert ctx.guards.violations == 0
