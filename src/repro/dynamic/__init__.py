"""Live graphs: typed edge updates, snapshot versioning, incremental repair.

The subsystem has three layers, consumed bottom-up by the serving plane:

- :mod:`repro.dynamic.updates` — :class:`UpdateBatch` (typed
  insert/delete/reweight batches with validation), :func:`apply_batch`
  (immutable rebuild + arc-level :class:`EdgeDelta`) and
  :func:`random_update_batch` (seeded churn for benchmarks and CI);
- :mod:`repro.dynamic.versioner` — :class:`GraphVersioner` minting
  immutable :class:`GraphSnapshot` lineages with structural digests,
  memoised execution contexts and bounded retention;
- :mod:`repro.dynamic.repair` — :func:`repair_sssp`, incremental
  distance repair through the stepping/bucket-index machinery,
  bit-identical to a fresh solve with a cost-model fallback.
"""

from repro.dynamic.repair import RepairResult, repair_sssp
from repro.dynamic.updates import (
    EdgeDelta,
    UpdateBatch,
    apply_batch,
    random_update_batch,
)
from repro.dynamic.versioner import GraphSnapshot, GraphVersioner, structural_digest

__all__ = [
    "EdgeDelta",
    "GraphSnapshot",
    "GraphVersioner",
    "RepairResult",
    "UpdateBatch",
    "apply_batch",
    "random_update_batch",
    "repair_sssp",
    "structural_digest",
]
