"""Unit tests for path reconstruction and structural validation."""

import numpy as np
import pytest

from repro.core.distances import INF
from repro.core.paths import (
    NO_PARENT,
    build_parent_tree,
    extract_path,
    predecessor_arcs,
    tree_depths,
)
from repro.core.reference import dijkstra_reference
from repro.core.validation import validate_sssp_structure
from repro.graph.builder import from_undirected_edges
from repro.graph.rmat import rmat_graph


class TestBuildParentTree:
    def test_path_graph_chain(self, path_graph):
        d = dijkstra_reference(path_graph, 0)
        parent = build_parent_tree(path_graph, d, 0)
        assert parent[0] == NO_PARENT
        assert list(parent[1:]) == [0, 1, 2, 3]

    def test_tree_edges_are_tight(self, rmat1_small):
        d = dijkstra_reference(rmat1_small, 3)
        parent = build_parent_tree(rmat1_small, d, 3)
        for v in range(rmat1_small.num_vertices):
            u = parent[v]
            if u == NO_PARENT:
                continue
            nbrs = rmat1_small.neighbors(u)
            ws = rmat1_small.neighbor_weights(u)
            i = np.nonzero(nbrs == v)[0]
            assert i.size >= 1
            assert np.any(d[u] + ws[i] == d[v])

    def test_unreached_have_no_parent(self, disconnected_graph):
        d = dijkstra_reference(disconnected_graph, 0)
        parent = build_parent_tree(disconnected_graph, d, 0)
        assert parent[2] == NO_PARENT
        assert parent[4] == NO_PARENT

    def test_invalid_distances_rejected(self, path_graph):
        d = dijkstra_reference(path_graph, 0)
        d[3] -= 1  # unattainable distance
        with pytest.raises(ValueError, match="no tight incoming arc"):
            build_parent_tree(path_graph, d, 0)

    def test_shape_checked(self, path_graph):
        with pytest.raises(ValueError, match="shape"):
            build_parent_tree(path_graph, np.zeros(3, np.int64), 0)


class TestExtractPath:
    def test_full_path(self, path_graph):
        d = dijkstra_reference(path_graph, 0)
        parent = build_parent_tree(path_graph, d, 0)
        assert extract_path(parent, 0, 4) == [0, 1, 2, 3, 4]

    def test_root_path(self, path_graph):
        d = dijkstra_reference(path_graph, 0)
        parent = build_parent_tree(path_graph, d, 0)
        assert extract_path(parent, 0, 0) == [0]

    def test_unreached_target(self, disconnected_graph):
        d = dijkstra_reference(disconnected_graph, 0)
        parent = build_parent_tree(disconnected_graph, d, 0)
        assert extract_path(parent, 0, 3) == []

    def test_cycle_detected(self):
        # vertices 1 and 2 point at each other; the root is disjoint
        parent = np.array([NO_PARENT, 2, 1], dtype=np.int64)
        with pytest.raises(ValueError, match="cycle"):
            extract_path(parent, 0, 1)

    def test_path_cost_matches_distance(self, rmat1_small):
        d = dijkstra_reference(rmat1_small, 3)
        parent = build_parent_tree(rmat1_small, d, 3)
        far = int(np.argmax(np.where(d < INF, d, -1)))
        path = extract_path(parent, 3, far)
        cost = 0
        for u, v in zip(path, path[1:]):
            nbrs = rmat1_small.neighbors(u)
            ws = rmat1_small.neighbor_weights(u)
            i = np.nonzero(nbrs == v)[0][0]
            cost += int(ws[i])
        assert cost == int(d[far])


class TestPredecessorArcs:
    def test_diamond_dag(self, diamond_graph):
        d = dijkstra_reference(diamond_graph, 0)
        tails, heads = predecessor_arcs(diamond_graph, d)
        pairs = set(zip(tails.tolist(), heads.tolist()))
        # tight arcs: 0->1 (1), 1->2 (2), 1->3 (2)
        assert (0, 1) in pairs
        assert (1, 3) in pairs
        assert (1, 2) in pairs
        assert (0, 2) not in pairs  # 0-2 weighs 5 > d[2]=2

    def test_every_reached_nonroot_has_predecessor(self, rmat1_small):
        d = dijkstra_reference(rmat1_small, 3)
        _, heads = predecessor_arcs(rmat1_small, d)
        reached = np.nonzero((d < INF))[0]
        covered = set(heads.tolist())
        for v in reached:
            if v != 3:
                assert int(v) in covered


class TestTreeDepths:
    def test_path_depths(self, path_graph):
        d = dijkstra_reference(path_graph, 0)
        parent = build_parent_tree(path_graph, d, 0)
        assert list(tree_depths(parent, 0)) == [0, 1, 2, 3, 4]

    def test_unreached_minus_one(self, disconnected_graph):
        d = dijkstra_reference(disconnected_graph, 0)
        parent = build_parent_tree(disconnected_graph, d, 0)
        depth = tree_depths(parent, 0)
        assert depth[2] == -1 and depth[4] == -1
        assert depth[0] == 0 and depth[1] == 1


class TestStructuralValidation:
    def test_accepts_correct_result(self, rmat1_small):
        d = dijkstra_reference(rmat1_small, 3)
        report = validate_sssp_structure(rmat1_small, 3, d)
        assert report.valid
        assert report.num_reached == int((d < INF).sum())
        assert report.tree_edges == report.num_reached - 1
        report.raise_if_invalid()

    def test_rejects_nonzero_root(self, path_graph):
        d = dijkstra_reference(path_graph, 0)
        d[0] = 1
        report = validate_sssp_structure(path_graph, 0, d)
        assert not report.valid
        assert any("root" in f for f in report.failures)

    def test_rejects_infeasible_edge(self, path_graph):
        d = dijkstra_reference(path_graph, 0)
        d[2] += 100  # violates d[2] <= d[1] + 3
        report = validate_sssp_structure(path_graph, 0, d)
        assert not report.valid

    def test_rejects_too_small_distance(self, path_graph):
        # Feasible but unattained distances must be rejected too.
        d = dijkstra_reference(path_graph, 0)
        d[4] -= 1
        report = validate_sssp_structure(path_graph, 0, d)
        assert not report.valid

    def test_rejects_mixed_reached_unreached_edge(self, path_graph):
        d = dijkstra_reference(path_graph, 0)
        d[4] = INF
        report = validate_sssp_structure(path_graph, 0, d)
        assert not report.valid
        assert any("unreached" in f for f in report.failures)

    def test_rejects_shape_mismatch(self, path_graph):
        report = validate_sssp_structure(path_graph, 0, np.zeros(2, np.int64))
        assert not report.valid

    def test_raise_if_invalid(self, path_graph):
        d = dijkstra_reference(path_graph, 0)
        d[0] = 5
        with pytest.raises(AssertionError, match="validation failed"):
            validate_sssp_structure(path_graph, 0, d).raise_if_invalid()

    def test_accepts_zero_weight_graphs(self):
        g = from_undirected_edges(
            np.array([0, 1]), np.array([1, 2]), np.array([0, 3]), 3
        )
        d = dijkstra_reference(g, 0)
        assert validate_sssp_structure(g, 0, d).valid

    def test_detects_random_corruption(self):
        g = rmat_graph(scale=9, seed=9)
        d = dijkstra_reference(g, 5)
        rng = np.random.default_rng(0)
        detected = 0
        trials = 20
        for _ in range(trials):
            bad = d.copy()
            v = int(rng.integers(0, g.num_vertices))
            if bad[v] >= INF:
                bad[v] = 7
            else:
                bad[v] += int(rng.integers(1, 100))
            if bad[v] != d[v]:
                report = validate_sssp_structure(g, 5, bad)
                detected += not report.valid
        assert detected == trials
