"""Wall-clock vs. cost-model drift detection.

The cost model prices every step record in simulated seconds; the tracer
also measures how long the simulator actually spent producing each record.
Those two clocks run at wildly different speeds (Python is not the paper's
BlueGene/Q), but their *relative* per-kind weighting should agree: if
``bucket_scan`` records take 10× more wall time per simulated second than
everything else, the cost model's ``t_scan`` underprices scanning relative
to reality — exactly what :mod:`repro.runtime.calibration` fits offline.
The :class:`DriftMonitor` turns that calibration story into a continuously
checked invariant: it aggregates wall and simulated time per record kind
and flags kinds whose normalized ratio leaves a configurable band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["DriftMonitor", "DEFAULT_DRIFT_THRESHOLD"]

DEFAULT_DRIFT_THRESHOLD = 3.0
"""Flag a kind when its wall/simulated ratio diverges from the run-wide
ratio by more than this factor (either direction)."""


@dataclass
class _KindAgg:
    wall_s: float = 0.0
    sim_s: float = 0.0
    records: int = 0


@dataclass
class DriftMonitor:
    """Aggregates wall vs. simulated seconds per record kind.

    Parameters
    ----------
    threshold:
        Flagging band: a kind is flagged when its normalized ratio ``rel``
        (kind wall/sim divided by the overall wall/sim) exceeds
        ``threshold`` or falls below ``1/threshold``.
    min_wall_s:
        Kinds with less aggregate wall time than this are never flagged —
        sub-millisecond aggregates are timer noise, not model drift.
    """

    threshold: float = DEFAULT_DRIFT_THRESHOLD
    min_wall_s: float = 5e-3
    _kinds: dict[str, _KindAgg] = field(default_factory=dict)

    def add(self, kind: str, wall_dt: float, sim_dt: float) -> None:
        """Attribute one record's wall and simulated duration to ``kind``."""
        agg = self._kinds.setdefault(kind, _KindAgg())
        agg.wall_s += max(wall_dt, 0.0)
        agg.sim_s += sim_dt
        agg.records += 1

    @property
    def total_wall_s(self) -> float:
        """Wall seconds attributed across all kinds."""
        return sum(a.wall_s for a in self._kinds.values())

    @property
    def total_sim_s(self) -> float:
        """Simulated seconds across all kinds."""
        return sum(a.sim_s for a in self._kinds.values())

    def report(self) -> list[dict[str, Any]]:
        """One row per kind: wall/sim totals, ratio, normalized ratio, flag.

        ``ratio`` is wall seconds per simulated second for the kind;
        ``rel`` divides that by the run-wide ratio, so ``rel == 1`` means
        the cost model weights this kind exactly as reality does and
        ``rel == 4`` means the kind is 4× more expensive in wall time than
        the model's relative pricing predicts.
        """
        total_wall = self.total_wall_s
        total_sim = self.total_sim_s
        overall = total_wall / total_sim if total_sim > 0 else 0.0
        rows: list[dict[str, Any]] = []
        for kind in sorted(self._kinds):
            agg = self._kinds[kind]
            ratio = agg.wall_s / agg.sim_s if agg.sim_s > 0 else float("inf")
            rel = ratio / overall if overall > 0 else 0.0
            flagged = (
                agg.wall_s >= self.min_wall_s
                and agg.sim_s > 0
                and overall > 0
                and (rel > self.threshold or rel < 1.0 / self.threshold)
            )
            rows.append(
                {
                    "kind": kind,
                    "records": agg.records,
                    "wall_s": agg.wall_s,
                    "sim_s": agg.sim_s,
                    "ratio": ratio,
                    "rel": rel,
                    "flagged": flagged,
                }
            )
        return rows

    def flagged(self) -> list[dict[str, Any]]:
        """Only the rows whose normalized ratio left the threshold band."""
        return [row for row in self.report() if row["flagged"]]
