"""Analytic cost model: counters -> simulated time -> simulated GTEPS.

Folds the :class:`~repro.runtime.metrics.StepRecord` stream of a run into
simulated seconds using an α–β (LogGP-flavoured) model:

- a compute record costs ``comp_max * t_kind`` — the busiest thread bounds
  the step (bulk-synchronous execution);
- an exchange costs ``alpha * msgs_max + beta * bytes_max`` — per-message
  overhead plus serialisation at the busiest rank;
- an allreduce costs ``t_allreduce_base + t_allreduce_log * log2(P)``.

The model also reproduces the paper's time decomposition (Fig. 10(b),
11(b)): records tagged ``phase_kind == "bucket"`` (active-set scans,
next-bucket searches, termination allreduces) accumulate into **BktTime**;
everything else (relaxation compute and its communication) into
**OtherTime**.

TEPS follows the Graph 500 convention: ``m / t`` with ``m`` the number of
*input* (undirected) edges, regardless of how many relaxations were
actually performed — which is why pruning raises TEPS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import ComputeKind, Metrics

__all__ = ["CostBreakdown", "price_record", "evaluate_cost", "simulated_gteps"]


@dataclass(frozen=True)
class CostBreakdown:
    """Simulated time of a run, decomposed the way the paper reports it."""

    compute_time: float
    comm_time: float
    sync_time: float
    bucket_time: float
    """BktTime: bucket identification, active-set scans, termination checks."""
    other_time: float
    """OtherTime: relaxation processing and its communication."""

    @property
    def total_time(self) -> float:
        """Total simulated seconds (= bucket_time + other_time)."""
        return self.bucket_time + self.other_time

    def as_row(self) -> dict[str, float]:
        """Dictionary view for table printing."""
        return {
            "total_s": self.total_time,
            "bkt_s": self.bucket_time,
            "other_s": self.other_time,
            "compute_s": self.compute_time,
            "comm_s": self.comm_time,
            "sync_s": self.sync_time,
        }


def _compute_unit_cost(kind: str, machine: MachineConfig) -> float:
    """Per-work-unit compute cost for a record kind."""
    if kind in (
        ComputeKind.SHORT_RELAX.value,
        ComputeKind.LONG_PUSH_RELAX.value,
        ComputeKind.BF_RELAX.value,
        ComputeKind.PULL_RESPONSE.value,
    ):
        return machine.t_relax
    if kind == ComputeKind.PULL_REQUEST.value:
        return machine.t_request
    if kind == ComputeKind.BUCKET_SCAN.value:
        return machine.t_scan
    raise ValueError(f"unknown compute kind {kind!r}")


def price_record(rec, machine: MachineConfig) -> float:
    """Simulated duration of one :class:`~repro.runtime.metrics.StepRecord`.

    The single authoritative pricing rule of the α–β model — an exchange is
    ``alpha * msgs_max + beta * bytes_max``, an allreduce is ``allreduces *
    allreduce_time()``, compute is ``comp_max * t_kind``. Both
    :func:`evaluate_cost` and the analysis timeline
    (:func:`repro.analysis.trace.timeline`) fold records through this
    function, so their totals agree by construction.
    """
    if rec.kind == "exchange":
        return machine.alpha * rec.msgs_max + machine.beta * rec.bytes_max
    if rec.kind == "allreduce":
        return rec.allreduces * machine.allreduce_time()
    return rec.comp_max * _compute_unit_cost(rec.kind, machine)


def evaluate_cost(metrics: Metrics, machine: MachineConfig) -> CostBreakdown:
    """Fold a run's records into a :class:`CostBreakdown`."""
    compute = comm = sync = 0.0
    bucket = other = 0.0
    for rec in metrics.records:
        t = price_record(rec, machine)
        if rec.kind == "exchange":
            comm += t
        elif rec.kind == "allreduce":
            sync += t
        else:
            compute += t
        if rec.phase_kind == "bucket":
            bucket += t
        else:
            other += t
    return CostBreakdown(
        compute_time=compute,
        comm_time=comm,
        sync_time=sync,
        bucket_time=bucket,
        other_time=other,
    )


def simulated_gteps(
    num_undirected_edges: int, metrics: Metrics, machine: MachineConfig
) -> float:
    """Simulated traversal rate in GTEPS (Graph 500 convention ``m / t``)."""
    cost = evaluate_cost(metrics, machine)
    if cost.total_time <= 0:
        return float("inf") if num_undirected_edges else 0.0
    return num_undirected_edges / cost.total_time / 1e9
