"""QueryBroker: the embeddable SSSP query service (DESIGN.md §11).

Request path::

    submit ──▶ admission control ──▶ distance cache ──▶ micro-batcher
                  │ (bounded queue)       │ (hit: done)      │
                  ▼                       ▼                  ▼
           ServiceOverload          QueryFuture        worker pool
                                                   (BatchSolver.solve_many)

One broker serves one (graph, config, machine) triple — the coordinates
the distance cache is keyed under; run one broker per graph/config pair
you serve. Queries for the same root arriving in one batch window are
*coalesced* into a single solve; different per-request deadlines are
never coalesced (a strict budget must not fail a lax request). Answers
are bit-identical to offline :func:`~repro.core.solver.solve_sssp` on
every path — cache hit, cache miss and batched — because the engine is
deterministic and the cache stores engine output verbatim.

Overload sheds at admission with a typed
:class:`~repro.serve.request.ServiceOverload`; shutdown drains: admitted
requests complete, new ones are refused. Telemetry flows into a
:class:`~repro.obs.registry.MetricsRegistry` (queue depth, batch size,
latency histograms, cache and shed counters) and — when a
:class:`~repro.obs.tracer.TraceConfig` is given — into per-request and
per-batch tracer spans written at shutdown.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.paths import build_parent_tree, extract_path
from repro.core.solver import BatchSolver
from repro.runtime.watchdog import SolveTimeout
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import DistanceCache
from repro.serve.request import (
    QueryFuture,
    QueryRequest,
    QueryResult,
    ServiceOverload,
    ServiceShutdown,
)
from repro.serve.slo import LatencyWindow

__all__ = ["QueryBroker"]

_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

_UNSET = object()


class QueryBroker:
    """Batched, cached, admission-controlled SSSP query service.

    Parameters
    ----------
    graph:
        The served graph (preprocessing is hoisted once via
        :class:`~repro.core.solver.BatchSolver`).
    algorithm, delta, config, machine, num_ranks, threads_per_rank:
        Solver/machine coordinates, as for ``solve_sssp``.
    capacity:
        Bound on queued requests; submits beyond it shed with
        :class:`ServiceOverload`.
    max_batch_size:
        Size trigger of the micro-batcher.
    flush_interval_s:
        Latency trigger: the longest a queued request waits for its
        batch to fill.
    num_workers:
        Worker threads executing batches. ``0`` is manual mode — nothing
        runs until :meth:`process_once` is called — which tests and
        single-threaded embeddings use for determinism.
    cache_bytes:
        Byte budget of the distance cache (``0`` disables caching).
    default_deadline:
        :class:`~repro.runtime.watchdog.DeadlineConfig` applied to
        requests that do not carry their own.
    trace:
        Optional :class:`~repro.obs.tracer.TraceConfig`; per-request and
        per-batch spans are recorded and artifacts written at shutdown.
    registry:
        Optional external :class:`~repro.obs.registry.MetricsRegistry`;
        defaults to the tracer's (when tracing) or a fresh one.
    """

    def __init__(
        self,
        graph,
        *,
        algorithm: str = "opt",
        delta: int = 25,
        config=None,
        machine=None,
        num_ranks: int = 8,
        threads_per_rank: int = 8,
        capacity: int = 256,
        max_batch_size: int = 16,
        flush_interval_s: float = 0.002,
        num_workers: int = 1,
        cache_bytes: int = 64 << 20,
        default_deadline=None,
        trace=None,
        registry=None,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self.graph = graph
        self._solver = BatchSolver(
            graph,
            algorithm=algorithm,
            delta=delta,
            config=config,
            machine=machine,
            num_ranks=num_ranks,
            threads_per_rank=threads_per_rank,
        )
        self.default_deadline = default_deadline
        self._tracer = None
        if trace is not None and getattr(trace, "enabled", True):
            from repro.obs.tracer import Tracer

            self._tracer = Tracer(self._solver.machine, trace)
        if registry is not None:
            self.registry = registry
        elif self._tracer is not None:
            self.registry = self._tracer.registry
        else:
            from repro.obs.registry import MetricsRegistry

            self.registry = MetricsRegistry()
        self._clock = (
            self._tracer.wall_now if self._tracer is not None else time.perf_counter
        )
        self.cache = DistanceCache(cache_bytes, registry=self.registry)
        self._batcher = MicroBatcher(
            capacity=capacity,
            max_batch_size=max_batch_size,
            flush_interval_s=flush_interval_s,
            clock=self._clock,
        )
        self.latency = LatencyWindow()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._trace_lock = threading.Lock()
        self._closed = False
        self._inflight = 0
        self._next_batch_id = 0
        self._offered = 0
        self._shed = 0
        self._batches = 0
        self._batched_requests = 0
        self._solves = 0
        self._outcomes: dict[str, int] = {}
        self._t_start = self._clock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"sssp-serve-{i}", daemon=True
            )
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._batcher.depth

    @property
    def capacity(self) -> int:
        return self._batcher.capacity

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def manual(self) -> bool:
        """True when no worker threads run (``num_workers=0``)."""
        return not self._workers

    @property
    def tracer(self):
        """The service tracer (None unless constructed with ``trace=``)."""
        return self._tracer

    # ------------------------------------------------------------------
    # Submission (the client-facing edge)
    # ------------------------------------------------------------------
    def submit(
        self, root: int, *, targets=(), deadline=_UNSET
    ) -> QueryFuture:
        """Admit one query; returns its :class:`QueryFuture`.

        Admission control happens here, synchronously: an out-of-range
        root or target raises ``ValueError``, a closed broker raises
        :class:`ServiceShutdown`, and a full queue sheds with
        :class:`ServiceOverload` — the queue never grows past its bound.
        A cache hit completes the future before ``submit`` returns.
        """
        if self._closed:
            raise ServiceShutdown("broker is shut down")
        n = self.graph.num_vertices
        root = int(root)
        if not 0 <= root < n:
            raise ValueError(f"root {root} out of range (n={n})")
        targets = tuple(int(t) for t in targets)
        for t in targets:
            if not 0 <= t < n:
                raise ValueError(f"path target {t} out of range (n={n})")
        if deadline is _UNSET:
            deadline = self.default_deadline
        req = QueryRequest(
            root, targets, deadline, submitted_at=self._clock()
        )
        with self._lock:
            self._offered += 1
        cached = self.cache.get(root)
        if cached is not None:
            self._complete(req, cached, source="cache", batch_id=None)
            return req.future
        try:
            depth = self._batcher.put(req)
        except ServiceOverload:
            with self._lock:
                self._shed += 1
            self.registry.inc(
                "serve_shed_total", help="requests shed by admission control"
            )
            raise
        self.registry.set_gauge(
            "serve_queue_depth", depth, help="queued requests awaiting a batch"
        )
        return req.future

    def submit_many(self, roots, **kwargs) -> list[QueryFuture]:
        """Admit a k-root query; one future per root, in input order."""
        return [self.submit(int(r), **kwargs) for r in roots]

    def query(
        self, root: int, *, targets=(), deadline=_UNSET,
        timeout: float | None = None,
    ) -> QueryResult:
        """Synchronous convenience: submit and wait for the answer."""
        future = self.submit(root, targets=targets, deadline=deadline)
        # Manual mode: nobody else will run the batch.
        while not self._workers and not future.done():
            if self.process_once(block=True) == 0:
                break
        return future.result(timeout)

    def query_many(self, roots, **kwargs) -> list[QueryResult]:
        """Synchronous k-root query; results in input order."""
        timeout = kwargs.pop("timeout", None)
        futures = self.submit_many(roots, **kwargs)
        while not self._workers and any(not f.done() for f in futures):
            if self.process_once(block=True) == 0:
                break
        return [f.result(timeout) for f in futures]

    # ------------------------------------------------------------------
    # Batch execution (the worker edge)
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self._batcher.take(block=True)
            if batch is None:
                return
            self._execute_batch(batch)

    def process_once(self, *, block: bool = False) -> int:
        """Manual mode: take and execute one batch inline.

        Returns the number of requests served (0 = nothing ready). Safe
        to call alongside worker threads, but intended for
        ``num_workers=0`` embeddings and deterministic tests.
        """
        batch = self._batcher.take(block=block)
        if batch is None:
            return 0
        self._execute_batch(batch)
        return len(batch)

    def _execute_batch(self, batch: list) -> None:
        with self._lock:
            self._inflight += len(batch)
            batch_id = self._next_batch_id
            self._next_batch_id += 1
        t0 = self._clock()
        hits = solves = timeouts = 0
        try:
            # Coalesce: requests sharing (root, deadline) share one solve.
            groups: dict[tuple, list[QueryRequest]] = {}
            for req in batch:
                groups.setdefault(req.coalesce_key, []).append(req)
            to_solve: list[tuple[tuple, list[QueryRequest]]] = []
            for key, reqs in groups.items():
                # Re-check the cache at dispatch: an earlier batch may have
                # populated this root after these requests were queued.
                cached = self.cache.peek(key[0])
                if cached is not None:
                    hits += len(reqs)
                    for req in reqs:
                        self._complete(
                            req, cached, source="cache", batch_id=batch_id
                        )
                else:
                    to_solve.append((key, reqs))
            # The hot path: every no-deadline root of the batch in one
            # solve_many call over the shared preprocessed context.
            plain = [key for key, _ in to_solve if key[1] is None]
            results = {}
            if plain:
                for res in self._solver.solve_many([r for r, _ in plain]):
                    results[(res.root, None)] = res
            for key, reqs in to_solve:
                root, deadline = key
                res = results.get(key)
                if res is None:
                    try:
                        res = self._solver.solve(root, deadline=deadline)
                    except SolveTimeout as exc:
                        timeouts += len(reqs)
                        for req in reqs:
                            self._fail(req, exc, outcome="timeout")
                        continue
                solves += 1
                self.cache.put(root, res.distances)
                for i, req in enumerate(reqs):
                    self._complete(
                        req,
                        res.distances,
                        source="solve" if i == 0 else "coalesced",
                        batch_id=batch_id,
                        sssp=res,
                    )
        except Exception as exc:  # defensive: never strand a future
            for req in batch:
                if not req.future.done():
                    self._fail(req, exc, outcome="error")
        finally:
            wall = self._clock() - t0
            with self._lock:
                self._inflight -= len(batch)
                self._batches += 1
                self._batched_requests += len(batch)
                self._solves += solves
                self._idle.notify_all()
            self.registry.inc("serve_batches_total", help="executed batches")
            self.registry.inc(
                "serve_solves_total", solves, help="fresh engine solves"
            )
            self.registry.observe(
                "serve_batch_size",
                len(batch),
                buckets=_BATCH_SIZE_BUCKETS,
                help="requests per executed batch",
            )
            self.registry.observe(
                "serve_batch_wall_seconds", wall,
                help="wall-clock duration of batch execution",
            )
            self.registry.set_gauge("serve_queue_depth", self._batcher.depth)
            self._trace_span(
                f"batch-{batch_id}",
                "batch",
                t0,
                wall,
                requests=len(batch),
                solves=solves,
                cache_hits=hits,
                timeouts=timeouts,
            )

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _paths(
        self, root: int, distances: np.ndarray, targets: tuple[int, ...]
    ) -> dict[int, list[int] | None]:
        if not targets:
            return {}
        parent = build_parent_tree(self.graph, distances, root)
        out: dict[int, list[int] | None] = {}
        for t in targets:
            path = extract_path(parent, root, t)
            out[t] = path if path else None
        return out

    def _complete(
        self,
        req: QueryRequest,
        distances: np.ndarray,
        *,
        source: str,
        batch_id: int | None,
        sssp=None,
    ) -> None:
        latency = self._clock() - req.submitted_at
        result = QueryResult(
            root=req.root,
            distances=distances,
            source=source,
            latency_s=latency,
            batch_id=batch_id,
            paths=self._paths(req.root, distances, req.targets),
            sssp=sssp,
        )
        self._account(req, source, latency)
        req.future.set_result(result)

    def _fail(self, req: QueryRequest, error: BaseException, *, outcome: str) -> None:
        latency = self._clock() - req.submitted_at
        self._account(req, outcome, latency)
        req.future.set_error(error)

    def _account(self, req: QueryRequest, outcome: str, latency: float) -> None:
        with self._lock:
            self._outcomes[outcome] = self._outcomes.get(outcome, 0) + 1
        self.latency.record(outcome, latency)
        self.registry.inc(
            "serve_requests_total", outcome=outcome,
            help="completed requests by outcome",
        )
        self.registry.observe(
            "serve_request_latency_seconds", latency, source=outcome,
            help="end-to-end request latency",
        )
        self._trace_span(
            "request", "request", req.submitted_at, latency,
            root=req.root, outcome=outcome,
        )

    def _trace_span(
        self, name: str, cat: str, ts: float, dur: float, **args
    ) -> None:
        tracer = self._tracer
        if tracer is None:
            return
        event = {
            "type": "span",
            "name": name,
            "cat": cat,
            "ts": ts,
            "dur": max(dur, 0.0),
            "sim_ts": tracer.sim_t,
            "sim_dur": 0.0,
            "depth": 0,
            "args": dict(args),
        }
        with self._trace_lock:
            tracer.events.append(event)

    # ------------------------------------------------------------------
    # Drain and shutdown
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> bool:
        """Block until every admitted request has completed.

        In manual mode (``num_workers=0``) this *executes* the backlog
        inline. Returns False if ``timeout`` expired first.
        """
        if not self._workers:
            while self.process_once(block=False):
                pass
        if not self._batcher.wait_empty(timeout):
            return False
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(timeout=remaining)
        return True

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service. Idempotent.

        With ``drain=True`` (graceful): new submits are refused, every
        already-admitted request completes, workers exit, trace/metrics
        artifacts are written. With ``drain=False``: queued requests fail
        with :class:`ServiceShutdown`; requests already inside a batch
        still complete (a batch is never abandoned mid-flight).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            for req in self._batcher.cancel_pending():
                self._fail(
                    req,
                    ServiceShutdown("broker shut down before execution"),
                    outcome="cancelled",
                )
        self._batcher.close()
        if not self._workers:
            if drain:
                while self.process_once(block=False):
                    pass
        else:
            for worker in self._workers:
                worker.join(timeout)
        if self._tracer is not None:
            from repro.obs.export import finalize_trace

            self.registry.set_gauge("serve_queue_depth", self._batcher.depth)
            finalize_trace(self._tracer)

    def __enter__(self) -> "QueryBroker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Flat service report: traffic, latency percentiles, cache, SLO
        inputs (consumed by ``repro serve-bench`` and the benchmarks)."""
        with self._lock:
            completed = sum(self._outcomes.values())
            row = {
                "offered": self._offered,
                "completed": completed,
                "shed": self._shed,
                "batches": self._batches,
                "solves": self._solves,
                "mean_batch_size": (
                    self._batched_requests / self._batches
                    if self._batches
                    else 0.0
                ),
                "queue_depth": self._batcher.depth,
                **{
                    f"outcome_{k}": v
                    for k, v in sorted(self._outcomes.items())
                },
            }
        row["cache_hit_rate"] = self.cache.stats.hit_rate
        row["cache_bytes"] = self.cache.stats.bytes_in_use
        row["cache_evictions"] = self.cache.stats.evictions
        row.update(self.latency.summary())
        wall = self._clock() - self._t_start
        row["wall_s"] = wall
        row["throughput_qps"] = completed / wall if wall > 0 else 0.0
        return row
