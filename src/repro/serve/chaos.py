"""Deterministic chaos injection for the serving plane (DESIGN.md §12).

The serving resilience layer needs *replayable* failure scenarios, just
as PR 1's :class:`~repro.spmd.faults.FaultPlan` gave the SPMD engine.
:class:`ChaosPlan` describes — fully deterministically, from a seed —
which solve attempts are hit by which per-root faults: raised
**errors**, injected **stalls** past the deadline (surfacing as
:class:`~repro.runtime.watchdog.SolveTimeout`), **corrupted** distance
arrays, and **slow** solves (real sleep, for straggler/hedging tests).
:class:`ChaosSolver` wraps a :class:`~repro.core.solver.BatchSolver` and
applies the plan.

Determinism does not rely on call order: each draw is a pure function of
``(seed, root, attempt)`` via its own ``np.random.default_rng`` stream,
so interleaving across worker threads, coalescing, or retries cannot
shift which attempts fault. The journey harness replays a plan twice and
asserts identical fault logs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.distances import INF
from repro.runtime.watchdog import SolveTimeout

__all__ = ["ChaosEvent", "ChaosPlan", "ChaosSolver", "InjectedFault", "KINDS"]

#: Fault kinds, in draw-priority order for the rate thresholds.
KINDS = ("error", "stall", "corrupt", "slow")


class InjectedFault(RuntimeError):
    """A chaos-plan ``error`` fault: the wrapped solve raised (as a real
    engine bug or dependency failure would). Carries the root and attempt
    so tests can pin expectations to the plan."""

    def __init__(self, root: int, attempt: int) -> None:
        super().__init__(
            f"chaos: injected solve error (root {root}, attempt {attempt})"
        )
        self.root = root
        self.attempt = attempt


@dataclass(frozen=True)
class ChaosEvent:
    """One pinned fault: ``kind`` hits ``root`` at solve attempt
    ``attempt`` (0-based), regardless of the rates."""

    root: int
    attempt: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; choose from {KINDS}"
            )
        if self.root < 0 or self.attempt < 0:
            raise ValueError(f"invalid chaos event {self}")


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded, deterministic schedule of per-root solve faults.

    Rates are per solve *attempt* and mutually exclusive (their sum must
    be <= 1): one uniform draw per ``(seed, root, attempt)`` lands in the
    ``error`` / ``stall`` / ``corrupt`` / ``slow`` band or none.
    ``events`` pins faults to exact (root, attempt) pairs on top of the
    rates; ``roots`` (when non-empty) restricts rate faults to those
    roots; ``max_faulty_attempts`` makes every attempt from that index on
    clean — the standard shape for retry tests ("fails twice, then
    succeeds").
    """

    seed: int = 0
    error_rate: float = 0.0
    slow_rate: float = 0.0
    stall_rate: float = 0.0
    corrupt_rate: float = 0.0
    slow_s: float = 0.002
    corrupt_cells: int = 4
    max_faulty_attempts: int | None = None
    roots: tuple[int, ...] = ()
    events: tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        total = 0.0
        for name in ("error_rate", "slow_rate", "stall_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
            total += rate
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"fault rates must sum to <= 1 (got {total:.3f}); "
                "they are mutually exclusive bands of one draw"
            )
        if self.slow_s < 0:
            raise ValueError("slow_s must be >= 0")
        if self.corrupt_cells < 1:
            raise ValueError("corrupt_cells must be >= 1")
        if self.max_faulty_attempts is not None and self.max_faulty_attempts < 0:
            raise ValueError("max_faulty_attempts must be >= 0")
        object.__setattr__(self, "roots", tuple(int(r) for r in self.roots))
        object.__setattr__(self, "events", tuple(self.events))

    # ------------------------------------------------------------------
    @property
    def injects_anything(self) -> bool:
        """Whether this plan can inject any fault at all."""
        return bool(
            self.error_rate
            or self.slow_rate
            or self.stall_rate
            or self.corrupt_rate
            or self.events
        )

    def draw(self, root: int, attempt: int) -> str | None:
        """The fault kind hitting this (root, attempt), or None.

        Pure function of ``(seed, root, attempt)`` — independent of call
        order, thread interleaving and every other draw.
        """
        root = int(root)
        attempt = int(attempt)
        for event in self.events:
            if event.root == root and event.attempt == attempt:
                return event.kind
        if (
            self.max_faulty_attempts is not None
            and attempt >= self.max_faulty_attempts
        ):
            return None
        if self.roots and root not in self.roots:
            return None
        u = float(np.random.default_rng((self.seed, root, attempt)).random())
        threshold = 0.0
        for kind in KINDS:
            threshold += getattr(self, f"{kind}_rate")
            if u < threshold:
                return kind
        return None

    def corrupt_distances(
        self, distances: np.ndarray, root: int, attempt: int
    ) -> np.ndarray:
        """A deterministically corrupted copy of ``distances``.

        Raises up to ``corrupt_cells`` finite non-root entries — always
        detectable by the structural validator, since raising a settled
        distance breaks feasibility on its formerly tight in-edge. When
        only the root is reachable, the root itself is corrupted
        (breaking the root rule) so a "corrupt" draw never yields a
        clean array.
        """
        out = np.array(distances, copy=True)
        rng = np.random.default_rng((self.seed + 0x9E3779B9, int(root), int(attempt)))
        candidates = np.flatnonzero((out < INF))
        candidates = candidates[candidates != int(root)]
        if candidates.size == 0:
            out[int(root)] = 1  # root rule violation: d[root] != 0
            return out
        count = min(self.corrupt_cells, candidates.size)
        victims = rng.choice(candidates, size=count, replace=False)
        out[victims] += rng.integers(1, 5, size=count).astype(out.dtype) + 1
        return out

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str, **overrides) -> "ChaosPlan":
        """Parse a compact CLI spec like
        ``"error=0.1,stall=0.05,corrupt=0.1,slow=0.2,slow-ms=5,seed=3,``
        ``clean-after=2,inject=error@7x0+corrupt@3x1,roots=1+2+3"``.

        Keys: ``error``, ``stall``, ``corrupt``, ``slow`` (rates);
        ``slow-ms`` (float, milliseconds), ``seed``, ``cells``,
        ``clean-after`` (ints); ``roots=R+R+...``;
        ``inject=KIND@ROOT[xATTEMPT]`` pinned events joined with ``+``
        (attempt defaults to 0).
        """
        kwargs: dict = dict(overrides)
        key_map = {
            "error": ("error_rate", float),
            "stall": ("stall_rate", float),
            "corrupt": ("corrupt_rate", float),
            "slow": ("slow_rate", float),
            "seed": ("seed", int),
            "cells": ("corrupt_cells", int),
            "clean-after": ("max_faulty_attempts", int),
        }
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"malformed chaos spec item {item!r}")
            key, value = (part.strip() for part in item.split("=", 1))
            if key == "inject":
                events = []
                for ev in value.split("+"):
                    kind, _, rest = ev.partition("@")
                    root, _, attempt = rest.partition("x")
                    events.append(
                        ChaosEvent(
                            int(root), int(attempt) if attempt else 0, kind
                        )
                    )
                kwargs["events"] = tuple(events)
            elif key == "roots":
                kwargs["roots"] = tuple(int(r) for r in value.split("+"))
            elif key == "slow-ms":
                kwargs["slow_s"] = float(value) / 1000.0
            elif key in key_map:
                field, cast = key_map[key]
                kwargs[field] = cast(value)
            else:
                raise ValueError(f"unknown chaos spec key {key!r}")
        return cls(**kwargs)


class ChaosSolver:
    """A :class:`~repro.core.solver.BatchSolver` whose solves are
    perturbed by a :class:`ChaosPlan`.

    Drop-in for the plain solver (same ``solve``/``solve_many`` shape,
    delegated ``machine``/``config``/``algorithm``); the broker passes
    each request's attempt number so retries advance the draw stream.
    Every injected fault is appended to :attr:`log` as
    ``(root, attempt, kind)`` — replaying the same plan over the same
    requests yields the identical log.
    """

    def __init__(self, solver, plan: ChaosPlan, *, registry=None) -> None:
        self.solver = solver
        self.plan = plan
        self._registry = registry
        #: chronological ``(root, attempt, kind)`` fault records.
        self.log: list[tuple[int, int, str]] = []
        self._auto_attempts: dict[int, int] = {}

    @property
    def machine(self):
        return self.solver.machine

    @property
    def config(self):
        return self.solver.config

    @property
    def algorithm(self):
        return self.solver.algorithm

    # ------------------------------------------------------------------
    def _note(self, root: int, attempt: int, kind: str) -> None:
        self.log.append((root, attempt, kind))
        if self._registry is not None:
            self._registry.inc(
                "serve_chaos_injected_total",
                help="chaos faults injected into solve attempts",
                kind=kind,
            )

    def solve(
        self,
        root: int,
        *,
        validate=False,
        deadline=None,
        tracer=None,
        attempt: int | None = None,
        solver=None,
    ):
        """Solve from ``root``, applying the plan's draw for ``attempt``.

        When ``attempt`` is None (direct use, outside the broker) an
        internal per-root counter advances it — the first chaos-free
        idiom-preserving default. ``solver`` overrides the delegate for
        this call only — the live-graph broker routes each request to
        its pinned snapshot's solver while keeping one chaos draw stream
        and one fault log for the whole service.
        """
        root = int(root)
        if solver is None:
            solver = self.solver
        if attempt is None:
            attempt = self._auto_attempts.get(root, 0)
            self._auto_attempts[root] = attempt + 1
        kind = self.plan.draw(root, attempt)
        if kind == "error":
            self._note(root, attempt, kind)
            raise InjectedFault(root, attempt)
        if kind == "stall":
            self._note(root, attempt, kind)
            raise SolveTimeout(
                "chaos: injected stall past deadline", root=root
            )
        if kind == "slow":
            self._note(root, attempt, kind)
            if self.plan.slow_s:
                time.sleep(self.plan.slow_s)
        res = solver.solve(
            root, validate=validate, deadline=deadline, tracer=tracer
        )
        if kind == "corrupt":
            self._note(root, attempt, kind)
            res.distances = self.plan.corrupt_distances(
                res.distances, root, attempt
            )
        return res

    def summary(self) -> dict[str, int]:
        """Injected-fault counts by kind (for reports and dashboards)."""
        counts: dict[str, int] = {}
        for _root, _attempt, kind in self.log:
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def solve_many(self, roots, *, validate=False, deadline=None, trace=None):
        return [
            self.solve(int(r), validate=validate, deadline=deadline)
            for r in roots
        ]
