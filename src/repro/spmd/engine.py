"""SPMD Bellman-Ford and Δ-stepping over rank-local state.

The functions here replay the exact bulk-synchronous schedule of the
orchestrated engine — same scans, same allreduces, same exchanges, same
compute charges, in the same order — but every rank computes from its own
slice only and cross-rank data moves exclusively through the
:class:`~repro.spmd.mailbox.Mailbox`. The equivalence tests assert
bit-identical distances *and* identical metrics/cost against
:mod:`repro.core.delta_stepping`, which is the mechanical proof that the
orchestrated engine's declared traffic equals a true message-passing
execution's.

The SPMD engine covers the full paper composition: edge classification,
IOS, push *and pull* long phases (requests and responses each a mailbox
round), the expectation decision heuristic (rank-local partial sums
combined by allreduce), and hybridization into Bellman-Ford.

Both entry points accept a :class:`~repro.spmd.faults.FaultPlan`: records
then travel through a :class:`~repro.spmd.faults.FaultyMailbox` (reliable
sequence/ack/retry transport over a faulty wire), rank state is
checkpointed at epoch boundaries so a crashed rank can restart, and a
post-solve self-healing sweep re-runs Bellman-Ford iterations until the
structural validator accepts — sound because min-apply relaxation is
idempotent, monotone and therefore self-stabilizing.  With ``faults=None``
the engine byte-for-byte matches its historical fault-free behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import SolverConfig
from repro.core.context import ExecutionContext, make_context
from repro.core.distances import INF
from repro.core.pushpull import combine_expectation_costs, expectation_partials
from repro.core.stepping import Step, make_strategy
from repro.graph.csr import CSRGraph
from repro.runtime.comm import RECOVERY_PHASE, RELAX_RECORD_BYTES, REQUEST_RECORD_BYTES
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import ComputeKind
from repro.runtime.watchdog import (
    DeadlineConfig,
    DeadlineExceeded,
    SolveTimeout,
    Watchdog,
)
from repro.spmd.checkpoint import CheckpointManager
from repro.spmd.mailbox import Mailbox
from repro.spmd.state import RankState, build_rank_states
from repro.util.ranges import concat_ranges

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spmd.faults import FaultPlan

__all__ = ["spmd_bellman_ford", "spmd_delta_stepping", "RecoveryError"]


class RecoveryError(RuntimeError):
    """Self-healing failed: the structural validator still rejects the
    distances after the configured number of healing sweeps."""


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _charge_compute(
    ctx: ExecutionContext,
    kind: ComputeKind,
    per_rank: list[tuple[np.ndarray, np.ndarray | None]],
    *,
    phase_kind: str,
    count_as_relax: bool = False,
) -> None:
    """Fold per-rank (global vertex ids, units) into one compute record,
    exactly as the orchestrated engine charges it."""
    vertices = (
        np.concatenate([v for v, _ in per_rank])
        if per_rank
        else np.empty(0, np.int64)
    )
    if per_rank and any(u is not None for _, u in per_rank):
        units = np.concatenate(
            [
                u if u is not None else np.ones(v.size, dtype=np.float64)
                for v, u in per_rank
            ]
        )
    else:
        units = None
    ctx.charge(kind, vertices, units, phase_kind=phase_kind,
               count_as_relax=count_as_relax)


def _post_relaxations(
    state: RankState,
    mailbox: Mailbox,
    partition,
    arcs: np.ndarray,
    owner_idx: np.ndarray,
    active: np.ndarray,
    keep: np.ndarray | None = None,
) -> int:
    """Compute (dst, nd) for the given local arcs and post them."""
    dst = state.adj[arcs]
    nd = state.d[active[owner_idx]] + state.weights[arcs]
    if keep is not None:
        dst, nd = dst[keep], nd[keep]
    mailbox.post(state.rank, np.asarray(partition.owner(dst)), dst, nd)
    return dst.size


def _apply_inbox(state: RankState, dst: np.ndarray, nd: np.ndarray) -> np.ndarray:
    """Min-apply received records to the local slice; returns changed locals."""
    if dst.size == 0:
        return np.empty(0, dtype=np.int64)
    local = state.to_local(dst)
    improving = nd < state.d[local]
    if not improving.any():
        return np.empty(0, dtype=np.int64)
    local, nd = local[improving], nd[improving]
    touched = np.unique(local)
    before = state.d[touched].copy()
    np.minimum.at(state.d, local, nd)
    changed = touched[state.d[touched] < before]
    if state.index is not None and changed.size:
        # Every relaxation site feeds the incremental bucket index here, so
        # membership follows the changed set instead of per-epoch rescans.
        state.index.on_relaxed(changed, state.d)
    return changed


def _active_scan_charge(ctx: ExecutionContext, states: list[RankState]) -> None:
    per_rank = np.array([st.active.size for st in states], dtype=np.int64)
    ctx.charge_scan(per_rank)


def _bf_stage(
    ctx: ExecutionContext,
    states: list[RankState],
    mailbox: Mailbox,
    *,
    phase_kind: str = "bf",
    epoch_hook=None,
) -> None:
    """Bellman-Ford iterations from the states' current active sets.

    ``phase_kind`` is ``"bf"`` for the algorithm's own stage and
    ``"recovery"`` for self-healing sweeps (so their cost is charged to the
    recovery phase).  ``epoch_hook`` is called at the top of every
    iteration — the recovery manager uses it to take epoch checkpoints.
    """
    sync_kind = RECOVERY_PHASE if phase_kind == RECOVERY_PHASE else "bucket"
    tr = ctx.tracer
    iteration = 0
    while True:
        total_active = mailbox.allreduce_sum(
            [st.active.size for st in states], phase_kind=sync_kind
        )
        if total_active == 0:
            break
        if epoch_hook is not None:
            epoch_hook()
        iteration += 1
        span = (
            tr.begin(
                "bf", cat="phase", iteration=iteration, kind=phase_kind,
                active=int(total_active),
            )
            if tr is not None
            else None
        )
        _active_scan_charge(ctx, states)
        gen: list[tuple[np.ndarray, np.ndarray | None]] = []
        for st in states:
            arcs, owner_idx = concat_ranges(
                st.indptr[st.active], st.indptr[st.active + 1]
            )
            _post_relaxations(st, mailbox, ctx.partition, arcs, owner_idx, st.active)
            gen.append(
                (
                    st.to_global(st.active),
                    st.local_degrees(st.active).astype(np.float64),
                )
            )
        _charge_compute(ctx, ComputeKind.BF_RELAX, gen, phase_kind=phase_kind)
        inboxes = mailbox.deliver(RELAX_RECORD_BYTES, phase_kind=phase_kind)
        all_dst = np.concatenate([box[0] for box in inboxes])
        _charge_compute(
            ctx,
            ComputeKind.BF_RELAX,
            [(all_dst, None)],
            phase_kind=phase_kind,
            count_as_relax=True,
        )
        ctx.metrics.note_phase(phase_kind, int(all_dst.size))
        for st, (dst, nd) in zip(states, inboxes):
            st.active = _apply_inbox(st, dst, nd)
        if ctx.guards is not None:
            ctx.guards.after_relaxations(
                _gather_distances(states, ctx.graph.num_vertices)
            )
        if tr is not None:
            tr.end(span, relaxed=int(all_dst.size))


# ----------------------------------------------------------------------
# Fault recovery (checkpoints, rank restart, self-healing sweep)
# ----------------------------------------------------------------------
def _gather_distances(states: list[RankState], num_vertices: int) -> np.ndarray:
    d = np.empty(num_vertices, dtype=np.int64)
    for st in states:
        d[st.lo : st.hi] = st.d
    return d


def _gather_settled(states: list[RankState], num_vertices: int) -> np.ndarray:
    settled = np.empty(num_vertices, dtype=bool)
    for st in states:
        settled[st.lo : st.hi] = st.settled
    return settled


def _restore_states(states: list[RankState], ckpt) -> None:
    """Scatter a durable checkpoint's global arrays back into rank slices."""
    for st in states:
        st.d[:] = ckpt.d[st.lo : st.hi]
        st.settled[:] = ckpt.settled[st.lo : st.hi]
        sel = (ckpt.active >= st.lo) & (ckpt.active < st.hi)
        st.active = (ckpt.active[sel] - st.lo).astype(np.int64)


def _chain(*hooks):
    """Compose no-arg epoch hooks; None entries are dropped."""
    live = [h for h in hooks if h is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]

    def hook() -> None:
        for h in live:
            h()

    return hook


class _Defense:
    """Durable checkpoints + deadline watchdog wiring for one SPMD solve.

    Owns the whole defensive-layer state: the
    :class:`~repro.spmd.checkpoint.CheckpointManager` (when a directory was
    given), the :class:`~repro.runtime.watchdog.Watchdog` (when a deadline
    was given, also attached to the mailbox so recovery rounds burn
    budget), the epoch counter and the loop-stage marker, and — on
    ``resume`` — the restoration of rank state, bucket ordinal, hybrid
    marker and mailbox superstep from the newest valid checkpoint.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        states: list[RankState],
        mailbox: Mailbox,
        root: int,
        engine: str,
        *,
        checkpoint_dir=None,
        checkpoint_interval: int = 1,
        checkpoint_keep: int = 3,
        resume: bool = False,
        deadline: DeadlineConfig | None = None,
    ) -> None:
        self.ctx = ctx
        self.states = states
        self.mailbox = mailbox
        self.epoch = 0
        self.stage = "bucket"
        self.bucket_ordinal = 0
        self.mgr = None
        if checkpoint_dir is not None:
            self.mgr = CheckpointManager(
                checkpoint_dir,
                graph=ctx.graph,
                config=ctx.config,
                machine=ctx.machine,
                root=root,
                engine=engine,
                interval=checkpoint_interval,
                keep=checkpoint_keep,
            )
        self.watchdog = None
        if deadline is not None and deadline.enabled:
            self.watchdog = Watchdog(deadline)
            mailbox.watchdog = self.watchdog
        self.start = (
            self.mgr.load_resume() if (self.mgr is not None and resume) else None
        )
        if self.start is not None:
            _restore_states(states, self.start)
            self.epoch = self.start.epoch
            self.stage = self.start.stage
            self.bucket_ordinal = self.start.bucket_ordinal
            ctx.metrics.hybrid_switch_bucket = self.start.hybrid_switch_bucket
            if ctx.tracer is not None:
                ctx.tracer.instant(
                    "resume", epoch=int(self.epoch), stage=self.stage,
                    bucket_ordinal=int(self.bucket_ordinal),
                )
            fast_forward = getattr(mailbox, "fast_forward", None)
            if fast_forward is not None:
                # Fault-plan events are pinned to absolute supersteps; do
                # not replay the ones the checkpointed run already survived.
                fast_forward(self.start.superstep)

    @property
    def enabled(self) -> bool:
        return self.mgr is not None or self.watchdog is not None

    # ------------------------------------------------------------------
    def checkpoint(self, *, force: bool = False):
        if self.mgr is None:
            return None
        n = self.ctx.graph.num_vertices
        kwargs = dict(
            epoch=self.epoch,
            stage=self.stage,
            bucket_ordinal=self.bucket_ordinal,
            superstep=getattr(self.mailbox, "superstep", 0),
            d=_gather_distances(self.states, n),
            settled=_gather_settled(self.states, n),
            active=np.concatenate(
                [st.to_global(st.active) for st in self.states]
            ),
            hybrid_switch_bucket=self.ctx.metrics.hybrid_switch_bucket,
        )
        path = self.mgr.save(**kwargs) if force else self.mgr.maybe_save(**kwargs)
        if path is not None and self.ctx.tracer is not None:
            self.ctx.tracer.instant(
                "checkpoint", stage=self.stage, epoch=int(self.epoch),
                path=str(path),
            )
        return path

    def tick(self) -> None:
        if self.watchdog is not None:
            self.watchdog.note_epoch(
                settled_total=sum(int(st.settled.sum()) for st in self.states),
                relaxations=self.ctx.metrics.total_relaxations,
            )

    def on_epoch(self) -> None:
        """Epoch boundary: bump, checkpoint on cadence, tick the watchdog."""
        self.epoch += 1
        self.checkpoint()
        self.tick()

    def bf_hook(self) -> None:
        """Epoch hook for Bellman-Ford stages (marks the stage durable)."""
        self.stage = "bf"
        self.on_epoch()


def _resolve_deadline_spmd(
    ctx: ExecutionContext,
    states: list[RankState],
    root: int,
    defense: _Defense,
    deadline: DeadlineConfig,
    exc: DeadlineExceeded,
) -> None:
    """Apply the deadline policy after the watchdog tripped mid-solve.

    The trip may have happened *inside* a reliable delivery (retry storm):
    at that point the superstep's records have not been applied, so every
    rank's tentative distances are still lengths of real paths. Both
    resolutions build on that: ``degrade`` abandons the (possibly storming)
    mailbox, runs a Bellman-Ford fixpoint over a fresh perfect mailbox —
    charged to the recovery phase — and returns exact distances;
    ``raise`` persists a ``stage="bf"`` checkpoint over the finite set
    (always resumable to the exact answer) and raises the structured
    :class:`~repro.runtime.watchdog.SolveTimeout`.
    """
    n = ctx.graph.num_vertices
    if deadline.policy == "degrade":
        ctx.metrics.degraded_to_bf = True
        if ctx.tracer is not None:
            ctx.tracer.instant("degrade-to-bf", reason=str(exc.reason))
        fresh = Mailbox(len(states), ctx.comm)
        for st in states:
            st.active = np.nonzero(st.d < INF)[0].astype(np.int64)
        _bf_stage(ctx, states, fresh, phase_kind=RECOVERY_PHASE)
        for st in states:
            st.settled = st.d < INF
        return
    for st in states:
        st.active = np.nonzero(st.d < INF)[0].astype(np.int64)
    defense.stage = "bf"
    path = defense.checkpoint(force=True)
    wd = defense.watchdog
    raise SolveTimeout(
        exc.reason,
        distances=_gather_distances(states, n),
        epochs_completed=wd.epochs if wd is not None else 0,
        supersteps=wd.supersteps if wd is not None else 0,
        checkpoint_path=path,
    ) from exc


class _RecoveryManager:
    """Engine-side half of the recovery protocol.

    Holds epoch-level checkpoints of every rank's :class:`RankState`
    (distances, settled flags, active set), restores a rank from the last
    checkpoint when the mailbox reports its crash, and runs the post-solve
    self-healing sweep: Bellman-Ford iterations, charged to the
    ``recovery`` phase, repeated until the structural validator accepts.
    Restoring a checkpoint can only *raise* tentative distances (they are
    monotone non-increasing over time), so every tentative distance remains
    the length of a real path and the sweep's fixpoint is exactly the true
    shortest-distance array.
    """

    def __init__(
        self, ctx: ExecutionContext, states: list[RankState], plan: "FaultPlan"
    ) -> None:
        self.ctx = ctx
        self.states = states
        self.plan = plan
        self._epoch = 0
        self._snap: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self.checkpoint()

    def checkpoint(self) -> None:
        """Snapshot every rank's (d, settled, active)."""
        self._snap = [
            (st.d.copy(), st.settled.copy(), st.active.copy())
            for st in self.states
        ]
        self.ctx.metrics.recovery.checkpoints_taken += 1

    def on_epoch(self) -> None:
        """Epoch boundary: checkpoint every ``checkpoint_interval`` epochs."""
        if self._epoch % self.plan.checkpoint_interval == 0:
            self.checkpoint()
        self._epoch += 1

    def restore(self, rank: int) -> None:
        """Roll ``rank`` back to the last checkpoint (crash restart)."""
        d, settled, active = self._snap[rank]
        st = self.states[rank]
        st.d[:] = d
        st.settled[:] = settled
        st.active = active.copy()
        # Distances lawfully rose: the incremental index must be rebuilt
        # from the restored state before the next epoch reads it.
        st.reindex()
        self.ctx.metrics.recovery.rank_restarts += 1
        if self.ctx.tracer is not None:
            self.ctx.tracer.instant("rank-restart", rank=int(rank))
        if self.ctx.guards is not None:
            # A restore lawfully raises distances and clears settled flags;
            # reset the monotonicity/finality baselines so the guards track
            # the restored state instead of flagging the rollback itself.
            self.ctx.guards.on_rollback()

    def heal(self, mailbox: Mailbox, root: int) -> None:
        """Self-healing sweep: re-run Bellman-Ford until the structural
        validator accepts (raises :class:`RecoveryError` if it never does).
        """
        from repro.core.validation import validate_sssp_structure

        ctx = self.ctx
        n = ctx.graph.num_vertices

        def accepted() -> bool:
            # One allreduce models the global validity vote.
            ctx.comm.allreduce(1, phase_kind=RECOVERY_PHASE)
            return validate_sssp_structure(
                ctx.graph, root, _gather_distances(self.states, n)
            ).valid

        for _ in range(self.plan.max_healing_sweeps):
            if accepted():
                break
            ctx.metrics.recovery.healing_sweeps += 1
            if ctx.tracer is not None:
                ctx.tracer.instant(
                    "healing-sweep",
                    sweep=int(ctx.metrics.recovery.healing_sweeps),
                )
            for st in self.states:
                st.active = np.nonzero(st.d < INF)[0].astype(np.int64)
            _bf_stage(ctx, self.states, mailbox, phase_kind=RECOVERY_PHASE)
        else:
            report = validate_sssp_structure(
                ctx.graph, root, _gather_distances(self.states, n)
            )
            if not report.valid:
                raise RecoveryError(
                    "self-healing did not converge after "
                    f"{self.plan.max_healing_sweeps} sweeps: "
                    + "; ".join(report.failures)
                )
        for st in self.states:
            st.settled = st.d < INF


def _fault_setup(
    ctx: ExecutionContext,
    machine: MachineConfig,
    states: list[RankState],
    faults: "FaultPlan | None",
) -> tuple[Mailbox, _RecoveryManager | None]:
    """Build the (mailbox, recovery manager) pair for a run."""
    if faults is None:
        return Mailbox(machine.num_ranks, ctx.comm), None
    from repro.spmd.faults import FaultyMailbox

    # The plan is machine-agnostic; rank references only resolve here.
    for event in (*faults.crashes, *faults.stalls):
        if event.rank >= machine.num_ranks:
            raise ValueError(
                f"fault plan references rank {event.rank} but the machine "
                f"has only {machine.num_ranks} ranks"
            )

    mailbox = FaultyMailbox(machine.num_ranks, ctx.comm, faults)
    manager = _RecoveryManager(ctx, states, faults)
    mailbox.on_restart = manager.restore
    return mailbox, manager


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def spmd_bellman_ford(
    graph: CSRGraph,
    root: int,
    machine: MachineConfig,
    *,
    faults: "FaultPlan | None" = None,
    paranoid: bool = False,
    checkpoint_dir=None,
    checkpoint_interval: int = 1,
    checkpoint_keep: int = 3,
    resume: bool = False,
    deadline: DeadlineConfig | None = None,
    trace=None,
) -> tuple[np.ndarray, ExecutionContext]:
    """Rank-local Bellman-Ford; returns (distances, context-with-metrics).

    With a :class:`~repro.spmd.faults.FaultPlan`, records travel through
    the fault-injecting reliable mailbox, per-iteration checkpoints enable
    crash restart, and the run ends with the self-healing sweep.
    ``checkpoint_dir``/``resume``/``deadline`` enable the durable defense
    layer (see :func:`spmd_delta_stepping`); ``paranoid`` turns on the
    runtime invariant guards; ``trace`` (a
    :class:`~repro.obs.tracer.TraceConfig`) attaches the telemetry layer.
    """
    config = SolverConfig(delta=2**60, paranoid=paranoid, trace=trace)
    ctx = make_context(graph, machine, config)
    tr = ctx.tracer
    solve_span = (
        tr.begin(
            "solve", cat="solve", engine="spmd-bf", root=int(root),
            n=int(graph.num_vertices),
        )
        if tr is not None
        else None
    )
    states = build_rank_states(ctx.graph, ctx.partition, 2**60, root)
    mailbox, manager = _fault_setup(ctx, machine, states, faults)
    defense = _Defense(
        ctx,
        states,
        mailbox,
        root,
        "spmd-bf",
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=checkpoint_interval,
        checkpoint_keep=checkpoint_keep,
        resume=resume,
        deadline=deadline,
    )
    defense.stage = "bf"
    if defense.start is not None and manager is not None:
        # Re-snapshot: the in-memory crash checkpoint must cover the
        # *restored* state, not the pre-resume initial one.
        manager.checkpoint()
    hook = _chain(
        manager.on_epoch if manager is not None else None,
        defense.bf_hook if defense.enabled else None,
    )
    try:
        _bf_stage(ctx, states, mailbox, epoch_hook=hook)
    except DeadlineExceeded as exc:
        _resolve_deadline_spmd(ctx, states, root, defense, deadline, exc)
    else:
        if manager is not None:
            manager.heal(mailbox, root)
    if ctx.guards is not None:
        ctx.guards.check_final(_gather_distances(states, graph.num_vertices), root)
        ctx.guards.check_recovery_separation(
            ctx.metrics,
            allowed=(faults is not None and faults.injects_anything)
            or ctx.metrics.degraded_to_bf,
        )
    if tr is not None:
        tr.end(
            solve_span,
            settled=int(sum(int(st.settled.sum()) for st in states)),
        )
        tr.finish(metrics=ctx.metrics)
    return _gather_distances(states, graph.num_vertices), ctx


def spmd_delta_stepping(
    graph: CSRGraph,
    root: int,
    machine: MachineConfig,
    *,
    delta: int = 25,
    use_ios: bool = False,
    config: SolverConfig | None = None,
    faults: "FaultPlan | None" = None,
    checkpoint_dir=None,
    checkpoint_interval: int = 1,
    checkpoint_keep: int = 3,
    resume: bool = False,
    deadline: DeadlineConfig | None = None,
    trace=None,
) -> tuple[np.ndarray, ExecutionContext]:
    """Rank-local Δ-stepping; returns (distances, context-with-metrics).

    Pass an explicit ``config`` to enable the full composition (pruning
    with the expectation decision heuristic, forced push/pull modes, and
    hybridization). The simple ``delta``/``use_ios`` keywords cover the
    baseline variants.

    With a :class:`~repro.spmd.faults.FaultPlan`, records travel through
    the fault-injecting reliable mailbox, rank state is checkpointed at
    bucket-epoch boundaries for crash restart, and a post-solve
    self-healing sweep guarantees the returned distances are bit-identical
    to the fault-free run's.

    ``checkpoint_dir`` enables *durable* epoch checkpoints on disk (atomic
    write-rename, integrity digests); ``resume=True`` restarts from the
    newest valid one — the resumed run produces bit-identical distances.
    ``deadline`` arms the superstep watchdog: on budget exhaustion or a
    detected stall, the solve either raises a structured
    :class:`~repro.runtime.watchdog.SolveTimeout` (policy ``"raise"``) or
    collapses the remaining buckets into a Bellman-Ford fixpoint pass
    (policy ``"degrade"``). Set ``config.paranoid`` for runtime invariant
    guards.
    """
    if config is None:
        config = SolverConfig(delta=delta, use_ios=use_ios)
    if trace is not None:
        config = config.evolve(trace=trace)
    if config.pushpull_estimator not in ("expectation",):
        if config.use_pruning and config.pushpull_mode == "auto":
            raise ValueError(
                "the SPMD engine implements the expectation decision "
                "heuristic (rank-local partial sums); use "
                "pushpull_estimator='expectation' or a forced mode"
            )
    if config.collect_census:
        raise ValueError("census collection is not implemented in SPMD mode")
    delta = config.delta
    strategy = make_strategy(config)
    ctx = make_context(graph, machine, config)
    tr = ctx.tracer
    solve_span = (
        tr.begin(
            "solve", cat="solve", engine="spmd-delta", root=int(root),
            n=int(graph.num_vertices), delta=int(delta),
        )
        if tr is not None
        else None
    )
    # Rank states carry the short/long split of the strategy's
    # classification width (Δ for delta, effectively ∞ for radius/ρ).
    states = build_rank_states(
        ctx.graph, ctx.partition, min(config.classification_width, 2**60), root
    )
    mailbox, manager = _fault_setup(ctx, machine, states, faults)
    defense = _Defense(
        ctx,
        states,
        mailbox,
        root,
        "spmd-delta",
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=checkpoint_interval,
        checkpoint_keep=checkpoint_keep,
        resume=resume,
        deadline=deadline,
    )
    bucket_ordinal = defense.bucket_ordinal
    if defense.start is not None and manager is not None:
        # Re-snapshot: the in-memory crash checkpoint must cover the
        # *restored* state, not the pre-resume initial one.
        manager.checkpoint()
    if config.incremental_buckets and strategy.uses_bucket_index:
        # Attach after the defense layer so a resumed solve indexes the
        # restored state, not the initial one. Only the delta strategy
        # can use the index — it is keyed on the fixed bucket width.
        for st in states:
            st.attach_index(delta)
    strategy.prepare_spmd(ctx, states)
    bf_hook = _chain(
        manager.on_epoch if manager is not None else None,
        defense.bf_hook if defense.enabled else None,
    )

    try:
        if defense.stage == "bf":
            # Resuming past the hybrid switch (or a forced timeout
            # checkpoint): run the Bellman-Ford tail directly.
            _bf_stage(ctx, states, mailbox, epoch_hook=bf_hook)
            for st in states:
                st.settled |= st.d < INF
        else:
            while True:
                # Next-step search: full unsettled scan, then the
                # strategy's selection collective over rank candidates.
                total_unsettled = sum(st.unsettled_count() for st in states)
                ctx.scan_all_ranks(total_unsettled)
                step = strategy.next_step_spmd(
                    ctx, states, mailbox, bucket_ordinal
                )
                if step is None:
                    break
                if ctx.guards is not None:
                    ctx.guards.on_bucket_start(step.key)
                if manager is not None:
                    manager.on_epoch()
                _process_epoch_spmd(
                    ctx, states, mailbox, step, bucket_ordinal, strategy
                )
                bucket_ordinal += 1
                defense.bucket_ordinal = bucket_ordinal
                if config.use_hybrid:
                    settled_total = mailbox.allreduce_sum(
                        [
                            st.num_local - st.num_unsettled
                            if st.index is not None
                            else int(st.settled.sum())
                            for st in states
                        ]
                    )
                    n = ctx.graph.num_vertices
                    if n == 0 or settled_total / n > config.tau:
                        ctx.metrics.hybrid_switch_bucket = step.key
                        for st in states:
                            st.active = np.nonzero(
                                ~st.settled & (st.d < INF)
                            )[0].astype(np.int64)
                        defense.stage = "bf"
                        if defense.enabled:
                            defense.on_epoch()
                        _bf_stage(ctx, states, mailbox, epoch_hook=bf_hook)
                        for st in states:
                            st.settled |= st.d < INF
                        break
                if defense.enabled:
                    defense.on_epoch()
    except DeadlineExceeded as exc:
        _resolve_deadline_spmd(ctx, states, root, defense, deadline, exc)
    else:
        if manager is not None:
            manager.heal(mailbox, root)

    if ctx.guards is not None:
        ctx.guards.check_final(_gather_distances(states, graph.num_vertices), root)
        ctx.guards.check_recovery_separation(
            ctx.metrics,
            allowed=(faults is not None and faults.injects_anything)
            or ctx.metrics.degraded_to_bf,
        )
    if tr is not None:
        tr.end(
            solve_span,
            settled=int(sum(int(st.settled.sum()) for st in states)),
        )
        tr.finish(metrics=ctx.metrics)
    return _gather_distances(states, graph.num_vertices), ctx


# ----------------------------------------------------------------------
# Epoch processing
# ----------------------------------------------------------------------
def _window_members_local(st: RankState, step: Step) -> np.ndarray:
    if st.index is not None:
        return st.index.members(step.key)
    mask = (st.d >= step.lo) & (st.d < step.hi) & ~st.settled
    return np.nonzero(mask)[0].astype(np.int64)


def _decide_mode_spmd(
    ctx: ExecutionContext,
    states: list[RankState],
    mailbox: Mailbox,
    members_per_rank: list[np.ndarray],
    k: int,
    bucket_ordinal: int,
) -> str:
    """The expectation decision heuristic from rank-local partial sums.

    Equals :func:`repro.core.pushpull.estimate_models` *by construction*:
    both call :func:`repro.core.pushpull.expectation_partials` per rank and
    fold the partials with
    :func:`repro.core.pushpull.combine_expectation_costs`, so the per-bucket
    decision is bit-identical between the engines (a regression test pins
    this on every preset). Charges the same two decision allreduces.
    """
    cfg = ctx.config
    if not cfg.use_pruning:
        return "push"
    if cfg.pushpull_mode == "push":
        return "push"
    if cfg.pushpull_mode == "pull":
        return "pull"
    if cfg.pushpull_mode == "sequence" and bucket_ordinal < len(
        cfg.pushpull_sequence
    ):
        return cfg.pushpull_sequence[bucket_ordinal]

    delta = cfg.delta
    lo_d = k * delta
    hi_d = lo_d + delta
    w_max = max(ctx.graph.max_weight, 1)

    push_partials: list[float] = []
    pull_partials: list[float] = []
    for st, members in zip(states, members_per_rank):
        later = np.nonzero(~st.settled & (st.d >= hi_d))[0]
        if cfg.use_ios:
            # Undirected rank-local adjacency doubles as in-edges.
            total_in = st.local_degrees(later)
            long_in = None
        else:
            total_in = None
            long_in = st.local_degrees(later) - st.short_offsets[later]
        push_r, pull_r = expectation_partials(
            cfg,
            w_max,
            lo_d,
            st.local_degrees(members) - st.short_offsets[members],
            st.d[later],
            total_in,
            long_in,
        )
        push_partials.append(push_r)
        pull_partials.append(pull_r)

    est = combine_expectation_costs(cfg, ctx.machine, push_partials, pull_partials)
    ctx.comm.allreduce(2, phase_kind="long")
    if ctx.tracer is not None:
        ctx.tracer.instant(
            "pushpull-decision",
            bucket=int(k),
            mode=est.choice,
            estimator=est.estimator,
            push_cost=est.push_cost,
            pull_cost=est.pull_cost,
        )
    return est.choice


def _long_phase_push_spmd(
    ctx: ExecutionContext,
    states: list[RankState],
    mailbox: Mailbox,
    members_per_rank: list[np.ndarray],
    k: int,
) -> int:
    """Push-model long phase; returns the relaxation count."""
    cfg = ctx.config
    hi_d = (k + 1) * cfg.delta
    gen: list[tuple[np.ndarray, np.ndarray | None]] = []
    for st, members in zip(states, members_per_rank):
        long_starts = st.indptr[members] + st.short_offsets[members]
        long_ends = st.indptr[members + 1]
        arcs, owner_idx = concat_ranges(long_starts, long_ends)
        _post_relaxations(st, mailbox, ctx.partition, arcs, owner_idx, members)
        scanned = (long_ends - long_starts).astype(np.float64)
        if cfg.use_ios:
            s_arcs, s_owner = concat_ranges(st.indptr[members], long_starts)
            s_nd = st.d[members[s_owner]] + st.weights[s_arcs]
            outer = s_nd >= hi_d
            if ctx.guards is not None:
                ctx.guards.check_ios_coverage(int(s_arcs.size), int(s_nd.size))
                ctx.guards.check_ios_partition(s_nd, hi_d, ~outer)
            dst = st.adj[s_arcs][outer]
            nd = s_nd[outer]
            mailbox.post(st.rank, np.asarray(ctx.partition.owner(dst)), dst, nd)
            scanned += st.short_offsets[members].astype(np.float64)
        gen.append((st.to_global(members), scanned))
    _charge_compute(ctx, ComputeKind.LONG_PUSH_RELAX, gen, phase_kind="long")
    inboxes = mailbox.deliver(RELAX_RECORD_BYTES, phase_kind="long")
    all_dst = np.concatenate([box[0] for box in inboxes])
    _charge_compute(
        ctx,
        ComputeKind.LONG_PUSH_RELAX,
        [(all_dst, None)],
        phase_kind="long",
        count_as_relax=True,
    )
    ctx.metrics.note_phase("long", int(all_dst.size))
    for st, (dst, nd) in zip(states, inboxes):
        _apply_inbox(st, dst, nd)
    return int(all_dst.size)


def _long_phase_pull_spmd(
    ctx: ExecutionContext,
    states: list[RankState],
    mailbox: Mailbox,
    members_per_rank: list[np.ndarray],
    k: int,
) -> dict[str, int]:
    """Pull-model long phase: request and response mailbox rounds.

    Returns the phase stats (requests/responses/relaxations). Only valid
    for undirected graphs (rank-local adjacency doubles as in-edges),
    matching the paper's setting.
    """
    cfg = ctx.config
    delta = cfg.delta
    lo_d = k * delta
    hi_d = lo_d + delta

    # Round 1: later-bucket vertices issue requests along eq.-(1) arcs.
    gen: list[tuple[np.ndarray, np.ndarray | None]] = []
    total_later = 0
    for st in states:
        later = np.nonzero(~st.settled & (st.d >= hi_d))[0].astype(np.int64)
        total_later += later.size
        if cfg.use_ios:
            starts = st.indptr[later]
        else:
            starts = st.indptr[later] + st.short_offsets[later]
        ends = st.indptr[later + 1]
        arcs, owner_idx = concat_ranges(starts, ends)
        req_u = st.adj[arcs]
        req_w = st.weights[arcs]
        passes = req_w < st.d[later[owner_idx]] - lo_d
        req_u = req_u[passes]
        req_w = req_w[passes]
        req_v = st.to_global(later[owner_idx[passes]])
        mailbox.post(
            st.rank, np.asarray(ctx.partition.owner(req_u)), req_u, req_v, req_w
        )
        gen_units = np.bincount(owner_idx[passes], minlength=later.size).astype(
            np.float64
        )
        gen_units += 1.0
        gen.append((st.to_global(later), gen_units))

    if total_later == 0:
        ctx.metrics.note_phase("long", 0)
        return {"mode": "pull", "relaxations": 0, "requests": 0, "responses": 0}

    _charge_compute(ctx, ComputeKind.PULL_REQUEST, gen, phase_kind="long")
    req_inboxes = mailbox.deliver(
        REQUEST_RECORD_BYTES, phase_kind="long", num_columns=3
    )
    all_req_u = np.concatenate([box[0] for box in req_inboxes])
    _charge_compute(
        ctx,
        ComputeKind.PULL_REQUEST,
        [(all_req_u, None)],
        phase_kind="long",
        count_as_relax=True,
    )

    # Round 2: owners of current-bucket sources respond.
    for st, (req_u, req_v, req_w) in zip(states, req_inboxes):
        if req_u.size == 0:
            continue
        local_u = st.to_local(req_u)
        lo_mask = (
            st.settled[local_u]
            & (st.d[local_u] >= lo_d)
            & (st.d[local_u] < hi_d)
        )
        resp_v = req_v[lo_mask]
        nd = st.d[local_u[lo_mask]] + req_w[lo_mask]
        mailbox.post(st.rank, np.asarray(ctx.partition.owner(resp_v)), resp_v, nd)

    resp_inboxes = mailbox.deliver(RELAX_RECORD_BYTES, phase_kind="long")
    all_resp_v = np.concatenate([box[0] for box in resp_inboxes])
    _charge_compute(
        ctx,
        ComputeKind.PULL_RESPONSE,
        [(all_resp_v, None)],
        phase_kind="long",
        count_as_relax=True,
    )
    ctx.metrics.note_phase("long", int(all_req_u.size + all_resp_v.size))
    for st, (dst, nd) in zip(states, resp_inboxes):
        _apply_inbox(st, dst, nd)
    return {
        "mode": "pull",
        "relaxations": int(all_req_u.size + all_resp_v.size),
        "requests": int(all_req_u.size),
        "responses": int(all_resp_v.size),
    }


def _process_epoch_spmd(
    ctx: ExecutionContext,
    states: list[RankState],
    mailbox: Mailbox,
    step: Step,
    bucket_ordinal: int,
    strategy,
) -> None:
    cfg = ctx.config
    k = step.key
    lo_d = step.lo
    hi_d = step.hi
    tr = ctx.tracer
    epoch_span = (
        tr.begin(
            f"bucket {k}", cat="epoch", bucket=int(k),
            ordinal=int(bucket_ordinal),
        )
        if tr is not None
        else None
    )

    # Epoch start: identify members (scan of the unsettled set).
    total_unsettled = sum(st.unsettled_count() for st in states)
    ctx.scan_all_ranks(total_unsettled)
    for st in states:
        st.active = _window_members_local(st, step)

    # --- Stage 1: short phases.
    while True:
        total_active = mailbox.allreduce_sum([st.active.size for st in states])
        if total_active == 0:
            break
        short_span = (
            tr.begin("short", cat="phase", bucket=int(k), active=int(total_active))
            if tr is not None
            else None
        )
        _active_scan_charge(ctx, states)
        gen: list[tuple[np.ndarray, np.ndarray | None]] = []
        for st in states:
            starts = st.indptr[st.active]
            ends = starts + st.short_offsets[st.active]
            arcs, owner_idx = concat_ranges(starts, ends)
            keep = None
            if cfg.use_ios:
                nd = st.d[st.active[owner_idx]] + st.weights[arcs]
                keep = nd < hi_d
                if ctx.guards is not None:
                    ctx.guards.check_ios_coverage(int(arcs.size), int(nd.size))
                    ctx.guards.check_ios_partition(nd, hi_d, keep)
            _post_relaxations(
                st, mailbox, ctx.partition, arcs, owner_idx, st.active, keep
            )
            gen.append(
                (st.to_global(st.active), (ends - starts).astype(np.float64))
            )
        _charge_compute(ctx, ComputeKind.SHORT_RELAX, gen, phase_kind="short")
        inboxes = mailbox.deliver(RELAX_RECORD_BYTES, phase_kind="short")
        all_dst = np.concatenate([box[0] for box in inboxes])
        _charge_compute(
            ctx,
            ComputeKind.SHORT_RELAX,
            [(all_dst, None)],
            phase_kind="short",
            count_as_relax=True,
        )
        ctx.metrics.note_phase("short", int(all_dst.size))
        for st, (dst, nd) in zip(states, inboxes):
            changed = _apply_inbox(st, dst, nd)
            if changed.size:
                in_bucket = (st.d[changed] >= lo_d) & (st.d[changed] < hi_d)
                st.active = changed[in_bucket]
            else:
                st.active = changed
        if ctx.guards is not None:
            ctx.guards.after_relaxations(
                _gather_distances(states, ctx.graph.num_vertices)
            )
        if tr is not None:
            tr.end(short_span, relaxed=int(all_dst.size))

    # --- Settle and run the long phase.
    members_per_rank: list[np.ndarray] = []
    members_count = 0
    for st in states:
        members = _window_members_local(st, step)
        st.settled[members] = True
        if st.index is not None:
            st.index.on_settled(members)
            st.num_unsettled -= int(members.size)
        members_per_rank.append(members)
        members_count += members.size
    if ctx.guards is not None:
        n = ctx.graph.num_vertices
        ctx.guards.check_settled(
            _gather_distances(states, n), _gather_settled(states, n)
        )

    if strategy.short_phase_only:
        # The windowed strategies classify every edge short: no long
        # phase exists (mirrors the orchestrated engine's skip).
        mode = "none"
        stats: dict[str, int | str] = {"mode": "none", "relaxations": 0}
    else:
        long_span = (
            tr.begin("long", cat="phase", bucket=int(k)) if tr is not None else None
        )
        mode = _decide_mode_spmd(
            ctx, states, mailbox, members_per_rank, k, bucket_ordinal
        )
        if mode == "push":
            if members_count == 0:
                ctx.metrics.note_phase("long", 0)
                stats = {"mode": "push", "relaxations": 0}
            else:
                relax = _long_phase_push_spmd(
                    ctx, states, mailbox, members_per_rank, k
                )
                stats = {"mode": "push", "relaxations": relax}
        else:
            stats = _long_phase_pull_spmd(
                ctx, states, mailbox, members_per_rank, k
            )
        if tr is not None:
            tr.end(long_span, mode=mode, relaxed=int(stats.get("relaxations", 0)))
        if ctx.guards is not None:
            ctx.guards.after_relaxations(
                _gather_distances(states, ctx.graph.num_vertices)
            )
    if ctx.guards is not None:
        for st in states:
            if st.index is not None:
                ctx.guards.check_bucket_index(st.index, st.d, st.settled)
    stats["bucket"] = k
    stats["members"] = int(members_count)
    ctx.metrics.note_bucket(stats)
    if tr is not None:
        tr.end(epoch_span, members=int(members_count), mode=mode)
