"""Metrics registry: counters, gauges and histograms with Prometheus output.

A tiny in-process registry in the Prometheus data model. The tracer feeds
it per-record counters (records, bytes, wall/simulated seconds by kind) and
end-of-run gauges (the flat :meth:`~repro.runtime.metrics.Metrics.summary`);
benches and the CLI consume :meth:`MetricsRegistry.snapshot`, and
``--metrics-out`` writes :meth:`MetricsRegistry.prometheus_text` — the
standard text exposition format, scrapable as a node-exporter-style file.

No external dependency: the exposition format is a few lines of string
formatting, which keeps the registry importable everywhere the simulator
runs.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = ["MetricsRegistry", "DEFAULT_BUCKETS"]

DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0
)
"""Histogram bucket upper bounds in seconds (durations are the main use)."""

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    """Canonical hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_text(key: _LabelKey) -> str:
    """Render a label key as Prometheus ``{k="v",...}`` (empty for none)."""
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    """Format a sample value the way Prometheus text exposition expects."""
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Counters, gauges and histograms keyed by (name, label set).

    Metric names follow Prometheus conventions (``snake_case``, counters
    end in ``_total``). All three families share one namespace; registering
    the same name under two families is an error.
    """

    def __init__(self) -> None:
        self._types: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._counters: dict[str, dict[_LabelKey, float]] = {}
        self._gauges: dict[str, dict[_LabelKey, float]] = {}
        self._hists: dict[str, dict[_LabelKey, dict[str, Any]]] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    def _register(self, name: str, family: str, help_: str | None) -> None:
        seen = self._types.get(name)
        if seen is None:
            self._types[name] = family
            if help_:
                self._help[name] = help_
        elif seen != family:
            raise ValueError(
                f"metric {name!r} already registered as {seen}, not {family}"
            )

    def inc(
        self, name: str, value: float = 1.0, *, help: str | None = None, **labels
    ) -> None:
        """Increment counter ``name`` (monotone; negative deltas rejected)."""
        if value < 0:
            raise ValueError("counters only go up")
        self._register(name, "counter", help)
        series = self._counters.setdefault(name, {})
        key = _label_key(labels)
        series[key] = series.get(key, 0.0) + float(value)

    def set_gauge(
        self, name: str, value: float, *, help: str | None = None, **labels
    ) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._register(name, "gauge", help)
        self._gauges.setdefault(name, {})[_label_key(labels)] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        *,
        buckets: Iterable[float] | None = None,
        help: str | None = None,
        **labels,
    ) -> None:
        """Record one observation into histogram ``name``.

        ``buckets`` (upper bounds, ascending) is fixed at the histogram's
        first observation; later calls reuse it.
        """
        self._register(name, "histogram", help)
        if name not in self._buckets:
            self._buckets[name] = tuple(
                buckets if buckets is not None else DEFAULT_BUCKETS
            )
        bounds = self._buckets[name]
        series = self._hists.setdefault(name, {})
        key = _label_key(labels)
        h = series.setdefault(
            key, {"counts": [0] * len(bounds), "sum": 0.0, "count": 0}
        )
        for i, bound in enumerate(bounds):
            if value <= bound:
                h["counts"][i] += 1
        h["sum"] += float(value)
        h["count"] += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of every series (consumed by benches and tests).

        Counter/gauge samples are keyed ``name{k="v"}``; histograms expose
        ``_sum``/``_count``/``_bucket`` sub-dicts under the bare name.
        """
        out: dict[str, Any] = {}
        for family in (self._counters, self._gauges):
            for name, series in family.items():
                for key, value in series.items():
                    out[name + _label_text(key)] = value
        for name, series in self._hists.items():
            bounds = self._buckets[name]
            for key, h in series.items():
                base = name + _label_text(key)
                out[base] = {
                    "sum": h["sum"],
                    "count": h["count"],
                    "buckets": {
                        _fmt_value(b): c for b, c in zip(bounds, h["counts"])
                    },
                }
        return out

    def prometheus_text(self) -> str:
        """Render every metric in the Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._types):
            family = self._types[name]
            if name in self._help:
                lines.append(f"# HELP {name} {self._help[name]}")
            lines.append(f"# TYPE {name} {family}")
            if family == "counter":
                series = self._counters.get(name, {})
                for key in sorted(series):
                    lines.append(
                        f"{name}{_label_text(key)} {_fmt_value(series[key])}"
                    )
            elif family == "gauge":
                series = self._gauges.get(name, {})
                for key in sorted(series):
                    lines.append(
                        f"{name}{_label_text(key)} {_fmt_value(series[key])}"
                    )
            else:
                bounds = self._buckets[name]
                for key, h in sorted(self._hists.get(name, {}).items()):
                    # ``counts`` is already cumulative (observe() bumps every
                    # bucket whose bound covers the value), as the text
                    # format's ``le`` semantics require.
                    for bound, count in zip(bounds, h["counts"]):
                        le = _label_key(dict(key) | {"le": _fmt_value(bound)})
                        lines.append(
                            f"{name}_bucket{_label_text(le)} {count}"
                        )
                    inf = _label_key(dict(key) | {"le": "+Inf"})
                    lines.append(f"{name}_bucket{_label_text(inf)} {h['count']}")
                    lines.append(
                        f"{name}_sum{_label_text(key)} {_fmt_value(h['sum'])}"
                    )
                    lines.append(f"{name}_count{_label_text(key)} {h['count']}")
        return "\n".join(lines) + "\n"
