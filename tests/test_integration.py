"""Integration tests: end-to-end flows across subsystems.

These exercise the full pipeline the way the benchmark harness does —
generate a graph family, run several algorithm variants on a simulated
machine, and check the paper's qualitative relationships between them.
"""

import numpy as np
import pytest

from repro.core.config import DELTA_INFINITY, SolverConfig
from repro.core.reference import dijkstra_reference
from repro.core.solver import solve_sssp
from repro.graph.grid import grid_graph
from repro.graph.rmat import RMAT1, RMAT2, rmat_graph
from repro.graph.roots import choose_roots
from repro.graph.social import synthetic_social_graph
from repro.runtime.machine import MachineConfig


@pytest.fixture(scope="module")
def rmat1():
    return rmat_graph(scale=11, seed=17, params=RMAT1)


@pytest.fixture(scope="module")
def rmat2():
    return rmat_graph(scale=11, seed=18, params=RMAT2)


class TestMultiRootCorrectness:
    def test_sixteen_roots_rmat1(self, rmat1):
        # The paper validates with 16 random roots per configuration (IV-G).
        for root in choose_roots(rmat1, 16, seed=5):
            res = solve_sssp(rmat1, int(root), algorithm="opt", delta=25,
                             num_ranks=4, threads_per_rank=4)
            ref = dijkstra_reference(rmat1, int(root))
            assert np.array_equal(res.distances, ref)

    def test_multiple_roots_grid(self):
        g = grid_graph(20, 25, seed=1)
        for root in choose_roots(g, 4, seed=2):
            res = solve_sssp(g, int(root), algorithm="opt", delta=64,
                             num_ranks=4, threads_per_rank=2, validate=True)
            assert res.num_reached == g.num_vertices

    def test_social_standins(self):
        for name in ("orkut", "livejournal"):
            g = synthetic_social_graph(name, scale=10, seed=3)
            root = int(choose_roots(g, 1, seed=0)[0])
            res = solve_sssp(g, root, algorithm="opt", delta=40,
                             num_ranks=4, threads_per_rank=2, validate=True)
            assert res.gteps > 0


class TestPaperRelationships:
    """The qualitative claims the evaluation section makes, at test scale."""

    def test_pruning_relaxation_factor_rmat1(self, rmat1):
        # Fig. 10(c): pruning cuts relaxations by a large factor on RMAT-1.
        root = int(choose_roots(rmat1, 1, seed=0)[0])
        base = solve_sssp(rmat1, root, algorithm="delta", delta=25,
                          num_ranks=8, threads_per_rank=4)
        prune = solve_sssp(rmat1, root, algorithm="prune", delta=25,
                           num_ranks=8, threads_per_rank=4)
        factor = base.metrics.total_relaxations / prune.metrics.total_relaxations
        assert factor > 1.5

    def test_pruning_effective_on_both_families(self, rmat1, rmat2):
        # Section IV-E claims the pruning *factor* is larger on RMAT-1 than
        # on RMAT-2; that ordering only emerges at massive scale where the
        # RMAT-1 hubs hold millions of edges (documented in EXPERIMENTS.md).
        # At reproduction scale we assert the part that does hold: pruning
        # cuts relaxations substantially on both families.
        def factor(g):
            root = int(choose_roots(g, 1, seed=0)[0])
            base = solve_sssp(g, root, algorithm="delta", delta=25,
                              num_ranks=8, threads_per_rank=4)
            prune = solve_sssp(g, root, algorithm="prune", delta=25,
                               num_ranks=8, threads_per_rank=4)
            return base.metrics.total_relaxations / prune.metrics.total_relaxations

        assert factor(rmat1) > 1.5
        assert factor(rmat2) > 1.5

    def test_hybrid_bucket_reduction_rmat2(self, rmat2):
        # Fig. 11(d): hybridization cuts the bucket count dramatically.
        root = int(choose_roots(rmat2, 1, seed=0)[0])
        prune = solve_sssp(rmat2, root, algorithm="prune", delta=10,
                           num_ranks=8, threads_per_rank=4)
        opt = solve_sssp(rmat2, root, algorithm="opt", delta=10,
                         num_ranks=8, threads_per_rank=4)
        assert prune.metrics.buckets_processed >= 3 * opt.metrics.buckets_processed

    def test_hybrid_cuts_bucket_time(self, rmat2):
        # Fig. 11(b): hybridization attacks BktTime specifically.
        root = int(choose_roots(rmat2, 1, seed=0)[0])
        prune = solve_sssp(rmat2, root, algorithm="prune", delta=10,
                           num_ranks=8, threads_per_rank=4)
        opt = solve_sssp(rmat2, root, algorithm="opt", delta=10,
                         num_ranks=8, threads_per_rank=4)
        assert opt.cost.bucket_time < prune.cost.bucket_time

    def test_opt_buckets_insensitive_to_scale(self):
        # Fig. 10(d): the hybrid bucket count stays ~constant across scales.
        counts = []
        for scale in (9, 10, 11):
            g = rmat_graph(scale=scale, seed=20 + scale, params=RMAT1)
            root = int(choose_roots(g, 1, seed=0)[0])
            res = solve_sssp(g, root, algorithm="opt", delta=25,
                             num_ranks=4, threads_per_rank=4)
            counts.append(res.metrics.buckets_processed)
        assert max(counts) - min(counts) <= 3

    def test_intra_lb_reduces_simulated_time_on_skewed_graph(self, rmat1):
        # Fig. 10(e) vs (f): load balancing recovers scaling on RMAT-1.
        root = int(choose_roots(rmat1, 1, seed=0)[0])
        machine = MachineConfig(num_ranks=8, threads_per_rank=8)
        opt = solve_sssp(rmat1, root, algorithm="opt", delta=25, machine=machine)
        lb = solve_sssp(rmat1, root, algorithm="lb-opt", delta=25, machine=machine)
        assert lb.cost.compute_time < opt.cost.compute_time
        assert lb.gteps > opt.gteps

    def test_bf_phase_count_at_most_tree_depth(self, rmat1):
        root = int(choose_roots(rmat1, 1, seed=0)[0])
        res = solve_sssp(rmat1, root, algorithm="bellman-ford",
                         num_ranks=4, threads_per_rank=4)
        # hop-diameter of a scale-11 R-MAT graph is tiny; BF phases track it
        assert res.metrics.bf_phases <= 20

    def test_weights_zero_to_255_and_delta_sensitivity(self, rmat1):
        # Fig. 9 shape: mid-range delta beats both extremes on GTEPS.
        root = int(choose_roots(rmat1, 1, seed=0)[0])
        gteps = {}
        for delta in (1, 25, DELTA_INFINITY):
            res = solve_sssp(rmat1, root, algorithm="delta", delta=delta,
                             num_ranks=8, threads_per_rank=4)
            gteps[delta] = res.gteps
        assert gteps[25] > gteps[1]
        assert gteps[25] > gteps[DELTA_INFINITY]


class TestCommunicationAccounting:
    def test_single_rank_run_moves_no_bytes(self, rmat1):
        res = solve_sssp(rmat1, 3, algorithm="opt", delta=25,
                         num_ranks=1, threads_per_rank=4)
        assert res.metrics.total_bytes == 0

    def test_more_ranks_more_traffic(self, rmat1):
        b2 = solve_sssp(rmat1, 3, algorithm="opt", delta=25,
                        num_ranks=2, threads_per_rank=4).metrics.total_bytes
        b8 = solve_sssp(rmat1, 3, algorithm="opt", delta=25,
                        num_ranks=8, threads_per_rank=4).metrics.total_bytes
        assert b8 > b2 > 0

    def test_pruning_reduces_traffic(self, rmat1):
        root = int(choose_roots(rmat1, 1, seed=0)[0])
        base = solve_sssp(rmat1, root, algorithm="delta", delta=25,
                          num_ranks=8, threads_per_rank=4)
        prune = solve_sssp(rmat1, root, algorithm="prune", delta=25,
                           num_ranks=8, threads_per_rank=4)
        assert prune.metrics.total_bytes < base.metrics.total_bytes


class TestSplitAtScale:
    def test_split_solver_on_skewed_graph(self):
        g = rmat_graph(scale=11, seed=31, params=RMAT1)
        cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                           use_hybrid=True, intra_lb=True,
                           inter_split=True, split_degree=64)
        root = int(choose_roots(g, 1, seed=0)[0])
        res = solve_sssp(g, root, algorithm="lb-opt-split", config=cfg,
                         num_ranks=8, threads_per_rank=4, validate=True)
        assert res.num_proxies > 0
