"""Distributed breadth-first search with direction optimization.

The paper repeatedly positions SSSP against BFS: Fig. 1 compares against
Graph 500 BFS records, and the pruning heuristic of Section III-B "is
inspired by the direction optimization technique adopted by Beamer et al.
in the context of BFS". This subpackage implements that BFS — top-down and
bottom-up steps with Beamer's switching heuristic — on the same simulated
runtime, so the paper's "SSSP is only two to five times slower than BFS on
the same machine configuration" claim can be measured rather than quoted
(`benchmarks/bench_bfs_vs_sssp.py`).
"""

from repro.bfs.engine import BfsResult, run_bfs

__all__ = ["BfsResult", "run_bfs"]
