"""Per-rank mailboxes: the only channel between SPMD ranks.

A :class:`Mailbox` models one bulk-synchronous exchange round: during a
superstep every rank posts ``(dst_vertex, payload...)`` record batches
addressed by destination rank; at the superstep boundary :meth:`deliver`
moves them to the receivers (counting the traffic through the accounting
communicator) and hands each rank exactly the records addressed to it.
Nothing else crosses rank boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.comm import Communicator

__all__ = ["Mailbox"]


class Mailbox:
    """Bulk-synchronous record exchange between ``num_ranks`` ranks."""

    def __init__(self, num_ranks: int, comm: Communicator) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.num_ranks = num_ranks
        self.comm = comm
        self._outbox: list[list[tuple[int, tuple[np.ndarray, ...]]]] = [
            [] for _ in range(num_ranks)
        ]

    def post(
        self,
        src_rank: int,
        dst_ranks: np.ndarray,
        *columns: np.ndarray,
    ) -> None:
        """Queue records from ``src_rank``; ``columns`` are parallel arrays
        (first column must be the destination vertex ids)."""
        if not 0 <= src_rank < self.num_ranks:
            raise IndexError(f"rank {src_rank} out of range")
        if not columns:
            raise ValueError("at least one record column required")
        dst_ranks = np.asarray(dst_ranks, dtype=np.int64)
        for col in columns:
            if np.asarray(col).shape != dst_ranks.shape:
                raise ValueError("record columns must align with dst_ranks")
        if dst_ranks.size == 0:
            return
        order = np.argsort(dst_ranks, kind="stable")
        sorted_dst = dst_ranks[order]
        sorted_cols = [np.asarray(c)[order] for c in columns]
        bounds = np.nonzero(np.diff(sorted_dst))[0] + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [sorted_dst.size]))
        for s, e in zip(starts, ends):
            dst = int(sorted_dst[s])
            self._outbox[src_rank].append(
                (dst, tuple(c[s:e] for c in sorted_cols))
            )

    def deliver(
        self,
        record_bytes: int,
        *,
        phase_kind: str = "other",
        num_columns: int = 2,
    ) -> list[tuple[np.ndarray, ...]]:
        """Close the superstep: account the traffic and return, per receiving
        rank, the concatenated record columns addressed to it."""
        p = self.num_ranks
        # Account every queued record with its true (src, dst) rank pair.
        src_list = []
        dst_list = []
        for src in range(p):
            for dst, cols in self._outbox[src]:
                count = cols[0].size
                src_list.append(np.full(count, src, dtype=np.int64))
                dst_list.append(np.full(count, dst, dtype=np.int64))
        if src_list:
            self.comm.exchange_by_rank(
                np.concatenate(src_list),
                np.concatenate(dst_list),
                record_bytes,
                phase_kind=phase_kind,
            )
        else:
            self.comm.exchange_by_rank(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                record_bytes,
                phase_kind=phase_kind,
            )
        # Deliver.
        inbox: list[list[tuple[np.ndarray, ...]]] = [[] for _ in range(p)]
        for src in range(p):
            for dst, cols in self._outbox[src]:
                if len(cols) != num_columns:
                    raise ValueError(
                        f"posted {len(cols)} columns, deliver expects "
                        f"{num_columns}"
                    )
                inbox[dst].append(cols)
        self._outbox = [[] for _ in range(p)]
        out: list[tuple[np.ndarray, ...]] = []
        for dst in range(p):
            if inbox[dst]:
                out.append(
                    tuple(
                        np.concatenate([batch[i] for batch in inbox[dst]])
                        for i in range(num_columns)
                    )
                )
            else:
                out.append(
                    tuple(np.empty(0, dtype=np.int64) for _ in range(num_columns))
                )
        return out

    def allreduce_sum(self, values: list[int | float]) -> int | float:
        """Sum a per-rank scalar (counted as one allreduce)."""
        if len(values) != self.num_ranks:
            raise ValueError("need one value per rank")
        self.comm.allreduce(1, phase_kind="bucket")
        return sum(values)

    def allreduce_min(self, values: list[int | float]) -> int | float:
        """Minimum of a per-rank scalar (counted as one allreduce)."""
        if len(values) != self.num_ranks:
            raise ValueError("need one value per rank")
        self.comm.allreduce(1, phase_kind="bucket")
        return min(values)
