"""Micro-batcher: bounded queue with size- and latency-triggered flush.

The same shape as an inference server's request batcher: admitted
requests accumulate in a bounded FIFO; a worker takes a *batch* when
either the batch-size trigger fires (``max_batch_size`` requests are
waiting — solve them together and amortize the per-batch overhead) or
the latency trigger fires (the oldest waiting request has been queued
for ``flush_interval_s`` — never hold a lonely request hostage to batch
economics). A closed batcher flushes whatever remains immediately, which
is what makes graceful drain prompt.

Admission control lives here too: :meth:`put` on a full queue raises
:class:`~repro.serve.request.ServiceOverload` instead of growing the
queue — the typed shed the broker surfaces to callers.

The clock is injectable (``clock=``) so the flush policy is unit-testable
without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.serve.request import ServiceOverload, ServiceShutdown

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Bounded FIFO of requests with coalescing batch take-off.

    ``capacity`` bounds the number of *queued* (not yet taken) requests;
    ``max_batch_size`` bounds one take; ``flush_interval_s`` is the
    longest a request may wait for its batch to fill.
    """

    def __init__(
        self,
        *,
        capacity: int,
        max_batch_size: int,
        flush_interval_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if flush_interval_s < 0:
            raise ValueError("flush_interval_s must be >= 0")
        self.capacity = int(capacity)
        self.max_batch_size = int(max_batch_size)
        self.flush_interval_s = float(flush_interval_s)
        self.clock = clock
        self._queue: list = []
        self._enqueued_at: list[float] = []
        self._closed = False
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of queued (not yet taken) requests."""
        with self._cond:
            return len(self._queue)

    def __len__(self) -> int:
        return self.depth

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    # ------------------------------------------------------------------
    def put(self, request) -> int:
        """Admit one request; returns the new depth.

        Raises :class:`ServiceOverload` when the queue is at capacity and
        :class:`ServiceShutdown` when the batcher is closed.
        """
        with self._cond:
            if self._closed:
                raise ServiceShutdown("batcher is closed")
            depth = len(self._queue)
            if depth >= self.capacity:
                raise ServiceOverload(depth, self.capacity)
            self._queue.append(request)
            self._enqueued_at.append(self.clock())
            self._cond.notify_all()
            return len(self._queue)

    def _flush_wait(self, now: float) -> float | None:
        """Seconds to wait before the latency trigger fires; <=0 = now.

        Assumes the queue is non-empty and the lock is held. None means
        "wait for more requests" cannot happen (closed or full batch).
        """
        if self._closed or len(self._queue) >= self.max_batch_size:
            return 0.0
        return self.flush_interval_s - (now - self._enqueued_at[0])

    def take(self, *, block: bool = True) -> list | None:
        """Take the next batch (1..max_batch_size requests, FIFO).

        Blocks until a flush trigger fires; returns ``None`` when the
        batcher is closed and empty (the worker's exit signal). With
        ``block=False``, returns an immediately-ready batch or ``None``.
        """
        with self._cond:
            while True:
                if self._queue:
                    wait = self._flush_wait(self.clock())
                    if wait is not None and wait <= 0:
                        batch = self._queue[: self.max_batch_size]
                        del self._queue[: self.max_batch_size]
                        del self._enqueued_at[: self.max_batch_size]
                        self._cond.notify_all()
                        return batch
                    if not block:
                        return None
                    self._cond.wait(timeout=wait)
                else:
                    if self._closed or not block:
                        return None
                    self._cond.wait()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admissions; queued requests remain takeable (drain)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def cancel_pending(self) -> list:
        """Pop and return every queued request (immediate shutdown)."""
        with self._cond:
            pending, self._queue = self._queue, []
            self._enqueued_at = []
            self._cond.notify_all()
            return pending

    def wait_empty(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty; True on success."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._queue:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(timeout=remaining)
            return True
