"""Small shared utilities (vectorised range concatenation, table printing)."""

from repro.util.ranges import concat_ranges
from repro.util.tables import format_table

__all__ = ["concat_ranges", "format_table"]
