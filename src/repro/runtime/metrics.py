"""Execution counters for the simulated runtime.

Every algorithm run produces a :class:`Metrics` instance: a list of
:class:`StepRecord` (one per compute/communication/synchronization event,
in program order) plus aggregate counters (relaxations by category, phases,
buckets). The cost model (:mod:`repro.runtime.costmodel`) consumes the
records; the benchmark harness consumes the aggregates — these are exactly
the statistics the paper plots (number of relaxations, number of phases and
buckets, communication volume, load balance).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ComputeKind", "StepRecord", "RecoveryStats", "Metrics"]


class ComputeKind(str, enum.Enum):
    """Category of work inside a step, used for cost weighting and reporting."""

    SHORT_RELAX = "short_relax"
    LONG_PUSH_RELAX = "long_push_relax"
    PULL_REQUEST = "pull_request"
    PULL_RESPONSE = "pull_response"
    BF_RELAX = "bf_relax"
    BUCKET_SCAN = "bucket_scan"


#: Compute kinds that count as relaxations for the paper's work-done metric.
RELAX_KINDS = {
    ComputeKind.SHORT_RELAX,
    ComputeKind.LONG_PUSH_RELAX,
    ComputeKind.PULL_REQUEST,
    ComputeKind.PULL_RESPONSE,
    ComputeKind.BF_RELAX,
}


@dataclass
class StepRecord:
    """One accounted event of a run.

    Attributes
    ----------
    kind:
        What happened (a :class:`ComputeKind` for compute, or the strings
        ``"exchange"`` / ``"allreduce"`` for communication events).
    comp_max:
        Work units on the busiest hardware thread (determines step time).
    comp_total:
        Work units across all threads (determines total work / energy).
    msgs_max:
        Messages sent by the busiest rank (post-aggregation: at most one per
        destination rank per exchange, the SPI model).
    bytes_max:
        Bytes in + out at the busiest rank.
    bytes_total:
        Total bytes moved across the network.
    allreduces:
        Number of allreduce operations in this record.
    phase_kind:
        Which paper-level phase this event belongs to (``"short"``,
        ``"long"``, ``"bf"``, ``"bucket"``) — used for the BktTime/OtherTime
        split of Fig. 10(b)/11(b).
    """

    kind: str
    comp_max: float = 0.0
    comp_total: float = 0.0
    msgs_max: int = 0
    bytes_max: int = 0
    bytes_total: int = 0
    allreduces: int = 0
    phase_kind: str = "other"


@dataclass
class RecoveryStats:
    """Fault-tolerance overhead counters (all zero on a fault-free run).

    Filled in by the SPMD recovery layer (:mod:`repro.spmd.faults`): the
    reliable transport reports retransmissions, the engine reports
    checkpoints, rank restarts and self-healing sweeps.  ``events`` is the
    deterministic fault-injection log — one ``(superstep, round, kind,
    count)`` tuple per injected fault batch — so two runs with the same
    :class:`~repro.spmd.faults.FaultPlan` seed can be compared exactly.
    """

    retries: int = 0
    """Retransmission rounds issued by senders (ack-gap driven)."""
    retransmitted_records: int = 0
    retransmitted_bytes: int = 0
    """Off-node bytes re-sent during recovery (the ``recovery`` phase)."""
    recovery_supersteps: int = 0
    """Extra ack/retry rounds appended to supersteps by the transport."""
    checkpoints_taken: int = 0
    rank_restarts: int = 0
    healing_sweeps: int = 0
    """Post-solve Bellman-Ford sweeps needed to re-validate distances."""
    faults_injected: dict[str, int] = field(default_factory=dict)
    """Count of injected faults by kind (loss/duplicate/reorder/delay/...)."""
    events: list[tuple[int, int, str, int]] = field(default_factory=list)
    """Deterministic fault log: ``(superstep, round, kind, count)``."""

    def note_fault(self, superstep: int, round_: int, kind: str, count: int) -> None:
        """Log ``count`` injected faults of ``kind`` (and tally by kind)."""
        self.faults_injected[kind] = self.faults_injected.get(kind, 0) + count
        self.events.append((superstep, round_, kind, count))

    def summary(self) -> dict[str, int]:
        """Flat overhead summary (merged into :meth:`Metrics.summary`)."""
        return {
            "retries": self.retries,
            "resent_records": self.retransmitted_records,
            "resent_bytes": self.retransmitted_bytes,
            "recovery_supersteps": self.recovery_supersteps,
            "rank_restarts": self.rank_restarts,
            "healing_sweeps": self.healing_sweeps,
        }


@dataclass
class Metrics:
    """Accumulated counters for one algorithm run."""

    num_ranks: int
    threads_per_rank: int
    records: list[StepRecord] = field(default_factory=list)

    # Aggregate counters ------------------------------------------------
    relaxations: dict[str, int] = field(default_factory=dict)
    short_phases: int = 0
    long_phases: int = 0
    bf_phases: int = 0
    recovery_phases: int = 0
    buckets_processed: int = 0
    pull_buckets: int = 0
    push_buckets: int = 0
    hybrid_switch_bucket: int = -1
    degraded_to_bf: bool = False
    """True when the watchdog's ``degrade`` policy collapsed the remaining
    buckets into a final Bellman-Ford pass. Surfaced in :meth:`summary` as
    ``degraded`` so report consumers can exclude such runs from comparable
    rows instead of silently mixing them in."""
    per_phase_relaxations: list[tuple[str, int]] = field(default_factory=list)
    per_bucket_stats: list[dict[str, int | str]] = field(default_factory=list)
    recovery: RecoveryStats = field(default_factory=RecoveryStats)
    """Fault-tolerance overhead (all zero unless faults were injected)."""
    tracer: object | None = field(default=None, repr=False, compare=False)
    """Optional :class:`repro.obs.tracer.Tracer` notified of every record
    (set by ``make_context`` when tracing is configured; duck-typed so the
    runtime never imports :mod:`repro.obs`). Pay-for-use: ``None`` means the
    recording path is identical to an uninstrumented run."""

    # ------------------------------------------------------------------
    # Recording API (called by algorithms and the communicator)
    # ------------------------------------------------------------------
    def add_compute(
        self,
        kind: ComputeKind,
        thread_work: np.ndarray,
        *,
        phase_kind: str = "other",
        count_as_relax: bool | None = None,
    ) -> None:
        """Record compute distributed over hardware threads.

        ``thread_work`` is a flat array of length ``num_ranks *
        threads_per_rank`` with work units (typically edge counts) per
        thread. Its max determines the simulated step time; its sum feeds
        the relaxation counters.
        """
        thread_work = np.asarray(thread_work, dtype=np.float64)
        expected = self.num_ranks * self.threads_per_rank
        if thread_work.size != expected:
            raise ValueError(
                f"thread_work must have {expected} entries, got {thread_work.size}"
            )
        total = float(thread_work.sum())
        rec = StepRecord(
            kind=kind.value,
            comp_max=float(thread_work.max()) if thread_work.size else 0.0,
            comp_total=total,
            phase_kind=phase_kind,
        )
        self.records.append(rec)
        if count_as_relax is None:
            count_as_relax = kind in RELAX_KINDS
        relaxed = int(round(total)) if count_as_relax else 0
        if count_as_relax:
            self.relaxations[kind.value] = (
                self.relaxations.get(kind.value, 0) + relaxed
            )
        if self.tracer is not None:
            self.tracer.on_compute(rec, thread_work, relaxed)

    def add_exchange(
        self,
        msgs_per_rank: np.ndarray,
        bytes_per_rank: np.ndarray,
        *,
        phase_kind: str = "other",
    ) -> None:
        """Record one all-to-all exchange (called by the communicator)."""
        msgs = np.asarray(msgs_per_rank, dtype=np.int64)
        byt = np.asarray(bytes_per_rank, dtype=np.int64)
        rec = StepRecord(
            kind="exchange",
            msgs_max=int(msgs.max()) if msgs.size else 0,
            bytes_max=int(byt.max()) if byt.size else 0,
            bytes_total=int(byt.sum()) // 2,  # each byte counted at src and dst
            phase_kind=phase_kind,
        )
        self.records.append(rec)
        if self.tracer is not None:
            self.tracer.on_exchange(rec, msgs, byt)

    def add_allreduce(self, count: int = 1, *, phase_kind: str = "bucket") -> None:
        """Record ``count`` small allreduce operations."""
        rec = StepRecord(kind="allreduce", allreduces=count, phase_kind=phase_kind)
        self.records.append(rec)
        if self.tracer is not None:
            self.tracer.on_allreduce(rec)

    def note_phase(self, kind: str, relaxations: int) -> None:
        """Record a paper-level phase and its relaxation count (Fig. 4 data)."""
        if kind == "short":
            self.short_phases += 1
        elif kind == "long":
            self.long_phases += 1
        elif kind == "bf":
            self.bf_phases += 1
        elif kind == "recovery":
            self.recovery_phases += 1
        else:
            raise ValueError(f"unknown phase kind {kind!r}")
        self.per_phase_relaxations.append((kind, int(relaxations)))

    def note_bucket(self, stats: dict[str, int | str]) -> None:
        """Record per-bucket statistics (Fig. 7 census, push/pull choice)."""
        self.buckets_processed += 1
        mode = stats.get("mode")
        if mode == "pull":
            self.pull_buckets += 1
        elif mode == "push":
            self.push_buckets += 1
        self.per_bucket_stats.append(stats)

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    @property
    def total_relaxations(self) -> int:
        """Total relaxations, counting pull requests and responses separately
        (the paper's fair-count convention of Section III-C)."""
        return int(sum(self.relaxations.values()))

    @property
    def total_phases(self) -> int:
        """Total phases of all kinds (Fig. 3(a) metric)."""
        return (
            self.short_phases
            + self.long_phases
            + self.bf_phases
            + self.recovery_phases
        )

    @property
    def total_bytes(self) -> int:
        """Total bytes moved across the simulated network."""
        return sum(r.bytes_total for r in self.records)

    @property
    def recovery_bytes(self) -> int:
        """Bytes moved by the recovery layer (retries + healing sweeps)."""
        return sum(
            r.bytes_total for r in self.records if r.phase_kind == "recovery"
        )

    def bytes_by_phase_kind(self) -> dict[str, int]:
        """Total bytes split by paper-level phase kind."""
        out: dict[str, int] = {}
        for r in self.records:
            if r.bytes_total:
                out[r.phase_kind] = out.get(r.phase_kind, 0) + r.bytes_total
        return out

    @property
    def total_allreduces(self) -> int:
        return sum(r.allreduces for r in self.records)

    def relaxations_by_kind(self) -> dict[str, int]:
        """Copy of the per-category relaxation counters."""
        return dict(self.relaxations)

    def summary(self) -> dict[str, int]:
        """Flat summary used by benches and tests."""
        return {
            "relaxations": self.total_relaxations,
            "phases": self.total_phases,
            "short_phases": self.short_phases,
            "long_phases": self.long_phases,
            "bf_phases": self.bf_phases,
            "recovery_phases": self.recovery_phases,
            "buckets": self.buckets_processed,
            "push_buckets": self.push_buckets,
            "pull_buckets": self.pull_buckets,
            "bytes": self.total_bytes,
            "recovery_bytes": self.recovery_bytes,
            "allreduces": self.total_allreduces,
            "hybrid_switch_bucket": self.hybrid_switch_bucket,
            "degraded": self.degraded_to_bf,
            **self.recovery.summary(),
        }
