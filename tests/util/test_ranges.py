"""Unit tests for vectorised range concatenation."""

import numpy as np
import pytest

from repro.util.ranges import concat_ranges


class TestConcatRanges:
    def test_docstring_example(self):
        idx, owners = concat_ranges(np.array([0, 5]), np.array([2, 8]))
        assert list(idx) == [0, 1, 5, 6, 7]
        assert list(owners) == [0, 0, 1, 1, 1]

    def test_empty_input(self):
        idx, owners = concat_ranges(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert idx.size == 0 and owners.size == 0

    def test_all_empty_ranges(self):
        idx, owners = concat_ranges(np.array([3, 7]), np.array([3, 7]))
        assert idx.size == 0

    def test_mixed_empty_and_nonempty(self):
        idx, owners = concat_ranges(np.array([0, 2, 2]), np.array([2, 2, 4]))
        assert list(idx) == [0, 1, 2, 3]
        assert list(owners) == [0, 0, 2, 2]

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            concat_ranges(np.array([5]), np.array([3]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            concat_ranges(np.array([1, 2]), np.array([3]))

    def test_matches_python_reference(self):
        rng = np.random.default_rng(0)
        starts = rng.integers(0, 50, 30)
        ends = starts + rng.integers(0, 10, 30)
        idx, owners = concat_ranges(starts, ends)
        ref_idx, ref_owners = [], []
        for i, (s, e) in enumerate(zip(starts, ends)):
            ref_idx.extend(range(s, e))
            ref_owners.extend([i] * (e - s))
        assert list(idx) == ref_idx
        assert list(owners) == ref_owners

    def test_single_large_range(self):
        idx, owners = concat_ranges(np.array([10]), np.array([10_010]))
        assert idx.size == 10_000
        assert idx[0] == 10 and idx[-1] == 10_009
        assert np.all(owners == 0)


class TestFormatTable:
    def test_alignment_and_title(self):
        from repro.util.tables import format_table

        out = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_missing_cells(self):
        from repro.util.tables import format_table

        out = format_table([{"a": 1}, {"b": 2}])
        assert "a" in out and "b" in out

    def test_empty(self):
        from repro.util.tables import format_table

        assert "(no rows)" in format_table([])

    def test_float_formatting(self):
        from repro.util.tables import format_table

        out = format_table([{"x": 0.000123456, "y": 12345.6, "z": 1.5}])
        assert "0.000123" in out
        assert "1.23e+04" in out
        assert "1.5" in out
