"""Fig. 4 — Dominance of long-edge phases.

A sample Δ-stepping run's phase-wise relaxation distribution: with Δ small
against w_max = 255, most edges are long, so the single long phase of each
epoch carries far more relaxations than all its short phases together —
the observation motivating the pruning heuristic (Section III-B).
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    BENCH_SCALE,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
    run_algorithm,
)
from repro.analysis.phase_stats import phase_relaxation_series


@functools.lru_cache(maxsize=1)
def compute_series():
    graph = cached_rmat(BENCH_SCALE, "rmat1")
    root = choose_root(graph, seed=0)
    res = run_algorithm(graph, root, "delta", 25, default_machine(8))
    return phase_relaxation_series(res.metrics)


def test_fig04_long_phase_dominance(benchmark):
    series = benchmark.pedantic(compute_series, rounds=1, iterations=1)
    print_table(series, "Fig. 4 — per-phase relaxations (Del-25, RMAT-1)")
    long_work = sum(r["relaxations"] for r in series if r["kind"] == "long")
    short_work = sum(r["relaxations"] for r in series if r["kind"] == "short")
    total = long_work + short_work
    print(
        f"\nlong-phase share: {long_work / total:.1%} "
        f"(paper: long phases dominate)"
    )
    assert long_work > short_work
    # the dominance is strong, not marginal
    assert long_work / total > 0.6


if __name__ == "__main__":
    series = compute_series()
    print_table(series, "Fig. 4 — per-phase relaxations (Del-25, RMAT-1)")
