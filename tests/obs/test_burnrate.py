"""Unit tests for the multi-window SLO burn-rate monitor."""

import math

import pytest

from repro.obs.burnrate import (
    COMPANION_DIVISOR,
    OK_SOURCES,
    BurnAlert,
    BurnRateConfig,
    BurnRateMonitor,
)
from repro.serve.slo import LatencyWindow


class FakeClock:
    def __init__(self, t0: float = 0.0) -> None:
        self.t = t0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _monitor(clock, **cfg) -> tuple[LatencyWindow, BurnRateMonitor]:
    window = LatencyWindow(clock=clock)
    return window, BurnRateMonitor(window, BurnRateConfig(**cfg))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurnRateConfig(objective=1.0)
        with pytest.raises(ValueError):
            BurnRateConfig(objective=0.0)
        with pytest.raises(ValueError):
            BurnRateConfig(fast_window_s=0.0)
        with pytest.raises(ValueError):
            BurnRateConfig(slow_threshold=-1.0)
        with pytest.raises(ValueError):
            BurnRateConfig(min_samples=0)

    def test_error_budget(self):
        assert BurnRateConfig(objective=0.99).error_budget == pytest.approx(0.01)
        assert BurnRateConfig(objective=0.9).error_budget == pytest.approx(0.1)

    def test_ok_sources_cover_serving_outcomes(self):
        # every way the broker can successfully serve must not burn budget
        assert set(OK_SOURCES) == {"cache", "solve", "coalesced", "degraded"}


class TestBurnRate:
    def test_thin_window_is_nan(self):
        clock = FakeClock()
        window, mon = _monitor(clock, min_samples=10)
        for _ in range(9):
            window.record("solve", 0.01)
        burn, bad, total = mon.burn_rate(60.0)
        assert math.isnan(burn)
        assert (bad, total) == (0, 9)

    def test_burn_is_bad_fraction_over_budget(self):
        clock = FakeClock()
        window, mon = _monitor(clock, objective=0.9, min_samples=1)
        for _ in range(8):
            window.record("solve", 0.01)
        for _ in range(2):
            window.record("timeout", 0.01)
        burn, bad, total = mon.burn_rate(60.0)
        # bad fraction 0.2 over a 0.1 budget = burning 2x
        assert burn == pytest.approx(2.0)
        assert (bad, total) == (2, 10)

    def test_old_samples_age_out_of_window(self):
        clock = FakeClock()
        window, mon = _monitor(clock, objective=0.9, min_samples=1)
        window.record("timeout", 0.01)
        clock.advance(120.0)
        for _ in range(5):
            window.record("solve", 0.01)
        burn, bad, total = mon.burn_rate(60.0)
        assert burn == pytest.approx(0.0)
        assert (bad, total) == (0, 5)

    def test_slow_success_burns_when_latency_slo_set(self):
        clock = FakeClock()
        window, mon = _monitor(
            clock, objective=0.9, min_samples=1, latency_slo_s=0.1
        )
        window.record("solve", 0.05)   # good and fast
        window.record("solve", 0.50)   # good but slow -> budget spend
        burn, bad, total = mon.burn_rate(60.0)
        assert (bad, total) == (1, 2)
        assert burn == pytest.approx(5.0)

    def test_without_latency_slo_slow_success_is_fine(self):
        clock = FakeClock()
        window, mon = _monitor(clock, objective=0.9, min_samples=1)
        window.record("solve", 99.0)
        burn, _, _ = mon.burn_rate(60.0)
        assert burn == pytest.approx(0.0)


class TestEvaluate:
    def _saturate(self, window, source, n):
        for _ in range(n):
            window.record(source, 0.01)

    def test_healthy_budget_no_alerts(self):
        clock = FakeClock()
        window, mon = _monitor(clock, min_samples=1)
        self._saturate(window, "solve", 50)
        assert mon.evaluate() == []
        assert mon.summary()["paging"] is False

    def test_hard_burn_pages(self):
        clock = FakeClock()
        window, mon = _monitor(clock, objective=0.9, min_samples=1)
        # 100% bad -> burn 10x > page threshold 14.4? No: 10 < 14.4.
        # Use a tighter objective so full badness clearly pages.
        window, mon = _monitor(clock, objective=0.99, min_samples=1)
        self._saturate(window, "timeout", 20)
        alerts = mon.evaluate()
        assert [a.severity for a in alerts] == ["page", "ticket"]
        page = alerts[0]
        assert page.burn == pytest.approx(100.0)
        assert page.companion_burn == pytest.approx(100.0)
        assert mon.summary()["paging"] is True

    def test_companion_gate_clears_alerts_after_burn_stops(self):
        clock = FakeClock()
        window, mon = _monitor(clock, objective=0.99, min_samples=1)
        # a burst of badness, then recovery
        self._saturate(window, "timeout", 20)
        fast_companion_s = mon.config.fast_window_s / COMPANION_DIVISOR
        clock.advance(fast_companion_s + 1.0)
        self._saturate(window, "solve", 20)
        # the fast (page) companion now holds only good samples, so the
        # page clears; the slow companion (25 s) still sees the burst,
        # so the ticket correctly keeps firing on sustained burn
        assert [a.severity for a in mon.evaluate()] == ["ticket"]
        slow_companion_s = mon.config.slow_window_s / COMPANION_DIVISOR
        clock.advance(slow_companion_s)
        self._saturate(window, "solve", 20)
        # burst is out of both companions (though still inside the 300 s
        # slow window): everything clears
        assert mon.evaluate() == []

    def test_thin_window_never_fires(self):
        clock = FakeClock()
        window, mon = _monitor(clock, min_samples=10)
        self._saturate(window, "timeout", 5)
        assert mon.evaluate() == []

    def test_ticket_without_page(self):
        clock = FakeClock()
        # slow threshold 6x, fast threshold 14.4x: a ~10x burn tickets
        # but does not page
        window, mon = _monitor(clock, objective=0.9, min_samples=1)
        self._saturate(window, "timeout", 1)
        window.record("solve", 0.01)
        # bad fraction 0.5 over budget 0.1 = 5x: under both -> nothing
        assert mon.evaluate() == []
        self._saturate(window, "timeout", 2)
        # 3 bad / 4 total = 7.5x: ticket only
        alerts = mon.evaluate()
        assert [a.severity for a in alerts] == ["ticket"]

    def test_describe_is_informative(self):
        alert = BurnAlert(
            severity="page", window_s=60.0, burn=20.0,
            companion_burn=21.0, threshold=14.4, bad=20, total=100,
        )
        text = alert.describe()
        assert "[page]" in text and "20.0x" in text and "20/100 bad" in text


class TestSummary:
    def test_summary_shape(self):
        clock = FakeClock()
        window, mon = _monitor(clock, min_samples=1)
        window.record("solve", 0.01)
        row = mon.summary()
        assert row["objective"] == 0.99
        assert row["burn_fast"] == pytest.approx(0.0)
        assert row["burn_fast_total"] == 1
        assert row["burn_slow_total"] == 1
        assert row["alerts"] == [] and row["paging"] is False

    def test_summary_nan_on_empty(self):
        clock = FakeClock()
        _, mon = _monitor(clock)
        row = mon.summary()
        assert math.isnan(row["burn_fast"]) and math.isnan(row["burn_slow"])
