"""JSON-serialisable result reports.

Benchmark pipelines want machine-readable output next to the plain-text
tables; these helpers flatten the result objects (``SsspResult``,
``BfsResult``, ``Graph500Result``, cost breakdowns, metrics) into plain
dicts of JSON-safe scalars and dump them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = ["sssp_report", "bfs_report", "graph500_report", "dump_json"]


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars and containers to JSON-safe types."""
    import numpy as np

    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def sssp_report(result) -> dict[str, Any]:
    """Flatten an :class:`~repro.core.solver.SsspResult` (no distance array —
    reports are about the run, not the n-sized payload).

    When the solve ran with telemetry (``result.trace``), the report gains a
    ``trace`` section with the artifact paths, total wall/simulated time and
    the per-kind drift rows.
    """
    trace = getattr(result, "trace", None)
    extra: dict[str, Any] = {}
    if trace is not None:
        extra["trace"] = {
            "artifacts": dict(trace.artifacts),
            "wall_total_s": trace.wall_total,
            "sim_total_s": trace.sim_t,
            "drift": list(trace.drift_rows),
        }
    return _jsonable(
        {
            **extra,
            "kind": "sssp",
            "algorithm": result.algorithm,
            "root": result.root,
            "n": result.num_vertices,
            "m": result.num_edges,
            "reached": result.num_reached,
            "gteps": result.gteps,
            "wall_time_s": result.wall_time_s,
            "num_proxies": result.num_proxies,
            "machine": {
                "num_ranks": result.machine.num_ranks,
                "threads_per_rank": result.machine.threads_per_rank,
            },
            "config": {
                "delta": min(result.config.delta, 2**60),
                "use_ios": result.config.use_ios,
                "use_pruning": result.config.use_pruning,
                "use_hybrid": result.config.use_hybrid,
                "tau": result.config.tau,
                "intra_lb": result.config.intra_lb,
                "inter_split": result.config.inter_split,
                "pushpull_estimator": result.config.pushpull_estimator,
                "partition": result.config.partition,
            },
            "cost": result.cost.as_row(),
            "metrics": result.metrics.summary(),
            "relaxations_by_kind": result.metrics.relaxations_by_kind(),
        }
    )


def bfs_report(result) -> dict[str, Any]:
    """Flatten a :class:`~repro.bfs.engine.BfsResult`."""
    return _jsonable(
        {
            "kind": "bfs",
            "root": result.root,
            "reached": result.num_reached,
            "levels": result.num_levels,
            "directions": list(result.direction_per_level),
            "gteps": result.gteps,
            "cost": result.cost.as_row(),
            "metrics": result.metrics.summary(),
        }
    )


def graph500_report(result) -> dict[str, Any]:
    """Flatten a :class:`~repro.apps.graph500.Graph500Result`."""
    return _jsonable(
        {
            "kind": "graph500-sssp",
            **result.summary(),
            "mean_gteps": result.mean_gteps,
            "per_root": result.per_root,
        }
    )


def dump_json(report: dict[str, Any], path: str | Path | None = None) -> str:
    """Serialise a report; optionally also write it to ``path``."""
    text = json.dumps(report, indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(text + "\n")
    return text
