"""Solver configuration and the paper's named algorithm presets.

The paper evaluates a family of algorithms that all share the Δ-stepping
skeleton and differ in which optimisations are enabled:

========== =====================================================
Name        Composition (Section IV-C)
========== =====================================================
Dijkstra    Δ-stepping with Δ = 1 (Dial's variant)
Bell-Ford   Δ-stepping with Δ = ∞ (one bucket)
Del-Δ       Δ-stepping + short/long edge classification
Prune-Δ     Del-Δ + IOS + pruning (push/pull long phases)
OPT-Δ       Prune-Δ + hybridization (τ = 0.4)
LB-OPT-Δ    OPT-Δ + intra-node thread balancing (+ vertex split)
========== =====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.tracer import TraceConfig

__all__ = [
    "SolverConfig",
    "preset",
    "PRESETS",
    "DELTA_FREE_PRESETS",
    "DELTA_INFINITY",
]

DELTA_INFINITY: int = 2**60
"""A Δ larger than any achievable distance: one bucket = Bellman-Ford."""


@dataclass(frozen=True)
class SolverConfig:
    """Tunable knobs of the Δ-stepping family.

    Attributes
    ----------
    strategy:
        Stepping strategy (see :mod:`repro.core.stepping`): ``"delta"``
        — the paper's fixed-width buckets (default); ``"radius"`` —
        radius stepping with per-vertex window widths (arXiv
        1602.03881); ``"rho"`` — ρ-stepping's lazy-batched priority
        queue (arXiv 2105.06145). The Δ-specific optimisations
        (``use_ios``, ``use_pruning``, ``collect_census``) require
        ``"delta"``; hybridization composes with every strategy.
    delta:
        Bucket width Δ (``strategy="delta"``). ``1`` is Dijkstra/Dial;
        :data:`DELTA_INFINITY` degenerates to Bellman-Ford.
    rho:
        Extraction batch bound for ``strategy="rho"``: each step settles
        at least the ρ closest unsettled vertices.
    radius_k:
        Radius order for ``strategy="radius"``: a vertex's radius is its
        ``radius_k``-th smallest incident edge weight.
    use_ios:
        Enable the inner/outer-short heuristic (Section III-A): during
        short phases relax only edges whose proposed distance lands inside
        the current bucket; relax outer short edges in the long phase.
    use_pruning:
        Enable pull-model long phases with the push/pull decision
        (Section III-B/III-C). Without it long phases always push.
    pushpull_mode:
        ``"auto"`` — the decision heuristic picks per bucket;
        ``"push"`` / ``"pull"`` — force one model;
        ``"sequence"`` — follow :attr:`pushpull_sequence` (oracle replay).
    pushpull_sequence:
        Explicit per-bucket choices for ``mode="sequence"``; buckets beyond
        the sequence end fall back to the heuristic.
    pushpull_estimator:
        ``"expectation"`` — the paper's cheap volume heuristic;
        ``"histogram"`` — the paper's suggested alternative: approximate
        per-vertex request counts from precomputed weight histograms
        instead of assuming the uniform distribution;
        ``"exact"`` — price both models with the cost model on
        materialised record sets (per-bucket optimal; see Section IV-G).
    partition:
        ``"block"`` — the paper's equal-vertex-count distribution;
        ``"degree"`` — contiguous blocks balanced by aggregate degree
        (ablation of the Section III-E load-imbalance observation).
    imbalance_weight:
        Weight of the max-per-rank term in the push/pull cost estimate (the
        paper's fine-tuning that accounts for request imbalance; 0 recovers
        the pure volume heuristic).
    use_hybrid:
        Switch to Bellman-Ford once the settled fraction exceeds ``tau``
        (Section III-D).
    tau:
        Hybrid switch threshold (paper: 0.4).
    intra_lb:
        Spread edge work of heavy vertices (degree > ``heavy_degree``)
        across the owning rank's threads (Section III-E).
    heavy_degree:
        Intra-node heaviness threshold π; ``None`` derives
        ``4 * mean_degree`` at solve time.
    inter_split:
        Split extreme-degree vertices (degree > ``split_degree``) into
        proxies distributed across ranks (Section III-E).
    split_degree:
        Inter-node split threshold π′; ``None`` derives
        ``max(64, 16 * mean_degree)`` at solve time.
    """

    strategy: str = "delta"
    delta: int = 25
    rho: int = 1024
    radius_k: int = 2
    use_ios: bool = False
    use_pruning: bool = False
    pushpull_mode: str = "auto"
    pushpull_sequence: tuple[str, ...] = ()
    pushpull_estimator: str = "expectation"
    imbalance_weight: float = 1.0
    use_hybrid: bool = False
    tau: float = 0.4
    intra_lb: bool = False
    heavy_degree: int | None = None
    inter_split: bool = False
    split_degree: int | None = None
    partition: str = "block"
    histogram_bins: int = 16
    collect_census: bool = False
    """Collect the exact per-bucket self/backward/forward edge census and
    pull request/response counts of Fig. 7 (costs one extra adjacency sweep
    per bucket; off by default)."""
    incremental_buckets: bool = True
    """Maintain bucket membership and the minimum non-empty bucket with the
    incremental :class:`~repro.core.bucket_index.BucketIndex` (fed by the
    changed-vertex sets relaxations already return) instead of rescanning
    the full distance array every epoch. Results, metrics and simulated
    cost are bit-identical either way — the flag exists so benchmarks can
    measure the scan-based hot path (``False``) against the index."""
    paranoid: bool = False
    """Enable runtime invariant guards (:mod:`repro.runtime.guards`):
    per-superstep checks of bucket monotonicity, settled finality, IOS edge
    conservation and recovery-traffic separation. Off by default; every
    engine hook site is gated on the guards object, so a non-paranoid run
    executes no extra work and charges no extra accounting."""
    trace: "TraceConfig | None" = None
    """Optional telemetry configuration (:mod:`repro.obs`). ``None`` (the
    default) means no tracer exists and no hook executes — distances,
    metrics and simulated cost are bit-identical to an uninstrumented run,
    the same pay-for-use discipline as :attr:`paranoid`."""

    def __post_init__(self) -> None:
        if self.strategy not in ("delta", "radius", "rho"):
            raise ValueError(
                f"unknown stepping strategy {self.strategy!r} "
                "(expected 'delta', 'radius' or 'rho')"
            )
        if self.delta < 1:
            raise ValueError("delta must be >= 1")
        if self.rho < 1:
            raise ValueError("rho must be >= 1")
        if self.radius_k < 1:
            raise ValueError("radius_k must be >= 1")
        if self.strategy != "delta":
            # The IOS/pruning/census maths is Δ-bucket-specific: it
            # partitions edges against the fixed bucket width, which the
            # windowed strategies do not have.
            forbidden = [
                name
                for name, on in (
                    ("use_ios", self.use_ios),
                    ("use_pruning", self.use_pruning),
                    ("collect_census", self.collect_census),
                )
                if on
            ]
            if forbidden:
                raise ValueError(
                    f"{', '.join(forbidden)} require strategy='delta' "
                    f"(got strategy={self.strategy!r})"
                )
        if not 0.0 <= self.tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        if self.pushpull_mode not in ("auto", "push", "pull", "sequence"):
            raise ValueError(f"unknown pushpull_mode {self.pushpull_mode!r}")
        if any(c not in ("push", "pull") for c in self.pushpull_sequence):
            raise ValueError("pushpull_sequence entries must be 'push' or 'pull'")
        if self.pushpull_estimator not in ("expectation", "histogram", "exact"):
            raise ValueError(
                f"unknown pushpull_estimator {self.pushpull_estimator!r}"
            )
        if self.partition not in ("block", "degree"):
            raise ValueError(f"unknown partition strategy {self.partition!r}")
        if self.histogram_bins < 1:
            raise ValueError("histogram_bins must be >= 1")
        if self.imbalance_weight < 0:
            raise ValueError("imbalance_weight must be non-negative")

    @property
    def is_bellman_ford(self) -> bool:
        """True when Δ is effectively infinite (delta strategy only)."""
        return self.strategy == "delta" and self.delta >= DELTA_INFINITY

    @property
    def classification_width(self) -> int:
        """Short-edge weight threshold for the preprocessing tables.

        Δ for the delta strategy; effectively infinite for the windowed
        strategies (every edge is short — they relax all edges eagerly
        in short phases and run no long phase).
        """
        if self.strategy == "delta":
            return self.delta
        return DELTA_INFINITY

    def derived_heavy_degree(self, mean_degree: float) -> int:
        """Resolve π, defaulting to four times the mean degree."""
        if self.heavy_degree is not None:
            return self.heavy_degree
        return max(8, int(math.ceil(4 * mean_degree)))

    def derived_split_degree(self, mean_degree: float) -> int:
        """Resolve π′, defaulting to sixteen times the mean degree."""
        if self.split_degree is not None:
            return self.split_degree
        return max(64, int(math.ceil(16 * mean_degree)))

    def evolve(self, **changes) -> "SolverConfig":
        """Copy with the given fields replaced."""
        return replace(self, **changes)


def _dijkstra(delta: int) -> SolverConfig:
    return SolverConfig(delta=1)


def _bellman_ford(delta: int) -> SolverConfig:
    return SolverConfig(delta=DELTA_INFINITY)


def _del(delta: int) -> SolverConfig:
    return SolverConfig(delta=delta)


def _prune(delta: int) -> SolverConfig:
    return SolverConfig(delta=delta, use_ios=True, use_pruning=True)


def _opt(delta: int) -> SolverConfig:
    return SolverConfig(
        delta=delta, use_ios=True, use_pruning=True, use_hybrid=True
    )


def _lb_opt(delta: int) -> SolverConfig:
    return SolverConfig(
        delta=delta,
        use_ios=True,
        use_pruning=True,
        use_hybrid=True,
        intra_lb=True,
    )


def _lb_opt_split(delta: int) -> SolverConfig:
    return _lb_opt(delta).evolve(inter_split=True)


def _radius(delta: int) -> SolverConfig:
    # Δ is irrelevant to the windowed strategies; the argument is
    # accepted (and ignored) so every preset factory has one shape.
    return SolverConfig(strategy="radius")


def _rho(delta: int) -> SolverConfig:
    return SolverConfig(strategy="rho")


PRESETS = {
    "dijkstra": _dijkstra,
    "bellman-ford": _bellman_ford,
    "delta": _del,
    "prune": _prune,
    "opt": _opt,
    "lb-opt": _lb_opt,
    "lb-opt-split": _lb_opt_split,
    "radius": _radius,
    "rho": _rho,
}
"""Factory per algorithm name; each takes Δ and returns a config."""

#: presets whose result name carries no ``-Δ`` suffix (Δ plays no role)
DELTA_FREE_PRESETS = frozenset({"bellman-ford", "radius", "rho"})


def preset(name: str, delta: int = 25) -> SolverConfig:
    """Named algorithm preset, e.g. ``preset("opt", 25)`` for OPT-25."""
    try:
        factory = PRESETS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {sorted(PRESETS)}"
        ) from None
    return factory(delta)
