"""Query-serving subsystem: batched SSSP service over the OPT engine.

The offline front-ends (:func:`~repro.core.solver.solve_sssp`,
:class:`~repro.core.solver.BatchSolver`) answer one solve at a time; this
package turns them into a *service* with the same shapes as an inference
stack — queueing, micro-batching, caching, backpressure:

- :class:`~repro.serve.broker.QueryBroker` — bounded request queue with
  admission control, per-request watchdog deadlines, a worker pool over
  ``BatchSolver.solve_many``, and graceful drain on shutdown;
- :class:`~repro.serve.batcher.MicroBatcher` — size- and
  latency-triggered batch flush (inference-style coalescing);
- :class:`~repro.serve.cache.DistanceCache` — byte-budgeted LRU of
  distance arrays whose hits are bit-identical to fresh solves;
- :class:`~repro.serve.workload.WorkloadSpec` /
  :func:`~repro.serve.workload.run_workload` — open/closed-loop arrival
  processes with Zipf-skewed root popularity;
- :class:`~repro.serve.slo.SloPolicy` — p50/p99/hit-rate/shed verdicts.

Quickstart::

    from repro import rmat_graph
    from repro.serve import QueryBroker

    g = rmat_graph(scale=14, seed=1)
    with QueryBroker(g, algorithm="opt", delta=25, num_ranks=8) as broker:
        result = broker.query(root=0)            # full distance array
        hit = broker.query(root=0)               # served from cache
        assert hit.cached and (hit.distances == result.distances).all()

See DESIGN.md §11 for the architecture and overload policy.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.breaker import BreakerConfig, CircuitBreaker
from repro.serve.broker import QueryBroker
from repro.serve.cache import CacheStats, DistanceCache
from repro.serve.chaos import ChaosEvent, ChaosPlan, ChaosSolver, InjectedFault
from repro.serve.events import WideEventLog, canonical_text
from repro.serve.request import (
    QueryFuture,
    QueryRequest,
    QueryResult,
    ServiceOverload,
    ServiceShutdown,
    ServiceUnavailable,
    SolveCorrupted,
)
from repro.serve.retry import RetryPolicy
from repro.serve.slo import LatencyWindow, SloPolicy, percentile
from repro.serve.workload import (
    WorkloadSpec,
    interarrival_times,
    root_sequence,
    run_workload,
    zipf_weights,
)

__all__ = [
    "BreakerConfig",
    "CacheStats",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosSolver",
    "CircuitBreaker",
    "DistanceCache",
    "InjectedFault",
    "LatencyWindow",
    "MicroBatcher",
    "QueryBroker",
    "QueryFuture",
    "QueryRequest",
    "QueryResult",
    "RetryPolicy",
    "ServiceOverload",
    "ServiceShutdown",
    "ServiceUnavailable",
    "SloPolicy",
    "SolveCorrupted",
    "WideEventLog",
    "WorkloadSpec",
    "canonical_text",
    "interarrival_times",
    "percentile",
    "root_sequence",
    "run_workload",
    "zipf_weights",
]
