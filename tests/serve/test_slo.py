"""Unit tests for latency windows, exact percentiles, and SLO verdicts."""

import math

import pytest

from repro.serve.slo import LatencyWindow, SloPolicy, percentile


class FakeClock:
    def __init__(self, t0: float = 0.0) -> None:
        self.t = t0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))
        assert math.isnan(percentile((), 99))

    def test_single_sample(self):
        assert percentile([0.25], 50) == 0.25
        assert percentile([0.25], 99) == 0.25

    def test_lower_interpolation_returns_observed_value(self):
        # 'lower' must pick an actually observed sample, never an average
        samples = [0.1, 0.2, 0.3, 0.4]
        for q in (25, 50, 75, 90, 99):
            assert percentile(samples, q) in samples

    def test_p50_of_even_set_is_lower_median(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0

    def test_order_insensitive(self):
        assert percentile([3.0, 1.0, 2.0], 99) == percentile([1.0, 2.0, 3.0], 99)


class TestLatencyWindow:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyWindow(window=0)

    def test_eviction_at_exact_boundary(self):
        w = LatencyWindow(window=3)
        for lat in (0.1, 0.2, 0.3):
            w.record("solve", lat)
        assert w.samples("solve") == [0.1, 0.2, 0.3]
        # the fourth sample evicts exactly the oldest, nothing else
        w.record("solve", 0.4)
        assert w.samples("solve") == [0.2, 0.3, 0.4]
        # count is lifetime-recorded, not window-resident
        assert w.count == 4

    def test_window_is_per_source(self):
        w = LatencyWindow(window=2)
        w.record("cache", 0.1)
        w.record("cache", 0.2)
        w.record("solve", 0.9)
        w.record("cache", 0.3)
        # cache evicted its own oldest; solve untouched
        assert w.samples("cache") == [0.2, 0.3]
        assert w.samples("solve") == [0.9]

    def test_merged_samples_ordering(self):
        # merged order: per-source insertion order, sources in
        # first-record order — the documented contract.
        w = LatencyWindow()
        w.record("cache", 0.1)
        w.record("solve", 0.9)
        w.record("cache", 0.2)
        w.record("solve", 0.8)
        assert w.samples(None) == [0.1, 0.2, 0.9, 0.8]
        assert w.samples() == w.samples(None)

    def test_unknown_source_empty(self):
        assert LatencyWindow().samples("nope") == []

    def test_recent_filters_by_timestamp(self):
        clock = FakeClock()
        w = LatencyWindow(clock=clock)
        w.record("solve", 0.1)
        clock.advance(10.0)
        w.record("solve", 0.2)
        clock.advance(10.0)
        w.record("cache", 0.3)
        rows = w.recent(15.0)
        assert rows == [("solve", 10.0, 0.2), ("cache", 20.0, 0.3)]
        # cutoff is inclusive: a sample exactly window_s old still counts
        assert ("solve", 0.0, 0.1) in w.recent(20.0)

    def test_recent_honours_explicit_now(self):
        clock = FakeClock()
        w = LatencyWindow(clock=clock)
        w.record("solve", 0.1)
        clock.advance(100.0)
        assert w.recent(1.0, now=0.5) == [("solve", 0.0, 0.1)]

    def test_summary_has_per_source_p50(self):
        w = LatencyWindow()
        w.record("cache", 0.1)
        w.record("solve", 0.5)
        row = w.summary()
        assert row["requests"] == 2
        assert row["p50_cache_s"] == 0.1
        assert row["p50_solve_s"] == 0.5
        assert row["p50_s"] in (0.1, 0.5)

    def test_summary_empty_is_nan(self):
        row = LatencyWindow().summary()
        assert row["requests"] == 0
        assert math.isnan(row["p50_s"])
        assert math.isnan(row["mean_s"])


class TestSloPolicy:
    def test_no_bounds_no_violations(self):
        assert SloPolicy().check({"p99_s": 99.0}) == []

    def test_p99_violation(self):
        policy = SloPolicy(p99_s=0.1)
        assert policy.check({"p99_s": 0.05}) == []
        violations = policy.check({"p99_s": 0.2})
        assert len(violations) == 1 and "p99_s" in violations[0]

    def test_hit_rate_floor(self):
        policy = SloPolicy(min_hit_rate=0.5)
        assert policy.check({"cache_hit_rate": 0.6}) == []
        assert len(policy.check({"cache_hit_rate": 0.4})) == 1

    def test_shed_fraction_ceiling(self):
        policy = SloPolicy(max_shed_fraction=0.1)
        assert policy.check({"offered": 100, "shed": 5}) == []
        assert len(policy.check({"offered": 100, "shed": 20})) == 1

    def test_missing_keys_ignored(self):
        policy = SloPolicy(p50_s=0.1, p99_s=0.1, min_hit_rate=0.5)
        assert policy.check({}) == []
