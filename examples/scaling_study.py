"""Weak-scaling study: reproduce the paper's scaling protocol end to end.

The paper's evaluation methodology in miniature: fix the number of vertices
per node, grow the machine from 2 to 64 simulated nodes (the paper: 32 to
32,768 Blue Gene/Q nodes at 2^23 vertices each), and track how each member
of the algorithm family scales on both R-MAT benchmark families. Also shows
how to sweep machine cost constants — e.g. what happens on a network with
10x the per-message latency.

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import MachineConfig, RMAT1, RMAT2
from repro.analysis.sweep import weak_scaling
from repro.util import format_table

NODE_COUNTS = (2, 8, 32)
VPR = 10  # log2(vertices per simulated node); the paper uses 23 on BG/Q

ALGORITHMS = [
    ("Del-25", "delta", 25),
    ("Prune-25", "prune", 25),
    ("OPT-25", "opt", 25),
    ("LB-OPT-25", "lb-opt", 25),
]


def family_study(params, name: str) -> None:
    rows = weak_scaling(
        NODE_COUNTS, params,
        vertices_per_rank_log2=VPR,
        algorithms=ALGORITHMS,
        threads_per_rank=16,
    )
    print(format_table(rows, f"weak scaling on {name}"))
    # scaling efficiency of the final algorithm
    series = [r["gteps"] for r in rows if r["algorithm"] == "LB-OPT-25"]
    eff = (series[-1] / series[0]) / (NODE_COUNTS[-1] / NODE_COUNTS[0])
    print(f"LB-OPT-25 weak-scaling efficiency "
          f"({NODE_COUNTS[0]}->{NODE_COUNTS[-1]} nodes): {eff:.0%}\n")


def network_sensitivity() -> None:
    """Same experiment on a higher-latency interconnect."""
    def slow_network(nodes: int) -> MachineConfig:
        base = MachineConfig(num_ranks=nodes, threads_per_rank=16)
        return replace(base, alpha=base.alpha * 10, t_allreduce_base=base.t_allreduce_base * 10)

    rows = weak_scaling(
        NODE_COUNTS, RMAT1,
        vertices_per_rank_log2=VPR,
        algorithms=[("Del-25", "delta", 25), ("OPT-25", "opt", 25)],
        machine_factory=slow_network,
    )
    print(format_table(rows, "10x network latency: hybridization matters more"))
    # With synchronization 10x more expensive, the phase-count reduction of
    # OPT buys relatively more than on the fast network.
    opt = [r["gteps"] for r in rows if r["algorithm"] == "OPT-25"]
    base = [r["gteps"] for r in rows if r["algorithm"] == "Del-25"]
    for nodes, o, b in zip(NODE_COUNTS, opt, base):
        print(f"  {nodes} nodes: OPT/Del = {o / b:.2f}x")


if __name__ == "__main__":
    family_study(RMAT1, "RMAT-1 (Graph 500 BFS parameters)")
    family_study(RMAT2, "RMAT-2 (proposed SSSP parameters)")
    network_sensitivity()
