"""Unit tests for the solve_sssp front-end."""

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.reference import DistanceMismatch, dijkstra_reference
from repro.core.solver import solve_sssp
from repro.runtime.machine import MachineConfig


class TestSolveSssp:
    def test_all_presets_validate(self, rmat1_small):
        for algo in (
            "dijkstra",
            "bellman-ford",
            "delta",
            "prune",
            "opt",
            "lb-opt",
            "lb-opt-split",
        ):
            res = solve_sssp(
                rmat1_small, 3, algorithm=algo, delta=25,
                num_ranks=4, threads_per_rank=2, validate=True,
            )
            assert res.num_vertices == rmat1_small.num_vertices

    def test_result_fields(self, rmat1_small):
        res = solve_sssp(rmat1_small, 3, algorithm="opt", num_ranks=2, threads_per_rank=2)
        assert res.num_edges == rmat1_small.num_undirected_edges
        assert res.gteps > 0
        assert res.cost.total_time > 0
        assert res.wall_time_s > 0
        assert res.root == 3
        assert res.algorithm == "opt-25"
        assert 0 < res.num_reached <= res.num_vertices

    def test_summary_keys(self, rmat1_small):
        row = solve_sssp(rmat1_small, 3, num_ranks=2, threads_per_rank=2).summary()
        assert {"algorithm", "gteps", "relaxations", "buckets", "time_s"} <= set(row)

    def test_explicit_config_overrides_preset(self, rmat1_small):
        cfg = SolverConfig(delta=10, use_hybrid=True)
        res = solve_sssp(
            rmat1_small, 3, algorithm="custom", config=cfg,
            num_ranks=2, threads_per_rank=2,
        )
        assert res.config.delta == 10
        assert res.algorithm == "custom"

    def test_explicit_machine(self, rmat1_small):
        m = MachineConfig(num_ranks=16, threads_per_rank=1)
        res = solve_sssp(rmat1_small, 3, machine=m)
        assert res.machine.num_ranks == 16

    def test_split_maps_distances_back(self):
        from repro.graph.rmat import rmat_graph

        g = rmat_graph(scale=8, seed=7)
        ref = dijkstra_reference(g, 11)
        res = solve_sssp(
            g, 11, algorithm="lb-opt-split", delta=25,
            num_ranks=4, threads_per_rank=2,
            config=None,
        )
        assert res.distances.shape == (g.num_vertices,)
        assert np.array_equal(res.distances, ref)

    def test_split_reports_proxies(self):
        from repro.graph.rmat import rmat_graph

        g = rmat_graph(scale=9, seed=7)
        cfg = SolverConfig(
            delta=25, use_ios=True, use_pruning=True, use_hybrid=True,
            intra_lb=True, inter_split=True, split_degree=32,
        )
        res = solve_sssp(g, 11, algorithm="split", config=cfg,
                         num_ranks=4, threads_per_rank=2, validate=True)
        assert res.num_proxies > 0
        # TEPS computed against the *original* edge count
        assert res.num_edges == g.num_undirected_edges

    def test_validate_raises_on_bug(self, rmat1_small, monkeypatch):
        # Corrupt the engine output to prove validation is live.
        from repro.core import delta_stepping

        original = delta_stepping.DeltaSteppingEngine.run

        def broken(self, root, **kwargs):
            d = original(self, root, **kwargs)
            d[d.argmax()] = 1
            return d

        monkeypatch.setattr(delta_stepping.DeltaSteppingEngine, "run", broken)
        with pytest.raises(DistanceMismatch):
            solve_sssp(rmat1_small, 3, validate=True, num_ranks=2, threads_per_rank=2)

    def test_structural_validation_accepts_correct_result(self, rmat1_small):
        res = solve_sssp(rmat1_small, 3, validate="structural",
                         num_ranks=2, threads_per_rank=2)
        assert res.distances[3] == 0

    def test_structural_validation_raises_on_bug(self, rmat1_small, monkeypatch):
        from repro.core import delta_stepping

        original = delta_stepping.DeltaSteppingEngine.run

        def broken(self, root, **kwargs):
            d = original(self, root, **kwargs)
            d[d.argmax()] = 1
            return d

        monkeypatch.setattr(delta_stepping.DeltaSteppingEngine, "run", broken)
        with pytest.raises(AssertionError, match="SSSP validation failed"):
            solve_sssp(rmat1_small, 3, validate="structural",
                       num_ranks=2, threads_per_rank=2)

    def test_unknown_validate_mode_rejected(self, rmat1_small):
        with pytest.raises(ValueError, match="unknown validate mode"):
            solve_sssp(rmat1_small, 3, validate="voodoo",
                       num_ranks=2, threads_per_rank=2)

    def test_deterministic_metrics(self, rmat1_small):
        a = solve_sssp(rmat1_small, 3, algorithm="opt", num_ranks=4, threads_per_rank=2)
        b = solve_sssp(rmat1_small, 3, algorithm="opt", num_ranks=4, threads_per_rank=2)
        assert a.metrics.summary() == b.metrics.summary()
        assert a.gteps == b.gteps

    def test_gteps_consistent_with_cost(self, rmat1_small):
        res = solve_sssp(rmat1_small, 3, num_ranks=2, threads_per_rank=2)
        assert res.gteps == pytest.approx(
            res.num_edges / res.cost.total_time / 1e9
        )


class TestPaperShapeOnSmallGraphs:
    """Coarse qualitative checks of the headline claims at test scale."""

    def test_opt_beats_baseline_delta(self, rmat1_small):
        base = solve_sssp(rmat1_small, 3, algorithm="delta", delta=25,
                          num_ranks=4, threads_per_rank=2)
        opt = solve_sssp(rmat1_small, 3, algorithm="opt", delta=25,
                         num_ranks=4, threads_per_rank=2)
        assert opt.gteps > base.gteps

    def test_pruning_cuts_relaxations(self, rmat1_small):
        base = solve_sssp(rmat1_small, 3, algorithm="delta", delta=25,
                          num_ranks=4, threads_per_rank=2)
        prune = solve_sssp(rmat1_small, 3, algorithm="prune", delta=25,
                           num_ranks=4, threads_per_rank=2)
        assert prune.metrics.total_relaxations < base.metrics.total_relaxations

    def test_hybrid_cuts_buckets(self, rmat2_small):
        prune = solve_sssp(rmat2_small, 3, algorithm="prune", delta=25,
                           num_ranks=4, threads_per_rank=2)
        opt = solve_sssp(rmat2_small, 3, algorithm="opt", delta=25,
                         num_ranks=4, threads_per_rank=2)
        assert opt.metrics.buckets_processed < prune.metrics.buckets_processed

    def test_dijkstra_relaxes_2m(self, rmat1_small):
        res = solve_sssp(rmat1_small, 3, algorithm="dijkstra",
                         num_ranks=2, threads_per_rank=2)
        assert res.metrics.total_relaxations == rmat1_small.num_arcs
