"""Run the Graph 500 SSSP benchmark protocol end to end.

The full official procedure at reproduction scale: generate the benchmark
graph, sample 64 search keys among non-isolated vertices, solve SSSP from
each, structurally validate every result (feasibility + tightness + tree
rules — no reference re-solve), and report the harmonic-mean TEPS, the
statistic the Graph 500 list ranks by.

Run:  python examples/graph500_run.py [scale]
"""

from __future__ import annotations

import sys

from repro.apps.graph500 import run_graph500
from repro.graph.rmat import RMAT2
from repro.util import format_table


def main(scale: int = 12) -> None:
    print(f"Graph 500 SSSP benchmark, scale {scale}, edge factor 16, "
          f"64 search keys, OPT-25 on 8x16 simulated machine\n")
    result = run_graph500(
        scale,
        params=RMAT2,             # the proposed SSSP benchmark parameters
        num_roots=64,
        algorithm="opt",
        delta=25,
        num_ranks=8,
        threads_per_rank=16,
        seed=0,
    )
    # A few per-root rows to show the spread, then the official summary.
    sample = result.per_root[:8]
    print(format_table(sample, "first 8 search keys"))
    print()
    print(format_table([result.summary()], "official summary"))
    if not result.all_valid:
        print("VALIDATION FAILED", file=sys.stderr)
        raise SystemExit(1)
    print(f"\nall {result.num_roots} results validated; "
          f"harmonic-mean simulated TEPS = {result.harmonic_mean_gteps:.3f} GTEPS")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
