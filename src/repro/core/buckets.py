"""Bucket bookkeeping for the Δ-stepping family.

Vertices live in buckets by tentative distance: bucket ``k`` holds vertices
with ``d in [kΔ, (k+1)Δ)`` (Section II-A). These helpers compute bucket
indices and membership masks vectorised over the whole distance array; the
engine charges the corresponding scan work separately.
"""

from __future__ import annotations

import numpy as np

from repro.core.distances import INF

__all__ = [
    "bucket_index",
    "bucket_members",
    "window_members",
    "next_bucket",
    "NO_BUCKET",
]

NO_BUCKET = -1
"""Returned by :func:`next_bucket` when only B-infinity remains."""


def bucket_index(d: np.ndarray, delta: int) -> np.ndarray:
    """Bucket index ``floor(d / Δ)`` per vertex (-1 for unreached)."""
    out = np.where(d < INF, d // delta, np.int64(NO_BUCKET))
    # np.where on int64 operands already yields int64: hand it back without
    # the silent full-array astype copy this function used to pay per call.
    assert out.dtype == np.int64
    return out


def window_members(
    d: np.ndarray, settled: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Unsettled vertices with ``d in [lo, hi)`` (sorted ids).

    The generalised membership scan: a Δ-bucket is the window
    ``[kΔ, (k+1)Δ)``; the radius/ρ strategies pick non-uniform windows.
    """
    mask = (d >= lo) & (d < hi) & ~settled
    return np.nonzero(mask)[0].astype(np.int64)


def bucket_members(
    d: np.ndarray, settled: np.ndarray, k: int, delta: int
) -> np.ndarray:
    """Unsettled vertices currently in bucket ``k`` (sorted ids)."""
    lo = k * delta
    return window_members(d, settled, lo, lo + delta)


def next_bucket(d: np.ndarray, settled: np.ndarray, delta: int) -> int:
    """Smallest bucket index holding an unsettled reached vertex.

    Returns :data:`NO_BUCKET` when every reached vertex is settled (the
    algorithm terminates: only B-infinity is non-empty).
    """
    mask = (d < INF) & ~settled
    if not mask.any():
        return NO_BUCKET
    return int(d[mask].min() // delta)
