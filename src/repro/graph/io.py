"""Graph persistence: npz round trip and edge-list text files.

Keeps the benchmark harness honest about graph identity across runs: a
generated graph can be saved once and reloaded bit-identically.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.builder import from_undirected_edges
from repro.graph.csr import CSRGraph

__all__ = ["save_npz", "load_npz", "write_edge_list", "read_edge_list"]


def save_npz(graph: CSRGraph, path: str | Path) -> None:
    """Save a graph to a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        indptr=graph.indptr,
        adj=graph.adj,
        weights=graph.weights,
        undirected=np.array([graph.undirected]),
    )


def _validate_csr_arrays(
    indptr: np.ndarray, adj: np.ndarray, weights: np.ndarray, origin: str
) -> None:
    """Reject structurally broken CSR arrays with a clear error."""
    if indptr.ndim != 1 or indptr.size < 1:
        raise ValueError(f"{origin}: indptr must be a 1-d array of size >= 1")
    n = indptr.size - 1
    if indptr[0] != 0:
        raise ValueError(f"{origin}: indptr[0] must be 0, got {indptr[0]}")
    if np.any(np.diff(indptr) < 0):
        raise ValueError(f"{origin}: indptr must be non-decreasing")
    if int(indptr[-1]) != adj.size:
        raise ValueError(
            f"{origin}: indptr is inconsistent with the adjacency array "
            f"(indptr[-1]={int(indptr[-1])}, {adj.size} arcs)"
        )
    if adj.size != weights.size:
        raise ValueError(
            f"{origin}: adjacency and weight arrays differ in length "
            f"({adj.size} vs {weights.size})"
        )
    if adj.size and (adj.min() < 0 or adj.max() >= n):
        raise ValueError(
            f"{origin}: arc endpoints out of range for {n} vertices "
            f"(min {int(adj.min())}, max {int(adj.max())})"
        )
    if weights.size and weights.min() < 0:
        raise ValueError(
            f"{origin}: negative edge weight {int(weights.min())} "
            "(shortest-path algorithms here require non-negative weights)"
        )


def load_npz(path: str | Path) -> CSRGraph:
    """Load a graph previously saved with :func:`save_npz`.

    Raises ``ValueError`` when the archive is missing one of the required
    keys (``indptr``/``adj``/``weights``/``undirected``) or its arrays are
    inconsistent (bad ``indptr``, out-of-range endpoints, negative
    weights).
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        missing = [
            key
            for key in ("indptr", "adj", "weights", "undirected")
            if key not in data.files
        ]
        if missing:
            raise ValueError(
                f"{path}: not a graph archive — missing keys {missing} "
                f"(found {sorted(data.files)})"
            )
        indptr = data["indptr"]
        adj = data["adj"]
        weights = data["weights"]
        undirected = data["undirected"]
    _validate_csr_arrays(indptr, adj, weights, str(path))
    if undirected.size != 1:
        raise ValueError(f"{path}: malformed 'undirected' flag")
    return CSRGraph(
        indptr=indptr,
        adj=adj,
        weights=weights,
        undirected=bool(undirected[0]),
    )


def write_edge_list(graph: CSRGraph, path: str | Path) -> int:
    """Write ``tail head weight`` lines (each undirected edge once).

    Returns the number of lines written.
    """
    tails, heads, weights = graph.to_edge_list()
    if graph.undirected:
        keep = tails < heads
        tails, heads, weights = tails[keep], heads[keep], weights[keep]
    arr = np.column_stack([tails, heads, weights])
    np.savetxt(Path(path), arr, fmt="%d")
    return int(arr.shape[0])


def read_edge_list(path: str | Path, num_vertices: int | None = None) -> CSRGraph:
    """Read an undirected ``tail head weight`` edge-list file.

    Raises ``ValueError`` on malformed rows, negative endpoints or weights,
    and endpoints outside ``[0, num_vertices)`` when ``num_vertices`` is
    given.
    """
    path = Path(path)
    arr = np.loadtxt(path, dtype=np.int64, ndmin=2)
    if arr.size == 0:
        tails = heads = weights = np.empty(0, dtype=np.int64)
    else:
        if arr.shape[1] != 3:
            raise ValueError(
                f"{path}: edge list must have three columns: tail head weight "
                f"(got {arr.shape[1]})"
            )
        tails, heads, weights = arr[:, 0], arr[:, 1], arr[:, 2]
    if tails.size:
        endpoints_min = int(min(tails.min(), heads.min()))
        if endpoints_min < 0:
            raise ValueError(f"{path}: negative vertex id {endpoints_min}")
        if weights.min() < 0:
            raise ValueError(
                f"{path}: negative edge weight {int(weights.min())} "
                "(shortest-path algorithms here require non-negative weights)"
            )
    if num_vertices is None:
        num_vertices = int(max(tails.max(initial=-1), heads.max(initial=-1)) + 1)
    elif tails.size:
        endpoints_max = int(max(tails.max(), heads.max()))
        if endpoints_max >= num_vertices:
            raise ValueError(
                f"{path}: endpoint {endpoints_max} out of range for "
                f"{num_vertices} vertices"
            )
    return from_undirected_edges(tails, heads, weights, num_vertices)
