"""Execution-trace extraction: the StepRecord stream as a priced timeline.

A run's :class:`~repro.runtime.metrics.Metrics` carries the raw event
stream; this module turns it into the per-event timeline that performance
debugging needs — each record priced by the cost model, with cumulative
simulated time — plus aggregations by phase kind and a compact text
rendering.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.costmodel import price_record
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import Metrics
from repro.util.tables import format_table

__all__ = ["timeline", "time_by_phase_kind", "render_timeline"]


def timeline(metrics: Metrics, machine: MachineConfig) -> list[dict[str, Any]]:
    """One row per step record, priced and time-stamped.

    Columns: ``step``, ``kind``, ``phase``, ``cost_s`` (the record's
    simulated duration) and ``t_s`` (cumulative simulated time at the end
    of the record). Each record is priced by
    :func:`~repro.runtime.costmodel.price_record` — the same rule
    :func:`~repro.runtime.costmodel.evaluate_cost` folds with — so the
    final ``t_s`` equals the cost model's total time by construction.
    """
    rows: list[dict[str, Any]] = []
    t = 0.0
    for i, rec in enumerate(metrics.records):
        cost = price_record(rec, machine)
        t += cost
        rows.append(
            {
                "step": i,
                "kind": rec.kind,
                "phase": rec.phase_kind,
                "cost_s": cost,
                "t_s": t,
            }
        )
    return rows


def time_by_phase_kind(
    metrics: Metrics, machine: MachineConfig
) -> dict[str, float]:
    """Simulated seconds per paper-level phase tag (short/long/bf/bucket)."""
    out: dict[str, float] = {}
    for row in timeline(metrics, machine):
        out[row["phase"]] = out.get(row["phase"], 0.0) + row["cost_s"]
    return out


def render_timeline(
    metrics: Metrics,
    machine: MachineConfig,
    *,
    top: int = 20,
) -> str:
    """Text rendering of the ``top`` most expensive records.

    A quick profiler view: where did the simulated time go?
    """
    rows = timeline(metrics, machine)
    total = rows[-1]["t_s"] if rows else 0.0
    expensive = sorted(rows, key=lambda r: r["cost_s"], reverse=True)[:top]
    title = (f"total simulated time: {total * 1e3:.3f} ms; "
             f"{len(rows)} records; top {len(expensive)} by cost:")
    table = [
        {
            "step": r["step"],
            "kind": r["kind"],
            "phase": r["phase"],
            "cost_us": r["cost_s"] * 1e6,
            "share": f"{(r['cost_s'] / total if total else 0.0):.1%}",
        }
        for r in expensive
    ]
    return format_table(table, title=title)
