"""Fig. 10(e)/(f) — Impact of load balancing on RMAT-1 scaling.

Without load balancing the OPT algorithm scales poorly on RMAT-1 (the hub
vertices concentrate work on single threads); the thread-level balancing of
LB-OPT recovers near-perfect weak scaling, improving GTEPS by 2-8x
depending on Δ. We sweep Δ ∈ {10, 25, 40} and both variants across the
weak-scaling range.
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    VERTICES_PER_RANK_LOG2,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
    run_algorithm,
)

DELTAS = (10, 25, 40)
NODE_COUNTS = (2, 8, 32)


@functools.lru_cache(maxsize=1)
def compute_rows():
    rows = []
    for nodes in NODE_COUNTS:
        scale = nodes.bit_length() - 1 + VERTICES_PER_RANK_LOG2
        graph = cached_rmat(scale, "rmat1")
        root = choose_root(graph, seed=0)
        machine = default_machine(nodes)
        for delta in DELTAS:
            plain = run_algorithm(graph, root, "opt", delta, machine)
            lb = run_algorithm(graph, root, "lb-opt", delta, machine)
            rows.append(
                {
                    "nodes": nodes,
                    "scale": scale,
                    "delta": delta,
                    "opt_gteps": plain.gteps,
                    "lb_opt_gteps": lb.gteps,
                    "speedup": lb.gteps / plain.gteps,
                }
            )
    return rows


def test_fig10ef_load_balance(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Fig. 10(e)/(f) — OPT vs LB-OPT on RMAT-1")
    # LB never hurts, and it visibly helps at the largest configuration.
    # The paper's 2-8x factor requires Blue Gene/Q-scale skew (max degrees
    # in the millions, Fig. 8); at reproduction scale the skew ratio is
    # ~10^2 instead of ~10^5, so the honest expectation is a consistent
    # but modest win that grows with scale (see EXPERIMENTS.md).
    assert all(r["speedup"] >= 0.95 for r in rows)
    largest = [r for r in rows if r["nodes"] == NODE_COUNTS[-1]]
    assert any(r["speedup"] > 1.04 for r in largest)
    # the advantage grows with scale
    smallest = [r for r in rows if r["nodes"] == NODE_COUNTS[0]]
    assert max(r["speedup"] for r in largest) > min(r["speedup"] for r in smallest)


def test_fig10f_lb_scaling_efficiency(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    # Weak-scaling efficiency of LB-OPT-25: GTEPS should keep growing with
    # the node count (the paper reports near-perfect scaling).
    series = [
        r["lb_opt_gteps"] for r in rows if r["delta"] == 25
    ]
    assert all(b > a for a, b in zip(series, series[1:]))


if __name__ == "__main__":
    print_table(compute_rows(), "Fig. 10(e)/(f) — OPT vs LB-OPT on RMAT-1")
