"""Simulated massively-parallel runtime.

The paper runs on Blue Gene/Q with SPI messaging and 64 threads per node.
This subpackage substitutes a *simulated* distributed machine (see DESIGN.md):

- :class:`repro.runtime.machine.MachineConfig` — machine shape (ranks,
  threads per rank) and calibrated cost constants;
- :class:`repro.runtime.metrics.Metrics` — exact counters for relaxations,
  phases, buckets, per-thread compute work and communication traffic;
- :class:`repro.runtime.comm.Communicator` — accounting layer every
  cross-rank byte must pass through;
- :mod:`repro.runtime.costmodel` — an α–β/LogP-style model that folds the
  counters into simulated seconds, the BktTime/OtherTime split of the
  paper's Fig. 10(b)/11(b), and simulated GTEPS.
"""

from repro.runtime.calibration import (
    CostCoefficients,
    calibrate,
    cost_coefficients,
    retime,
)
from repro.runtime.comm import Communicator
from repro.runtime.costmodel import CostBreakdown, evaluate_cost, simulated_gteps
from repro.runtime.guards import GuardViolation, InvariantGuards
from repro.runtime.machine import BGQ_LIKE, MachineConfig
from repro.runtime.metrics import ComputeKind, Metrics, StepRecord
from repro.runtime.watchdog import (
    DeadlineConfig,
    SolveTimeout,
    Watchdog,
)

__all__ = [
    "BGQ_LIKE",
    "Communicator",
    "ComputeKind",
    "CostBreakdown",
    "CostCoefficients",
    "DeadlineConfig",
    "GuardViolation",
    "InvariantGuards",
    "SolveTimeout",
    "Watchdog",
    "calibrate",
    "cost_coefficients",
    "retime",
    "MachineConfig",
    "Metrics",
    "StepRecord",
    "evaluate_cost",
    "simulated_gteps",
]
