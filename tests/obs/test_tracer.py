"""Unit tests for the span tracer: nesting, clocks, record attribution."""

import pytest

from repro.core.solver import solve_sssp
from repro.obs.tracer import Tracer, TraceConfig
from repro.runtime.costmodel import evaluate_cost
from repro.runtime.machine import MachineConfig


@pytest.fixture()
def machine():
    return MachineConfig(num_ranks=4, threads_per_rank=4)


@pytest.fixture()
def traced_run(rmat1_small, machine):
    res = solve_sssp(
        rmat1_small, 3, algorithm="opt", delta=25, machine=machine,
        trace=TraceConfig(path=None),
    )
    assert res.trace is not None and res.trace.finished
    return res


class TestConfig:
    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(format="xml")

    def test_bad_drift_threshold_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(drift_threshold=0.5)

    def test_disabled_config_means_no_tracer(self, rmat1_small, machine):
        res = solve_sssp(
            rmat1_small, 3, algorithm="opt", delta=25, machine=machine,
            trace=TraceConfig(enabled=False),
        )
        assert res.trace is None


class TestSpans:
    def test_parent_contains_children(self, traced_run):
        spans = [e for e in traced_run.trace.events if e["type"] == "span"]
        stack = []
        for span in spans:
            while stack and span["depth"] <= stack[-1]["depth"]:
                stack.pop()
            if stack:
                parent = stack[-1]
                assert span["ts"] >= parent["ts"]
                assert (
                    span["ts"] + span["dur"]
                    <= parent["ts"] + parent["dur"] + 1e-9
                )
            stack.append(span)

    def test_every_span_closed(self, traced_run):
        for span in traced_run.trace.events:
            if span["type"] == "span":
                assert span["dur"] is not None and span["dur"] >= 0
                assert span["sim_dur"] is not None and span["sim_dur"] >= 0

    def test_solve_span_is_root(self, traced_run):
        spans = [e for e in traced_run.trace.events if e["type"] == "span"]
        assert spans[0]["name"] == "solve"
        assert spans[0]["depth"] == 0
        assert spans[0]["args"]["engine"] == "core-delta"

    def test_end_closes_orphaned_children(self, machine):
        tr = Tracer(machine, TraceConfig())
        outer = tr.begin("outer")
        inner = tr.begin("inner")
        tr.end(outer)  # inner never explicitly ended
        assert inner["dur"] is not None
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-9

    def test_end_is_idempotent(self, machine):
        tr = Tracer(machine, TraceConfig())
        span = tr.begin("s")
        tr.end(span, marker=1)
        dur = span["dur"]
        tr.end(span, marker=2)
        assert span["dur"] == dur
        assert span["args"]["marker"] == 1

    def test_span_context_manager(self, machine):
        tr = Tracer(machine, TraceConfig())
        with tr.span("cm") as ev:
            pass
        assert ev["dur"] is not None


class TestClocks:
    def test_record_timestamps_monotone(self, traced_run):
        records = [e for e in traced_run.trace.events if e["type"] == "record"]
        assert records, "traced solve produced no records"
        for a, b in zip(records, records[1:]):
            assert b["ts"] >= a["ts"]
            assert b["sim_ts"] >= a["sim_ts"]
        for rec in records:
            assert rec["sim_dt"] >= 0
            assert rec["wall_dt"] >= 0

    def test_sim_clock_matches_cost_model(self, traced_run, machine):
        total = evaluate_cost(traced_run.metrics, machine).total_time
        assert traced_run.trace.sim_t == pytest.approx(total, rel=1e-12)

    def test_one_record_event_per_step_record(self, traced_run):
        records = [e for e in traced_run.trace.events if e["type"] == "record"]
        assert len(records) == len(traced_run.metrics.records)

    def test_rank_sim_has_one_entry_per_rank(self, traced_run, machine):
        for rec in traced_run.trace.events:
            if rec["type"] == "record":
                assert len(rec["rank_sim"]) == machine.num_ranks


class TestRegistryAndDrift:
    def test_counters_match_metrics(self, traced_run):
        snap = traced_run.trace.registry.snapshot()
        per_kind = [
            v for k, v in snap.items() if k.startswith("sssp_records_total{")
        ]
        assert sum(per_kind) == len(traced_run.metrics.records)
        assert snap["sssp_bytes_total"] == traced_run.metrics.total_bytes

    def test_summary_gauges_present(self, traced_run):
        snap = traced_run.trace.registry.snapshot()
        assert snap["sssp_relaxations"] == traced_run.metrics.total_relaxations
        assert snap["sssp_simulated_seconds"] == pytest.approx(
            traced_run.trace.sim_t
        )

    def test_drift_rows_cover_every_kind(self, traced_run):
        kinds = {
            e["kind"]
            for e in traced_run.trace.events
            if e["type"] == "record"
        }
        assert {r["kind"] for r in traced_run.trace.drift_rows} == kinds
