"""Inter-node load balancing by vertex splitting (Section III-E).

At extreme scales the degree skew of RMAT-1 graphs defeats thread-level
balancing: a single vertex's neighbourhood exceeds what one *node* can
process. The paper's remedy is graph surgery: a vertex ``u`` of extreme
degree is split into ``ℓ`` *proxies* ``u_1 … u_ℓ`` connected to ``u`` by
zero-weight edges, and ``u``'s original adjacency is partitioned across the
proxies. Shortest distances of original vertices are unchanged (any path
through ``u`` now detours through a zero-weight proxy hop), but the
neighbourhood work is spread over the ranks owning the proxies.

(The *intra*-node tier of the strategy — threads of a rank cooperating on
heavy vertices — does not change the graph and lives in
:func:`repro.runtime.work.thread_work_balanced`.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.builder import from_undirected_edges
from repro.graph.csr import CSRGraph

__all__ = ["SplitResult", "split_heavy_vertices"]


@dataclass(frozen=True)
class SplitResult:
    """Outcome of the proxy-splitting transform.

    ``new_id_of_original[v]`` locates original vertex ``v`` in the new
    graph; distances computed on :attr:`graph` are mapped back through it.
    """

    graph: CSRGraph
    new_id_of_original: np.ndarray
    num_split_vertices: int
    num_proxies: int

    def distances_for_original(self, d_new: np.ndarray) -> np.ndarray:
        """Project a distance array of the split graph onto original ids."""
        return np.asarray(d_new)[self.new_id_of_original]


def _occurrence_index(values: np.ndarray) -> np.ndarray:
    """Per-element running count of prior occurrences of the same value.

    ``[7, 3, 7, 7, 3] -> [0, 0, 1, 2, 1]``; used to deal incident edges of a
    heavy vertex round-robin into proxy groups without a Python loop.
    """
    if values.size == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    group_start = np.zeros(values.size, dtype=np.int64)
    new_group = np.empty(values.size, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_vals[1:], sorted_vals[:-1], out=new_group[1:])
    starts = np.nonzero(new_group)[0]
    counts = np.diff(np.append(starts, values.size))
    group_start = np.repeat(starts, counts)
    occ_sorted = np.arange(values.size, dtype=np.int64) - group_start
    occ = np.empty(values.size, dtype=np.int64)
    occ[order] = occ_sorted
    return occ


def split_heavy_vertices(
    graph: CSRGraph,
    threshold: int,
    *,
    shuffle: bool = True,
    seed: int = 0,
) -> SplitResult:
    """Split every vertex with degree > ``threshold`` into proxies.

    Each heavy vertex ``u`` receives ``ℓ = ceil(degree(u) / threshold)``
    proxies; its incident edges are dealt into groups of at most
    ``threshold`` and re-anchored on the proxies; ``u`` keeps only the
    ``ℓ`` zero-weight edges to its proxies. With ``shuffle=True`` (the
    default) all vertex ids of the new graph are relabelled with a seeded
    random permutation so the proxies scatter across block partitions —
    placing them is the entire point of the transform.
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    if not graph.undirected:
        raise ValueError("vertex splitting expects an undirected graph")
    n = graph.num_vertices
    deg = graph.degrees
    heavy_mask = deg > threshold
    heavy = np.nonzero(heavy_mask)[0].astype(np.int64)
    if heavy.size == 0:
        identity = np.arange(n, dtype=np.int64)
        return SplitResult(graph, identity, 0, 0)

    num_proxies_per = np.zeros(n, dtype=np.int64)
    num_proxies_per[heavy] = -(-deg[heavy] // threshold)  # ceil division
    proxy_base = np.zeros(n, dtype=np.int64)
    np.cumsum(num_proxies_per, out=proxy_base)
    total_proxies = int(proxy_base[-1])
    proxy_base = n + np.concatenate(([0], proxy_base[:-1]))

    # Undirected edge list, each edge once.
    tails, heads, weights = graph.to_edge_list()
    once = tails < heads
    tails, heads, weights = tails[once], heads[once], weights[once]

    # Re-anchor every appearance of a heavy endpoint onto one of its proxies.
    endpoints = np.concatenate([tails, heads])
    occ = _occurrence_index(endpoints)
    is_heavy_slot = heavy_mask[endpoints]
    new_endpoints = endpoints.copy()
    hv = endpoints[is_heavy_slot]
    new_endpoints[is_heavy_slot] = proxy_base[hv] + occ[is_heavy_slot] // threshold
    new_tails = new_endpoints[: tails.size]
    new_heads = new_endpoints[tails.size :]

    # Zero-weight spokes: u -- u_i for every proxy.
    spoke_tails = np.repeat(heavy, num_proxies_per[heavy])
    spoke_occ = _occurrence_index(spoke_tails)
    spoke_heads = proxy_base[spoke_tails] + spoke_occ
    spoke_weights = np.zeros(spoke_tails.size, dtype=np.int64)

    all_tails = np.concatenate([new_tails, spoke_tails])
    all_heads = np.concatenate([new_heads, spoke_heads])
    all_weights = np.concatenate([weights, spoke_weights])
    new_n = n + total_proxies

    if shuffle:
        rng = np.random.default_rng(seed)
        perm = rng.permutation(new_n).astype(np.int64)
        all_tails = perm[all_tails]
        all_heads = perm[all_heads]
        new_id_of_original = perm[:n]
    else:
        new_id_of_original = np.arange(n, dtype=np.int64)

    new_graph = from_undirected_edges(all_tails, all_heads, all_weights, new_n)
    return SplitResult(
        graph=new_graph,
        new_id_of_original=new_id_of_original,
        num_split_vertices=int(heavy.size),
        num_proxies=total_proxies,
    )
