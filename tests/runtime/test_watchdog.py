"""Deadline watchdog, timeout policies, and retry-storm termination."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import preset
from repro.core.solver import solve_sssp
from repro.graph.rmat import RMAT1, rmat_graph
from repro.runtime.machine import MachineConfig
from repro.runtime.watchdog import (
    DeadlineConfig,
    DeadlineExceeded,
    SolveTimeout,
    Watchdog,
)
from repro.spmd.engine import spmd_delta_stepping
from repro.spmd.faults import FaultPlan, RankStall, solve_with_faults


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=8, edge_factor=4, params=RMAT1, seed=7)


@pytest.fixture(scope="module")
def machine():
    return MachineConfig(num_ranks=4, threads_per_rank=2)


class TestUnit:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DeadlineConfig(max_supersteps=0)
        with pytest.raises(ValueError):
            DeadlineConfig(stall_patience=0)
        with pytest.raises(ValueError):
            DeadlineConfig(policy="panic")
        assert not DeadlineConfig().enabled
        assert DeadlineConfig(max_supersteps=5).enabled
        assert DeadlineConfig(stall_patience=5).enabled

    def test_budget_trips(self):
        wd = Watchdog(DeadlineConfig(max_supersteps=3))
        for i in range(3):
            wd.note_epoch(settled_total=i, relaxations=i)
        with pytest.raises(DeadlineExceeded, match="budget exhausted"):
            wd.note_epoch(settled_total=10, relaxations=10)

    def test_stall_trips_only_without_progress(self):
        wd = Watchdog(DeadlineConfig(stall_patience=2))
        # progress every step: never trips
        for i in range(10):
            wd.note_epoch(settled_total=i, relaxations=i)
        # two repeats of the same signature: trips
        wd.note_epoch(settled_total=100, relaxations=100)
        wd.note_epoch(settled_total=100, relaxations=100)
        with pytest.raises(DeadlineExceeded, match="no progress"):
            wd.note_epoch(settled_total=100, relaxations=100)

    def test_progress_resets_stall_counter(self):
        wd = Watchdog(DeadlineConfig(stall_patience=2))
        wd.note_epoch(settled_total=1, relaxations=1)
        wd.note_epoch(settled_total=1, relaxations=1)
        wd.note_epoch(settled_total=2, relaxations=3)  # progress
        assert wd.stalled_for == 0

    def test_recovery_rounds_burn_budget(self):
        wd = Watchdog(DeadlineConfig(max_supersteps=5))
        wd.note_epoch(settled_total=1, relaxations=1)
        with pytest.raises(DeadlineExceeded):
            for _ in range(10):
                wd.note_recovery_round()
        assert wd.supersteps == 6

    def test_recovery_rounds_count_as_stalled(self):
        wd = Watchdog(DeadlineConfig(stall_patience=4))
        with pytest.raises(DeadlineExceeded, match="no progress"):
            for _ in range(10):
                wd.note_recovery_round()


class TestSolveIntegration:
    def test_unbounded_deadline_is_noop(self, graph, machine):
        cfg = preset("opt", 25)
        d_ref, ctx_ref = spmd_delta_stepping(graph, 0, machine, config=cfg)
        d, ctx = spmd_delta_stepping(
            graph, 0, machine, config=cfg, deadline=DeadlineConfig(),
        )
        assert np.array_equal(d_ref, d)
        assert ctx_ref.metrics.summary() == ctx.metrics.summary()

    def test_generous_deadline_does_not_trip(self, graph, machine):
        d_ref, _ = spmd_delta_stepping(graph, 0, machine, delta=25)
        d, _ = spmd_delta_stepping(
            graph, 0, machine, delta=25,
            deadline=DeadlineConfig(max_supersteps=100_000),
        )
        assert np.array_equal(d_ref, d)

    def test_raise_policy_carries_partial_state(self, graph, machine, tmp_path):
        cfg = preset("opt", 25)
        with pytest.raises(SolveTimeout) as info:
            spmd_delta_stepping(
                graph, 0, machine, config=cfg, checkpoint_dir=tmp_path,
                deadline=DeadlineConfig(max_supersteps=2, policy="raise"),
            )
        exc = info.value
        assert exc.distances is not None
        assert exc.distances.shape == (graph.num_vertices,)
        assert exc.supersteps > 2
        assert exc.checkpoint_path is not None
        assert "resumable checkpoint" in str(exc)

    def test_raise_then_resume_is_exact(self, graph, machine, tmp_path):
        cfg = preset("opt", 25)
        d_ref, _ = spmd_delta_stepping(graph, 0, machine, config=cfg)
        with pytest.raises(SolveTimeout):
            spmd_delta_stepping(
                graph, 0, machine, config=cfg, checkpoint_dir=tmp_path,
                deadline=DeadlineConfig(max_supersteps=3, policy="raise"),
            )
        d_res, _ = spmd_delta_stepping(
            graph, 0, machine, config=cfg, checkpoint_dir=tmp_path,
            resume=True,
        )
        assert np.array_equal(d_ref, d_res)

    def test_degrade_policy_returns_exact_distances(self, graph, machine):
        cfg = preset("opt", 25)
        d_ref, _ = spmd_delta_stepping(graph, 0, machine, config=cfg)
        d, ctx = spmd_delta_stepping(
            graph, 0, machine, config=cfg,
            deadline=DeadlineConfig(max_supersteps=2, policy="degrade"),
        )
        assert np.array_equal(d_ref, d)
        assert ctx.metrics.degraded_to_bf
        assert ctx.metrics.recovery_bytes > 0  # BF pass charged to recovery

    def test_core_engine_timeout_and_degrade(self, graph, tmp_path):
        with pytest.raises(SolveTimeout):
            solve_sssp(graph, 0, algorithm="opt", num_ranks=4,
                       threads_per_rank=2, checkpoint_dir=tmp_path,
                       deadline=DeadlineConfig(max_supersteps=1))
        ref = solve_sssp(graph, 0, algorithm="opt", num_ranks=4,
                         threads_per_rank=2)
        deg = solve_sssp(
            graph, 0, algorithm="opt", num_ranks=4, threads_per_rank=2,
            deadline=DeadlineConfig(max_supersteps=1, policy="degrade"),
        )
        assert np.array_equal(ref.distances, deg.distances)
        assert deg.metrics.degraded_to_bf


class TestRetryStorm:
    """The adversarial case the watchdog exists for: a fault plan whose
    stall makes the reliable mailbox spin thousands of recovery rounds."""

    STORM = FaultPlan(seed=0, stalls=(RankStall(1, 3, 4000),))

    def test_storm_spins_without_watchdog(self, graph, machine):
        res = solve_with_faults(graph, 0, self.STORM, machine=machine,
                                config=preset("opt", 25))
        assert res.metrics.recovery.recovery_supersteps >= 4000

    def test_storm_raises_structured_timeout(self, graph, machine, tmp_path):
        with pytest.raises(SolveTimeout) as info:
            solve_with_faults(
                graph, 0, self.STORM, machine=machine,
                config=preset("opt", 25), checkpoint_dir=tmp_path,
                deadline=DeadlineConfig(max_supersteps=60, policy="raise"),
            )
        assert info.value.supersteps <= 70
        assert info.value.checkpoint_path is not None

    def test_storm_timeout_checkpoint_is_resumable(
        self, graph, machine, tmp_path
    ):
        cfg = preset("opt", 25)
        d_ref, _ = spmd_delta_stepping(graph, 0, machine, config=cfg)
        with pytest.raises(SolveTimeout):
            solve_with_faults(
                graph, 0, self.STORM, machine=machine, config=cfg,
                checkpoint_dir=tmp_path,
                deadline=DeadlineConfig(max_supersteps=60, policy="raise"),
            )
        # the operator clears the fault and resumes
        res = solve_with_faults(
            graph, 0, FaultPlan(), machine=machine, config=cfg,
            checkpoint_dir=tmp_path, resume=True, validate=True,
        )
        assert np.array_equal(d_ref, res.distances)

    def test_storm_degrades_to_exact_distances(self, graph, machine):
        cfg = preset("opt", 25)
        d_ref, _ = spmd_delta_stepping(graph, 0, machine, config=cfg)
        res = solve_with_faults(
            graph, 0, self.STORM, machine=machine, config=cfg,
            deadline=DeadlineConfig(max_supersteps=60, policy="degrade"),
        )
        assert np.array_equal(d_ref, res.distances)
        assert res.metrics.degraded_to_bf
        # the degrade pass terminated without burning the full storm
        assert res.metrics.recovery.recovery_supersteps < 4000
