"""Ablation — push/pull volume estimators and the imbalance term.

Section III-C describes a progression of decision heuristics: pure
communication volume (wrong for ~15 % of cases), volume + max-per-processor
requests (the paper's final, near-optimal heuristic), and two sketched
alternatives for the request count — binary search (our ``exact``) and
histograms. This ablation runs all four against the exhaustive oracle on
both families and tabulates decision quality.
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    BENCH_SCALE,
    cached_rmat,
    choose_roots,
    print_table,
)
from repro.analysis.oracle import evaluate_decision_sequences
from repro.core.config import SolverConfig

VARIANTS = [
    ("volume-only", {"pushpull_estimator": "expectation", "imbalance_weight": 0.0}),
    ("expectation", {"pushpull_estimator": "expectation"}),
    ("histogram", {"pushpull_estimator": "histogram"}),
    ("exact", {"pushpull_estimator": "exact"}),
]
NUM_ROOTS = 6
SCALE = BENCH_SCALE - 3


@functools.lru_cache(maxsize=1)
def compute_rows():
    rows = []
    for family in ("rmat1", "rmat2"):
        graph = cached_rmat(SCALE, family)
        roots = choose_roots(graph, NUM_ROOTS, seed=3)
        for label, overrides in VARIANTS:
            optimal = 0
            worst = 1.0
            for root in roots:
                cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                                   use_hybrid=True, **overrides)
                rep = evaluate_decision_sequences(
                    graph, int(root), config=cfg,
                    num_ranks=4, threads_per_rank=4,
                )
                optimal += rep.heuristic_is_optimal
                worst = max(worst, rep.slowdown_vs_best)
            rows.append(
                {
                    "family": family.upper(),
                    "estimator": label,
                    "optimal": f"{optimal}/{len(roots)}",
                    "optimal_count": optimal,
                    "worst_slowdown": worst,
                }
            )
    return rows


def test_ablation_estimator(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        [{k: v for k, v in r.items() if k != "optimal_count"} for r in rows],
        "Ablation — decision estimators vs exhaustive oracle",
    )
    by = {(r["family"], r["estimator"]): r for r in rows}
    for family in ("RMAT1", "RMAT2"):
        # the exact estimator is optimal everywhere (the IV-G claim)
        assert by[(family, "exact")]["optimal_count"] == NUM_ROOTS
        # richer estimators never do worse than the volume-only baseline
        assert (
            by[(family, "exact")]["optimal_count"]
            >= by[(family, "volume-only")]["optimal_count"]
        )
        assert (
            by[(family, "expectation")]["worst_slowdown"] < 1.5
        )


if __name__ == "__main__":
    print_table(compute_rows(), "Ablation — decision estimators")
