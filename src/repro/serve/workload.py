"""Synthetic query workloads: arrival processes and Zipf root popularity.

Serving benchmarks need traffic that looks like traffic. This module
generates deterministic (seeded) query streams with the two standard
load-generator shapes:

- **open loop** — requests arrive on a Poisson process at ``rate_qps``
  regardless of how the service is doing; this is what exposes queueing
  collapse and shed behavior under overload;
- **closed loop** — ``concurrency`` synchronous clients each wait for
  their answer before sending the next; this is what measures sustainable
  throughput.

Root popularity is Zipf-skewed over a bounded universe of candidate
roots (``p(k) ∝ 1/k^s``): a handful of hot roots dominate — the regime
where the distance cache earns its keep — while ``zipf_s=0`` degenerates
to uniform (the cache-hostile regime). :func:`run_workload` drives a
:class:`~repro.serve.broker.QueryBroker` with a spec and returns the
merged report.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.graph.roots import choose_roots
from repro.runtime.watchdog import SolveTimeout
from repro.serve.chaos import InjectedFault
from repro.serve.request import (
    ServiceOverload,
    ServiceUnavailable,
    SolveCorrupted,
)

#: Typed terminal outcomes a resilient/chaos run produces by design; the
#: workload counts them (via the broker's outcome accounting) instead of
#: treating them as harness failures.
_EXPECTED_ERRORS = (
    ServiceOverload,
    ServiceUnavailable,
    SolveTimeout,
    SolveCorrupted,
    InjectedFault,
)

__all__ = [
    "WorkloadSpec",
    "zipf_weights",
    "root_sequence",
    "interarrival_times",
    "run_workload",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """One synthetic query stream.

    ``arrival`` selects the loop shape (``"open"`` / ``"closed"``);
    ``zipf_s`` the popularity skew (0 = uniform); ``root_universe`` how
    many distinct candidate roots the stream draws from.
    """

    num_requests: int = 200
    arrival: str = "closed"
    rate_qps: float = 500.0
    concurrency: int = 4
    zipf_s: float = 1.1
    root_universe: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival not in ("open", "closed"):
            raise ValueError(
                f"unknown arrival process {self.arrival!r} "
                "(expected 'open' or 'closed')"
            )
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be > 0")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if self.root_universe < 1:
            raise ValueError("root_universe must be >= 1")

    def evolve(self, **changes) -> "WorkloadSpec":
        return replace(self, **changes)


def zipf_weights(k: int, s: float) -> np.ndarray:
    """Normalized Zipf probabilities ``p(rank) ∝ 1/rank^s`` for ranks 1..k."""
    ranks = np.arange(1, k + 1, dtype=np.float64)
    weights = ranks ** (-float(s))
    return weights / weights.sum()

def root_sequence(graph, spec: WorkloadSpec) -> np.ndarray:
    """The stream's root per request (``int64[num_requests]``).

    Candidates are non-isolated vertices (via
    :func:`~repro.graph.roots.choose_roots`); popularity rank is the
    candidate's position in that draw, so the same seed reproduces the
    same hot set.
    """
    universe = np.asarray(
        choose_roots(
            graph,
            min(spec.root_universe, max(int((graph.degrees > 0).sum()), 1)),
            seed=spec.seed,
        ),
        dtype=np.int64,
    )
    rng = np.random.default_rng(spec.seed + 1)
    p = zipf_weights(universe.size, spec.zipf_s)
    return rng.choice(universe, size=spec.num_requests, p=p)


def interarrival_times(spec: WorkloadSpec) -> np.ndarray:
    """Open-loop inter-arrival gaps in seconds (exponential, seeded)."""
    rng = np.random.default_rng(spec.seed + 2)
    return rng.exponential(1.0 / spec.rate_qps, size=spec.num_requests)


def run_workload(broker, spec: WorkloadSpec) -> dict:
    """Drive ``broker`` with the spec's stream; returns a report row.

    The report is the broker's :meth:`~repro.serve.broker.QueryBroker.
    report` restricted to this run (delta-based counters), plus the
    workload's own offered/shed/duration accounting. Shed requests
    (:class:`ServiceOverload`) are counted, not retried — the workload
    measures the service's overload policy rather than hiding it.
    """
    roots = root_sequence(broker.graph, spec)
    before = broker.report()
    t0 = time.perf_counter()
    if spec.arrival == "open":
        gaps = interarrival_times(spec)
        futures = []
        next_at = time.perf_counter()
        for i, root in enumerate(roots):
            next_at += gaps[i]
            pause = next_at - time.perf_counter()
            if pause > 0:
                time.sleep(pause)
            try:
                futures.append(broker.submit(int(root)))
            except ServiceOverload:
                pass  # counted by the broker; the stream does not retry
            if broker.manual:
                # Manual mode: interleave batch execution with arrivals.
                broker.process_once(block=False)
        broker.drain()
        for future in futures:
            try:
                future.result()
            except _EXPECTED_ERRORS:
                pass  # typed terminal outcome; counted by the broker
    else:
        # Closed loop: `concurrency` clients, each synchronous.
        chunks = np.array_split(roots, spec.concurrency)
        errors: list[BaseException] = []

        def client(chunk: np.ndarray) -> None:
            for root in chunk:
                try:
                    broker.query(int(root))
                except _EXPECTED_ERRORS:
                    pass  # typed terminal outcome; counted by the broker
                except BaseException as exc:  # surfaced after the join
                    errors.append(exc)

        if broker.manual and spec.concurrency == 1:
            client(roots)
        else:
            threads = [
                threading.Thread(target=client, args=(chunk,))
                for chunk in chunks
                if chunk.size
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if errors:
            raise errors[0]
    wall = time.perf_counter() - t0
    after = broker.report()
    completed = after["completed"] - before["completed"]
    report = dict(after)
    report.update(
        {
            "workload": spec.arrival,
            "zipf_s": spec.zipf_s,
            "root_universe": spec.root_universe,
            "offered": spec.num_requests,
            "completed": completed,
            "shed": after["shed"] - before["shed"],
            "wall_s": wall,
            "throughput_qps": completed / wall if wall > 0 else 0.0,
        }
    )
    return report
