"""Observability: span tracing, metrics registry, exporters, drift detection.

Pay-for-use telemetry for both engines. A run configured with a
:class:`~repro.obs.tracer.TraceConfig` (via ``SolverConfig.trace`` or the
``trace=`` keyword of the solver front-ends) records nested spans
(solve → bucket epoch → phase → superstep), per-record wall-clock and
simulated durations, a counters/gauges/histograms registry with Prometheus
text exposition, and a wall-time vs. cost-model drift report.  With tracing
off (the default) no hook executes: distances, metrics and simulated cost
are bit-identical to an uninstrumented run — the same discipline as the
invariant guards and the checkpoint layer.

Modules
-------
- :mod:`repro.obs.tracer` — :class:`TraceConfig`, :class:`Tracer`, spans.
- :mod:`repro.obs.registry` — :class:`MetricsRegistry` (Prometheus text,
  histogram exemplars).
- :mod:`repro.obs.request` — :class:`RequestContext` (request-scoped
  serving-plane context behind wide events, DESIGN.md §14).
- :mod:`repro.obs.burnrate` — :class:`BurnRateMonitor` (multi-window SLO
  burn-rate alerts over the serving latency window).
- :mod:`repro.obs.promcheck` — Prometheus text-exposition validator.
- :mod:`repro.obs.drift` — :class:`DriftMonitor` (wall vs. simulated).
- :mod:`repro.obs.export` — JSONL / Chrome-Perfetto / Prometheus writers.
- :mod:`repro.obs.report` — trace loading and the text report renderer.
"""

from repro.obs.burnrate import BurnAlert, BurnRateConfig, BurnRateMonitor
from repro.obs.drift import DriftMonitor
from repro.obs.registry import MetricsRegistry
from repro.obs.request import RequestContext
from repro.obs.tracer import TraceConfig, Tracer

__all__ = [
    "BurnAlert",
    "BurnRateConfig",
    "BurnRateMonitor",
    "DriftMonitor",
    "MetricsRegistry",
    "RequestContext",
    "TraceConfig",
    "Tracer",
]
