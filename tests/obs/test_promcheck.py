"""Unit tests for the in-tree Prometheus exposition validator."""

from repro.obs.promcheck import (
    check_file,
    check_text,
    main as promcheck_main,
    parse_sample,
)
from repro.obs.registry import MetricsRegistry


VALID = """\
# HELP requests_total requests by kind
# TYPE requests_total counter
requests_total{kind="short"} 3
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.01"} 1
lat_seconds_bucket{le="+Inf"} 2
lat_seconds_sum 0.5
lat_seconds_count 2
# TYPE temp gauge
temp -3.5
"""


class TestParseSample:
    def test_plain_sample(self):
        assert parse_sample("temp 1.5") == ("temp", {}, 1.5)

    def test_labelled_sample(self):
        name, labels, value = parse_sample('x_total{kind="a",n="b"} 2')
        assert name == "x_total"
        assert labels == {"kind": "a", "n": "b"}
        assert value == 2.0

    def test_escaped_label_values_accepted(self):
        parsed = parse_sample('x_total{p="a\\\\b\\"c\\nd"} 1')
        assert parsed is not None
        assert parsed[1]["p"] == 'a\\\\b\\"c\\nd'

    def test_unescaped_quote_rejected(self):
        # a raw quote inside the value means the pair can't be parsed
        assert parse_sample('x_total{p="a"b"} 1') is None

    def test_inf_value(self):
        assert parse_sample('b_bucket{le="+Inf"} 3')[2] == 3.0

    def test_malformed(self):
        assert parse_sample("just-a-name") is None
        assert parse_sample("x_total{unclosed 1") is None
        assert parse_sample("x_total notanumber") is None
        assert parse_sample("0leading_digit 1") is None


class TestCheckText:
    def test_valid_payload(self):
        assert check_text(VALID) == []

    def test_registry_output_is_valid(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", 2, kind="short", help="requests")
        reg.set_gauge("depth", 3)
        reg.observe("lat_seconds", 0.02, buckets=(0.01, 0.1))
        reg.observe("lat_seconds", 0.02, source='we"ird\\lab\nel')
        assert check_text(reg.prometheus_text()) == []

    def test_undeclared_sample(self):
        problems = check_text("mystery_total 1\n")
        assert any("no TYPE" in p for p in problems)

    def test_conflicting_type(self):
        text = (
            "# TYPE x_total counter\nx_total 1\n"
            "# TYPE x_total gauge\nx_total 2\n"
        )
        assert any("conflicting TYPE" in p for p in check_text(text))

    def test_unknown_type(self):
        assert any(
            "unknown TYPE" in p
            for p in check_text("# TYPE x_total widget\nx_total 1\n")
        )

    def test_negative_counter(self):
        text = "# TYPE x_total counter\nx_total -1\n"
        assert any("negative" in p for p in check_text(text))

    def test_histogram_missing_inf(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 1\nlat_sum 0.05\nlat_count 1\n'
        )
        assert any("+Inf" in p for p in check_text(text))

    def test_histogram_not_cumulative(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 5\nlat_bucket{le="+Inf"} 2\n'
            "lat_sum 0.1\nlat_count 2\n"
        )
        assert any("cumulative" in p for p in check_text(text))

    def test_histogram_count_mismatch(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="+Inf"} 2\nlat_sum 0.1\nlat_count 5\n'
        )
        assert any("_count" in p for p in check_text(text))

    def test_histogram_missing_sum_and_count(self):
        text = "# TYPE lat histogram\n" 'lat_bucket{le="+Inf"} 2\n'
        problems = check_text(text)
        assert any("_sum" in p for p in problems)
        assert any("_count" in p for p in problems)

    def test_unparseable_line_reported_with_lineno(self):
        problems = check_text("# TYPE x gauge\nx 1\n???\n")
        assert any(p.startswith("line 3:") for p in problems)


class TestCli:
    def test_ok_and_invalid_files(self, tmp_path, capsys):
        good = tmp_path / "good.prom"
        good.write_text(VALID)
        bad = tmp_path / "bad.prom"
        bad.write_text("mystery_total 1\n")
        assert check_file(str(good)) == []
        assert promcheck_main([str(good)]) == 0
        assert "OK" in capsys.readouterr().out
        assert promcheck_main([str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out and "no TYPE" in out
