"""Graph 500-style structural validation of SSSP results.

Recomputing distances with a reference solver is O(m log n); the Graph 500
specification instead validates a result *structurally* in O(m + n), which
also works at scales where a second solve is unaffordable. The rules
(adapted from the official BFS/SSSP validator):

1. the root has distance 0;
2. every edge ``{u, v}`` joins vertices whose distances differ by at most
   ``w(u, v)`` (tentative distances are a feasible potential);
3. an edge never joins a reached and an unreached vertex;
4. every reached non-root vertex has a *tight* incoming arc
   (``d[u] + w == d[v]``), i.e. distances are attained, not just feasible;
5. the parent tree derived from the tight arcs spans exactly the reached
   vertices.

Rules 2+4 together force ``d`` to equal the true shortest distances, so
this validator accepts exactly the correct arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distances import INF
from repro.core.paths import NO_PARENT, build_parent_tree
from repro.graph.csr import CSRGraph

__all__ = ["ValidationReport", "validate_sssp_structure"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of structural validation."""

    valid: bool
    num_reached: int
    tree_edges: int
    max_distance: int
    failures: tuple[str, ...] = ()

    def raise_if_invalid(self) -> None:
        if not self.valid:
            raise AssertionError(
                "SSSP validation failed: " + "; ".join(self.failures)
            )


def validate_sssp_structure(
    graph: CSRGraph, root: int, d: np.ndarray
) -> ValidationReport:
    """Run the structural validation rules; never raises on invalid input."""
    d = np.asarray(d, dtype=np.int64)
    failures: list[str] = []
    n = graph.num_vertices
    if d.shape != (n,):
        return ValidationReport(False, 0, 0, 0, ("shape mismatch",))

    # Rule 1: root at distance zero.
    if d[root] != 0:
        failures.append(f"root distance is {int(d[root])}, not 0")

    reached = d < INF
    tails = graph.arc_tails()
    heads = graph.adj
    weights = graph.weights

    # Rules 2+3: feasibility d[head] <= d[tail] + w over every arc with a
    # reached tail. An unreached head (d = INF) fails automatically, which
    # subsumes the "no edge joins reached and unreached" rule; on the
    # symmetric storage of undirected graphs the check covers both edge
    # directions.
    ft = reached[tails]
    slack_bad = ft & (d[heads] > d[tails] + weights)
    if slack_bad.any():
        i = int(np.nonzero(slack_bad)[0][0])
        if d[heads[i]] >= INF:
            failures.append(
                f"arc ({int(tails[i])}, {int(heads[i])}) leaves a reached "
                "vertex but its head is unreached"
            )
        else:
            failures.append(
                f"arc ({int(tails[i])}, {int(heads[i])}, w={int(weights[i])}) "
                f"violates feasibility: {int(d[tails[i]])} + w < {int(d[heads[i]])}"
            )

    # Rules 4+5: every reached non-root vertex has a tight incoming arc and
    # the induced tree spans the reached set.
    tree_edges = 0
    if not failures:
        try:
            parent = build_parent_tree(graph, d, root)
        except ValueError as exc:
            failures.append(str(exc))
        else:
            in_tree = parent != NO_PARENT
            tree_edges = int(in_tree.sum())
            expected = int(reached.sum()) - (1 if reached[root] else 0)
            if tree_edges != expected:
                failures.append(
                    f"parent tree has {tree_edges} edges, expected {expected}"
                )

    return ValidationReport(
        valid=not failures,
        num_reached=int(reached.sum()),
        tree_edges=tree_edges,
        max_distance=int(d[reached].max()) if reached.any() else 0,
        failures=tuple(failures),
    )
