"""Unit tests for the byte-budgeted LRU distance cache."""

import numpy as np
import pytest

from repro.obs.registry import MetricsRegistry
from repro.serve.cache import DistanceCache


def arr(n: int, fill: int = 0) -> np.ndarray:
    return np.full(n, fill, dtype=np.int64)


class TestLru:
    def test_get_hit_and_miss(self):
        cache = DistanceCache(1 << 20)
        assert cache.get(0) is None
        cache.put(0, arr(8))
        got = cache.get(0)
        assert got is not None
        assert np.array_equal(got, arr(8))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_order_and_refresh(self):
        cache = DistanceCache(1 << 20)
        for root in (1, 2, 3):
            cache.put(root, arr(4, root))
        assert cache.roots() == [1, 2, 3]
        cache.get(1)  # refreshes 1 to most-recently-used
        assert cache.roots() == [2, 3, 1]

    def test_eviction_respects_byte_budget(self):
        entry = arr(8)
        budget = 3 * entry.nbytes
        cache = DistanceCache(budget)
        for root in range(5):
            cache.put(root, arr(8, root))
        assert len(cache) == 3
        assert cache.stats.evictions == 2
        assert cache.stats.bytes_in_use <= budget
        # LRU victims: the oldest two inserts are gone
        assert cache.roots() == [2, 3, 4]
        assert cache.get(0) is None

    def test_reinsert_same_root_replaces(self):
        cache = DistanceCache(1 << 20)
        cache.put(7, arr(4, 1))
        cache.put(7, arr(4, 2))
        assert len(cache) == 1
        assert cache.stats.bytes_in_use == arr(4).nbytes
        assert cache.get(7)[0] == 2

    def test_oversize_entry_rejected(self):
        small = arr(2)
        cache = DistanceCache(small.nbytes)
        cache.put(0, small)
        assert not cache.put(1, arr(64))
        assert cache.stats.rejected == 1
        # the resident entry survives a rejected put
        assert 0 in cache
        assert 1 not in cache

    def test_zero_budget_disables_storage(self):
        cache = DistanceCache(0)
        assert not cache.put(0, arr(4))
        assert cache.get(0) is None
        assert cache.stats.rejected == 1
        assert len(cache) == 0

    def test_clear(self):
        cache = DistanceCache(1 << 20)
        cache.put(0, arr(4))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.bytes_in_use == 0


class TestContract:
    def test_stored_array_is_read_only_and_uncopied(self):
        cache = DistanceCache(1 << 20)
        original = arr(8, 5)
        cache.put(0, original)
        got = cache.get(0)
        assert got is original  # no copy: a hit is the solve's own output
        with pytest.raises(ValueError):
            got[0] = 99

    def test_peek_touches_nothing(self):
        cache = DistanceCache(1 << 20)
        cache.put(1, arr(4))
        cache.put(2, arr(4))
        before = (cache.stats.hits, cache.stats.misses)
        assert cache.peek(1) is not None
        assert cache.peek(99) is None
        assert (cache.stats.hits, cache.stats.misses) == before
        assert cache.roots() == [1, 2]  # LRU order unchanged

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            DistanceCache(-1)

    def test_registry_mirroring(self):
        registry = MetricsRegistry()
        cache = DistanceCache(arr(4).nbytes, registry=registry)
        cache.put(0, arr(4))
        cache.get(0)
        cache.get(1)
        cache.put(1, arr(4))  # evicts 0
        text = registry.prometheus_text()
        assert "serve_cache_hits_total 1" in text
        assert "serve_cache_misses_total 1" in text
        assert "serve_cache_evictions_total 1" in text
        assert "serve_cache_entries 1" in text
