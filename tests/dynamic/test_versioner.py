"""Snapshot lineage, digests, retention and context memoisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import preset
from repro.dynamic.updates import UpdateBatch, random_update_batch
from repro.dynamic.versioner import GraphVersioner, structural_digest
from repro.graph.rmat import rmat_graph
from repro.runtime.machine import MachineConfig


@pytest.fixture
def graph():
    return rmat_graph(7, seed=4)


@pytest.fixture
def versioner(graph):
    return GraphVersioner(
        graph,
        machine=MachineConfig(num_ranks=4, threads_per_rank=4),
        config=preset("opt", 25),
        retention=3,
    )


class TestStructuralDigest:
    def test_deterministic(self, graph):
        assert structural_digest(graph) == structural_digest(graph)

    def test_sensitive_to_any_change(self, graph, versioner):
        snap, _ = versioner.apply(
            random_update_batch(graph, np.random.default_rng(1))
        )
        assert structural_digest(snap.graph) != structural_digest(graph)

    def test_memoised_digest_matches_direct(self, graph, versioner):
        assert versioner.digest(0) == structural_digest(graph)


class TestLineage:
    def test_snapshot_zero_is_construction_graph(self, graph, versioner):
        assert versioner.current_id == 0
        assert versioner.current.graph is graph
        assert versioner.current.parent_id is None

    def test_apply_links_parent(self, graph, versioner):
        batch = random_update_batch(graph, np.random.default_rng(2))
        snap, retired = versioner.apply(batch)
        assert snap.snapshot_id == 1
        assert snap.parent_id == 0
        assert snap.batch is batch
        assert not snap.delta.is_empty
        assert retired == []
        assert versioner.current_id == 1

    def test_snapshots_are_immutable_lineage(self, graph, versioner):
        g0_digest = versioner.digest(0)
        rng = np.random.default_rng(3)
        versioner.apply(random_update_batch(graph, rng))
        versioner.apply(
            random_update_batch(versioner.current.graph, rng)
        )
        # Applying updates never perturbs an ancestor snapshot.
        assert versioner.digest(0) == g0_digest

    def test_empty_batch_still_mints_snapshot(self, versioner):
        snap, _ = versioner.apply(UpdateBatch.build())
        assert snap.snapshot_id == 1
        assert snap.delta.is_empty
        # Identical structure => identical digest, distinct identity.
        assert versioner.digest(1) == versioner.digest(0)


class TestRetention:
    def test_bounded_retention_retires_oldest(self, graph, versioner):
        rng = np.random.default_rng(5)
        retired_all = []
        for _ in range(5):
            _, retired = versioner.apply(
                random_update_batch(versioner.current.graph, rng)
            )
            retired_all.extend(retired)
        # retention=3: snapshots 3, 4, 5 resident; 0, 1, 2 retired in order.
        assert versioner.ids() == [3, 4, 5]
        assert retired_all == [0, 1, 2]
        assert 2 not in versioner
        with pytest.raises(KeyError, match="retention"):
            versioner.get(0)

    def test_retention_validated(self, graph):
        with pytest.raises(ValueError):
            GraphVersioner(graph, retention=0)


class TestContexts:
    def test_context_memoised_per_snapshot(self, versioner):
        ctx_a = versioner.context_for(0)
        assert versioner.context_for(0) is ctx_a
        snap, _ = versioner.apply(
            random_update_batch(
                versioner.current.graph, np.random.default_rng(6)
            )
        )
        ctx_b = versioner.context_for(snap.snapshot_id)
        assert ctx_b is not ctx_a
        assert ctx_b.graph is not ctx_a.graph

    def test_conflicting_override_raises(self, versioner):
        versioner.context_for(0)
        with pytest.raises(ValueError, match="different"):
            versioner.context_for(0, config=preset("rho"))

    def test_needs_machine_and_config(self, graph):
        bare = GraphVersioner(graph)
        with pytest.raises(ValueError, match="machine and config"):
            bare.context_for(0)
