"""Unit tests for the machine model."""

import math

import pytest

from repro.runtime.machine import BGQ_LIKE, MachineConfig


class TestMachineConfig:
    def test_defaults(self):
        m = MachineConfig(num_ranks=4)
        assert m.threads_per_rank == 64
        assert m.total_threads == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(num_ranks=0)
        with pytest.raises(ValueError):
            MachineConfig(num_ranks=1, threads_per_rank=0)
        with pytest.raises(ValueError):
            MachineConfig(num_ranks=1, alpha=-1)

    def test_allreduce_time_grows_with_ranks(self):
        t2 = MachineConfig(num_ranks=2).allreduce_time()
        t1024 = MachineConfig(num_ranks=1024).allreduce_time()
        assert t1024 > t2

    def test_allreduce_log_formula(self):
        m = MachineConfig(num_ranks=16)
        expected = m.t_allreduce_base + m.t_allreduce_log * math.log2(16)
        assert m.allreduce_time() == pytest.approx(expected)

    def test_allreduce_single_rank_uses_log2_floor(self):
        m = MachineConfig(num_ranks=1)
        # clamps to log2(2) to keep a positive base cost
        assert m.allreduce_time() > 0

    def test_with_ranks_preserves_constants(self):
        m = MachineConfig(num_ranks=4, alpha=7e-6)
        m2 = m.with_ranks(128)
        assert m2.num_ranks == 128
        assert m2.alpha == 7e-6
        assert m2.threads_per_rank == m.threads_per_rank

    def test_bgq_like_factory(self):
        m = BGQ_LIKE(16)
        assert m.num_ranks == 16 and m.threads_per_rank == 64

    def test_frozen(self):
        m = MachineConfig(num_ranks=2)
        with pytest.raises(Exception):
            m.num_ranks = 5
