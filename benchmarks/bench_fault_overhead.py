"""Fault-tolerance overhead of the self-healing SPMD engine.

The recovery layer (DESIGN.md §7) promises two things: zero overhead when
no faults are injected, and bit-identical distances at a measurable cost
when they are. This bench quantifies the cost side: for a ladder of fault
plans — from a perfect wire through record loss/duplication/reordering up
to a rank crash — it reports the recovery supersteps, retransmissions,
recovery-phase traffic and the simulated-time overhead relative to the
fault-free SPMD run, and asserts the distances never drift.
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.common import (
    BENCH_SCALE,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
)
from repro.spmd.faults import FaultPlan, RankCrash, RankStall, solve_with_faults

SCALE = BENCH_SCALE - 3  # self-healing sweeps are whole-graph BF iterations
NUM_RANKS = 8

PLANS: list[tuple[str, FaultPlan | None]] = [
    ("fault-free", None),
    ("empty plan", FaultPlan()),
    ("loss 2%", FaultPlan(seed=11, loss_rate=0.02)),
    ("loss 10%", FaultPlan(seed=11, loss_rate=0.10)),
    ("dup 5%", FaultPlan(seed=11, dup_rate=0.05)),
    ("reorder 20%", FaultPlan(seed=11, reorder_rate=0.20)),
    ("delay 5%", FaultPlan(seed=11, delay_rate=0.05)),
    (
        "loss+dup+delay",
        FaultPlan(seed=11, loss_rate=0.05, dup_rate=0.02, delay_rate=0.02),
    ),
    ("crash r1@4", FaultPlan(seed=11, crashes=(RankCrash(1, 4),))),
    ("stall r2@3x3", FaultPlan(seed=11, stalls=(RankStall(2, 3, 3),))),
]


@functools.lru_cache(maxsize=1)
def compute_rows():
    graph = cached_rmat(SCALE, "rmat1")
    root = choose_root(graph, seed=3)
    machine = default_machine(NUM_RANKS, 8)

    baseline = solve_with_faults(
        graph, root, FaultPlan(), machine=machine, validate="structural"
    )
    base_time = baseline.cost.total_time
    base_d = baseline.distances

    rows = []
    for label, plan in PLANS:
        if plan is None:
            # True fault-free path: plain mailbox, no recovery machinery.
            from repro.core.solver import solve_sssp

            res = solve_sssp(
                graph, root, algorithm="delta", delta=25, machine=machine
            )
        else:
            res = solve_with_faults(
                graph, root, plan, machine=machine, validate="structural"
            )
        assert np.array_equal(res.distances, base_d), label
        rec = res.metrics.recovery
        rows.append(
            {
                "plan": label,
                "time_s": res.cost.total_time,
                "overhead": res.cost.total_time / base_time - 1.0,
                "rec_steps": rec.recovery_supersteps,
                "retries": rec.retries,
                "resent_B": rec.retransmitted_bytes,
                "rec_bytes": res.metrics.recovery_bytes,
                "rec_phases": res.metrics.recovery_phases,
                "restarts": rec.rank_restarts,
                "sweeps": rec.healing_sweeps,
            }
        )
    return rows


def test_fault_overhead(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "fault-tolerance overhead (distances bit-identical)")
    by_plan = {row["plan"]: row for row in rows}
    # A perfect wire costs nothing: no recovery traffic, no extra supersteps.
    for label in ("fault-free", "empty plan"):
        assert by_plan[label]["rec_bytes"] == 0
        assert by_plan[label]["rec_steps"] == 0
    # Injected faults show up as measurable recovery work.
    assert by_plan["loss 10%"]["retries"] > 0
    assert by_plan["loss 10%"]["rec_bytes"] > 0
    assert by_plan["crash r1@4"]["restarts"] >= 1
    # More loss costs more recovery traffic.
    assert by_plan["loss 10%"]["resent_B"] > by_plan["loss 2%"]["resent_B"]


if __name__ == "__main__":
    print_table(compute_rows(), "fault-tolerance overhead")
