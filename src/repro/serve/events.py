"""Wide events: one structured record per completed request (DESIGN.md §14).

A *wide event* is the serving plane's unit of observability: instead of
scattering a request's story across a dozen counters and log lines, the
broker folds the :class:`~repro.obs.request.RequestContext` it threaded
through every layer into **one** JSON object at terminal completion —
admission verdict, cache tier, batch ids and queue waits, every solve
attempt with its breaker decision and chaos draw, the degradation tier,
the final outcome/source and wall latency. The journey harness
reconciles these against tracer spans, registry counters and the SLO
window; ``serve-top`` tails them for its "recent requests" pane.

Determinism contract: under a seeded chaos plan and deterministic
submission order (manual broker or one closed-loop client), the event
stream is **replay-identical** — :func:`canonical_text` strips the
``timing`` subtree (the only nondeterministic fields) and sorts by
request id, and CI diffs the canonical text of two identically-seeded
runs byte for byte (``python -m repro.serve.events FILE --canonical``).

Zero-cost when disabled: the broker only mints request contexts when an
event log (or tracer) is attached, so the disabled path adds a single
``is None`` check per decision site.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterable

__all__ = [
    "WideEventLog",
    "canonical_event",
    "canonical_text",
    "read_events",
]

#: Fields excluded from the replay-identity comparison: wall timings are
#: the only nondeterministic part of an event.
TIMING_KEY = "timing"


def canonical_event(event: dict[str, Any]) -> dict[str, Any]:
    """The replay-comparable form of one event (timing stripped)."""
    return {k: v for k, v in event.items() if k != TIMING_KEY}


def canonical_text(events: Iterable[dict[str, Any]]) -> str:
    """Deterministic text rendering of an event stream.

    Events are sorted by request id (completion *order* may vary with
    thread scheduling; the *set* of events and their decision fields may
    not), timing is stripped, and keys are serialised sorted — so two
    replays of the same seed produce byte-identical output.
    """
    rows = sorted(
        (canonical_event(e) for e in events),
        key=lambda e: e.get("request_id", ""),
    )
    return "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)


def read_events(path: str) -> list[dict[str, Any]]:
    """Load a wide-event JSONL file."""
    events: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


class WideEventLog:
    """In-memory sink for wide events, flushed to JSONL on demand.

    Thread-safe on ``emit`` (batch workers complete requests
    concurrently). ``tail(n)`` serves the dashboard's recent-request
    pane without copying the whole stream.
    """

    def __init__(self, path: str | None = None, *, capacity: int | None = None):
        self.path = path
        self._capacity = capacity
        self._events: list[dict[str, Any]] = []
        self._emitted = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def emitted(self) -> int:
        """Total events emitted (monotone; unaffected by capacity)."""
        with self._lock:
            return self._emitted

    def emit(self, event: dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)
            self._emitted += 1
            if self._capacity is not None and len(self._events) > self._capacity:
                del self._events[: len(self._events) - self._capacity]

    def events(self) -> list[dict[str, Any]]:
        """A snapshot copy of the retained events."""
        with self._lock:
            return list(self._events)

    def tail(self, n: int) -> list[dict[str, Any]]:
        """The ``n`` most recently emitted retained events."""
        with self._lock:
            return list(self._events[-n:]) if n > 0 else []

    def canonical_text(self) -> str:
        """Replay-comparable rendering of the retained stream."""
        return canonical_text(self.events())

    def write(self, path: str | None = None) -> str:
        """Flush the retained events as JSONL; returns the path written."""
        target = path or self.path
        if target is None:
            raise ValueError("no path configured for wide-event log")
        rows = self.events()
        with open(target, "w", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        return target


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.serve.events FILE [--canonical]``

    With ``--canonical``, print the replay-comparable form (CI diffs two
    of these byte for byte). Without, pretty-print a per-request summary
    table for eyeballing a run.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.serve.events", description="inspect a wide-event stream"
    )
    parser.add_argument("path", help="wide-event JSONL file")
    parser.add_argument(
        "--canonical",
        action="store_true",
        help="emit the canonical replay-comparable form (sorted, timing stripped)",
    )
    args = parser.parse_args(argv)
    events = read_events(args.path)
    if args.canonical:
        print(canonical_text(events), end="")
        return 0
    print(f"{len(events)} wide events")
    for ev in events:
        attempts = ev.get("attempts", [])
        draws = [a.get("draw") for a in attempts if a.get("draw")]
        lat = ev.get(TIMING_KEY, {}).get("latency_s", 0.0)
        print(
            f"  {ev.get('request_id')} root={ev.get('root')} "
            f"outcome={ev.get('outcome')} source={ev.get('source')} "
            f"cache={ev.get('cache_tier')} attempts={len(attempts)} "
            f"draws={draws or '-'} latency={lat * 1e3:.2f}ms"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover — exercised via CLI tests
    raise SystemExit(main())
