"""Overhead of the defensive execution layer (DESIGN.md §8).

The defense layer promises that every knob is pay-for-use: with guards
off, no deadline and no checkpoint directory, the solver must behave
*identically* — same distances, same metric records, same simulated
cost. With ``paranoid`` guards on, the simulated cost must still be
identical (guards never touch the cost model or the wire) and only the
host-side wall time may grow. Durable checkpoints add wall time and
disk I/O but, again, no simulated cost.

This bench quantifies those three regimes side by side and asserts the
zero-overhead claims structurally rather than by timing alone.
"""

from __future__ import annotations

import functools
import tempfile
import time

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from benchmarks.common import (
    BENCH_SCALE,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
)
from repro.core.solver import solve_sssp

SCALE = BENCH_SCALE - 2
NUM_RANKS = 8
REPEATS = 3


def _timed_solve(graph, root, machine, **kwargs):
    best = None
    res = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        res = solve_sssp(
            graph, root, algorithm="opt", delta=25, machine=machine, **kwargs
        )
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return res, best


@functools.lru_cache(maxsize=1)
def compute_rows():
    graph = cached_rmat(SCALE, "rmat1")
    root = choose_root(graph, seed=3)
    machine = default_machine(NUM_RANKS, 8)

    base, base_wall = _timed_solve(graph, root, machine)
    par, par_wall = _timed_solve(graph, root, machine, paranoid=True)
    with tempfile.TemporaryDirectory() as ckdir:
        ck, ck_wall = _timed_solve(graph, root, machine, checkpoint_dir=ckdir)

    # Zero-overhead claims, asserted structurally.
    for res, label in ((par, "paranoid"), (ck, "checkpointed")):
        assert np.array_equal(base.distances, res.distances), label
        assert base.metrics.summary() == res.metrics.summary(), label
        assert base.cost.total_time == res.cost.total_time, label

    rows = []
    for label, res, wall in (
        ("baseline", base, base_wall),
        ("paranoid guards", par, par_wall),
        ("checkpoint every epoch", ck, ck_wall),
    ):
        rows.append(
            {
                "mode": label,
                "wall_s": wall,
                "wall_x": wall / base_wall,
                "sim_time_s": res.cost.total_time,
                "guard_checks": res.guards.checks if res.guards else 0,
                "violations": res.guards.violations if res.guards else 0,
            }
        )
    return rows


def test_guard_overhead(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "defense-layer overhead (simulated cost identical)")
    by_mode = {row["mode"]: row for row in rows}
    # Guards actually ran in paranoid mode and found nothing.
    assert by_mode["paranoid guards"]["guard_checks"] > 0
    assert by_mode["paranoid guards"]["violations"] == 0
    # Disabled guards never execute a check.
    assert by_mode["baseline"]["guard_checks"] == 0
    # The simulated cost model is untouched by every defense knob.
    sims = {row["sim_time_s"] for row in rows}
    assert len(sims) == 1


if __name__ == "__main__":
    print_table(compute_rows(), "defense-layer overhead")
