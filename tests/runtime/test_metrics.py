"""Unit tests for the execution counters."""

import numpy as np
import pytest

from repro.runtime.metrics import ComputeKind, Metrics


def fresh() -> Metrics:
    return Metrics(num_ranks=2, threads_per_rank=2)


class TestAddCompute:
    def test_relax_kind_counts(self):
        m = fresh()
        m.add_compute(ComputeKind.SHORT_RELAX, np.array([1.0, 2.0, 3.0, 4.0]))
        assert m.total_relaxations == 10
        assert m.relaxations_by_kind() == {"short_relax": 10}

    def test_scan_kind_not_counted_as_relax(self):
        m = fresh()
        m.add_compute(ComputeKind.BUCKET_SCAN, np.ones(4))
        assert m.total_relaxations == 0

    def test_explicit_count_override(self):
        m = fresh()
        m.add_compute(
            ComputeKind.SHORT_RELAX, np.ones(4), count_as_relax=False
        )
        assert m.total_relaxations == 0
        m.add_compute(ComputeKind.BUCKET_SCAN, np.ones(4), count_as_relax=True)
        assert m.total_relaxations == 4

    def test_record_max_and_total(self):
        m = fresh()
        m.add_compute(ComputeKind.BF_RELAX, np.array([1.0, 5.0, 0.0, 2.0]))
        rec = m.records[-1]
        assert rec.comp_max == 5.0
        assert rec.comp_total == 8.0

    def test_wrong_size_rejected(self):
        m = fresh()
        with pytest.raises(ValueError, match="4 entries"):
            m.add_compute(ComputeKind.BF_RELAX, np.ones(3))

    def test_accumulation_across_records(self):
        m = fresh()
        m.add_compute(ComputeKind.BF_RELAX, np.ones(4))
        m.add_compute(ComputeKind.BF_RELAX, np.ones(4))
        assert m.total_relaxations == 8


class TestExchangeAndAllreduce:
    def test_exchange_records_max_and_total(self):
        m = fresh()
        m.add_exchange(np.array([1, 3]), np.array([100, 60]))
        rec = m.records[-1]
        assert rec.msgs_max == 3
        assert rec.bytes_max == 100
        # bytes counted at both endpoints -> total halves the per-rank sum
        assert rec.bytes_total == 80
        assert m.total_bytes == 80

    def test_allreduce_counted(self):
        m = fresh()
        m.add_allreduce(3)
        assert m.total_allreduces == 3


class TestPhasesAndBuckets:
    def test_phase_kinds(self):
        m = fresh()
        m.note_phase("short", 10)
        m.note_phase("short", 5)
        m.note_phase("long", 100)
        m.note_phase("bf", 7)
        assert m.short_phases == 2
        assert m.long_phases == 1
        assert m.bf_phases == 1
        assert m.total_phases == 4
        assert m.per_phase_relaxations == [
            ("short", 10),
            ("short", 5),
            ("long", 100),
            ("bf", 7),
        ]

    def test_unknown_phase_kind(self):
        with pytest.raises(ValueError):
            fresh().note_phase("weird", 0)

    def test_bucket_modes(self):
        m = fresh()
        m.note_bucket({"mode": "push"})
        m.note_bucket({"mode": "pull"})
        m.note_bucket({"mode": "pull"})
        assert m.buckets_processed == 3
        assert m.push_buckets == 1
        assert m.pull_buckets == 2

    def test_summary_keys(self):
        s = fresh().summary()
        assert {
            "relaxations",
            "phases",
            "buckets",
            "bytes",
            "allreduces",
            "push_buckets",
            "pull_buckets",
            "hybrid_switch_bucket",
            "degraded",
        } <= set(s)

    def test_summary_surfaces_hybrid_switch_and_degraded(self):
        m = fresh()
        assert m.summary()["hybrid_switch_bucket"] == -1
        assert m.summary()["degraded"] is False
        m.hybrid_switch_bucket = 7
        m.degraded_to_bf = True
        s = m.summary()
        assert s["hybrid_switch_bucket"] == 7
        assert s["degraded"] is True
