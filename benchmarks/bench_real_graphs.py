"""Section IV-H — Real-life social graphs: Del-40 vs Opt-40.

The paper reports ~2x improvement of OPT over baseline Δ-stepping (both at
Δ=40) on Friendster, Orkut and LiveJournal, plus a Friendster scaling study
(OPT 40 GTEPS vs baseline 20 GTEPS at 1,024 nodes). SNAP downloads are not
available offline, so synthetic stand-ins with matched degree statistics
substitute (see DESIGN.md); the degree skew driving the 2x result is
preserved.
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import choose_root, default_machine, print_table, run_algorithm
from repro.graph.social import synthetic_social_graph

PAPER = {
    "friendster": {"del40": 1.8, "opt40": 4.3},
    "orkut": {"del40": 2.1, "opt40": 4.6},
    "livejournal": {"del40": 1.1, "opt40": 2.2},
}

SCALE = 13
SCALING_NODES = (2, 4, 8, 16)


@functools.lru_cache(maxsize=1)
def graphs():
    return {
        name: synthetic_social_graph(name, scale=SCALE, seed=7).sorted_by_weight()
        for name in PAPER
    }


@functools.lru_cache(maxsize=1)
def compute_rows():
    machine = default_machine(8)
    rows = []
    for name, graph in graphs().items():
        root = choose_root(graph, seed=0)
        base = run_algorithm(graph, root, "delta", 40, machine)
        opt = run_algorithm(graph, root, "lb-opt", 40, machine)
        rows.append(
            {
                "graph": name,
                "n": graph.num_vertices,
                "m": graph.num_undirected_edges,
                "del40_gteps": base.gteps,
                "opt40_gteps": opt.gteps,
                "speedup": opt.gteps / base.gteps,
                "paper_speedup": PAPER[name]["opt40"] / PAPER[name]["del40"],
            }
        )
    return rows


@functools.lru_cache(maxsize=1)
def compute_scaling_rows():
    graph = graphs()["friendster"]
    root = choose_root(graph, seed=0)
    rows = []
    for nodes in SCALING_NODES:
        machine = default_machine(nodes)
        base = run_algorithm(graph, root, "delta", 40, machine)
        opt = run_algorithm(graph, root, "lb-opt", 40, machine)
        rows.append(
            {
                "nodes": nodes,
                "del40_gteps": base.gteps,
                "opt40_gteps": opt.gteps,
                "speedup": opt.gteps / base.gteps,
            }
        )
    return rows


def test_real_graphs_table(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Sec. IV-H — social graphs: Del-40 vs Opt-40 (stand-ins)")
    # OPT ≈ 2x over the baseline on every social graph (paper's headline);
    # allow the flatter LiveJournal stand-in some slack.
    for row in rows:
        assert row["speedup"] > 1.25
    assert max(row["speedup"] for row in rows) > 1.8


def test_friendster_scaling(benchmark):
    rows = benchmark.pedantic(compute_scaling_rows, rounds=1, iterations=1)
    print_table(rows, "Sec. IV-H — Friendster stand-in scaling study")
    # OPT stays ahead of the baseline across the whole range
    assert all(r["speedup"] > 1.2 for r in rows)
    # and scales: GTEPS grows with the node count (strong scaling here:
    # fixed graph, growing machine)
    series = [r["opt40_gteps"] for r in rows]
    assert series[-1] > series[0]


if __name__ == "__main__":
    print_table(compute_rows(), "Sec. IV-H — social graphs (stand-ins)")
    print_table(compute_scaling_rows(), "Sec. IV-H — Friendster scaling")
