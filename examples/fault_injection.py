"""Fault injection: break the wire, recover the exact answer.

Runs the self-healing SPMD engine (DESIGN.md §7) under increasingly hostile
fault plans — record loss, duplication, reordering, delayed delivery, and a
whole-rank crash — and shows that the recovered distances are bit-identical
to the fault-free run while the recovery overhead (retransmissions, extra
supersteps, healing sweeps) is measured separately under the ``recovery``
phase.

Run:  python examples/fault_injection.py
"""

from __future__ import annotations

import numpy as np

from repro import rmat_graph
from repro.core.solver import solve_sssp
from repro.graph.roots import choose_root
from repro.spmd.faults import FaultPlan, RankCrash, solve_with_faults
from repro.util import format_table


def main() -> None:
    # 1. A scale-11 R-MAT graph and a simulated 8-node machine.
    graph = rmat_graph(scale=11, seed=7)
    root = choose_root(graph, seed=0)
    print(f"graph: {graph}")
    print(f"root:  {root}")

    # 2. The fault-free answer (orchestrated engine, plain Δ-stepping).
    clean = solve_sssp(graph, root, algorithm="delta", delta=25, num_ranks=8)

    # 3. A ladder of fault plans. Every plan is fully deterministic: the
    #    same seed reproduces the same injected faults, record by record.
    plans = [
        ("perfect wire", FaultPlan()),
        ("5% record loss", FaultPlan(seed=1, loss_rate=0.05)),
        ("5% duplication", FaultPlan(seed=1, dup_rate=0.05)),
        ("20% reordering", FaultPlan(seed=1, reorder_rate=0.20)),
        ("5% delayed", FaultPlan(seed=1, delay_rate=0.05)),
        ("rank 2 crashes at superstep 5",
         FaultPlan(seed=1, crashes=(RankCrash(2, 5),))),
        ("everything at once",
         FaultPlan(seed=1, loss_rate=0.05, dup_rate=0.02, reorder_rate=0.1,
                   delay_rate=0.02, crashes=(RankCrash(1, 7),))),
    ]

    # 4. Solve under each plan; the structural validator double-checks every
    #    result in O(m + n) without a reference solve.
    rows = []
    for label, plan in plans:
        res = solve_with_faults(
            graph, root, plan, num_ranks=8, validate="structural"
        )
        identical = bool(np.array_equal(res.distances, clean.distances))
        rec = res.metrics.recovery
        rows.append(
            {
                "plan": label,
                "bit-identical": identical,
                "faults": sum(rec.faults_injected.values()),
                "retries": rec.retries,
                "resent_bytes": rec.retransmitted_bytes,
                "extra_supersteps": rec.recovery_supersteps,
                "restarts": rec.rank_restarts,
                "healing_sweeps": rec.healing_sweeps,
                "recovery_bytes": res.metrics.recovery_bytes,
            }
        )
        assert identical, f"{label}: recovery failed to reproduce distances"

    print()
    print(format_table(rows, "recovery under injected faults"))
    print("\nEvery plan recovered the exact fault-free distances; the "
          "overhead columns\nare what surviving the faults cost "
          "(all charged to the 'recovery' phase).")


if __name__ == "__main__":
    main()
