"""Fig. 1 discussion — BFS vs SSSP on the same machine configuration.

"It is worth noting that SSSP is only two to five times slower than BFS on
the same machine configuration, graph type and level of optimization."
(Section I-C.) The paper quotes Graph 500 BFS records for this comparison;
here both sides are *measured* on the same simulated machine: our
direction-optimizing BFS (the Beamer et al. algorithm the paper's pruning
is modelled on) against LB-OPT-25 SSSP, across the weak-scaling range.

Also tabulates the value of direction optimization itself (auto vs forced
top-down), the BFS-side analogue of the push/pull decision.
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    VERTICES_PER_RANK_LOG2,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
    run_algorithm,
)
from repro.bfs import run_bfs

NODE_COUNTS = (4, 16, 64)


@functools.lru_cache(maxsize=1)
def compute_rows():
    rows = []
    for nodes in NODE_COUNTS:
        scale = nodes.bit_length() - 1 + VERTICES_PER_RANK_LOG2
        graph = cached_rmat(scale, "rmat1")
        root = choose_root(graph, seed=0)
        machine = default_machine(nodes)
        bfs = run_bfs(graph, root, machine=machine)
        bfs_td = run_bfs(graph, root, machine=machine, direction="top-down")
        sssp = run_algorithm(graph, root, "lb-opt", 25, machine)
        rows.append(
            {
                "nodes": nodes,
                "scale": scale,
                "bfs_gteps": bfs.gteps,
                "bfs_topdown_gteps": bfs_td.gteps,
                "sssp_gteps": sssp.gteps,
                "bfs_over_sssp": bfs.gteps / sssp.gteps,
                "diropt_gain": bfs.gteps / bfs_td.gteps,
            }
        )
    return rows


def test_bfs_vs_sssp(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Fig. 1 discussion — BFS vs SSSP, same machine")
    for r in rows:
        # the paper's observation: SSSP within 2-5x of BFS (we allow a
        # slightly wider band for small-scale noise)
        assert 1.5 < r["bfs_over_sssp"] < 8.0
        # direction optimization matters, as in Beamer et al.
        assert r["diropt_gain"] > 1.5


if __name__ == "__main__":
    print_table(compute_rows(), "BFS vs SSSP on the simulated machine")
