"""Unit tests for the wall-clock vs. cost-model drift monitor."""

import pytest

from repro.obs.drift import DriftMonitor


class TestReport:
    def test_balanced_kinds_not_flagged(self):
        mon = DriftMonitor(threshold=3.0)
        # Both kinds have the same wall/sim ratio -> rel == 1 everywhere.
        for _ in range(10):
            mon.add("a", 0.01, 1e-5)
            mon.add("b", 0.02, 2e-5)
        rows = {r["kind"]: r for r in mon.report()}
        assert rows["a"]["rel"] == pytest.approx(1.0)
        assert rows["b"]["rel"] == pytest.approx(1.0)
        assert mon.flagged() == []

    def test_diverging_kind_flagged(self):
        mon = DriftMonitor(threshold=3.0)
        # Two well-priced kinds dominate; a third burns 100x more wall per
        # simulated second than the run-wide ratio predicts.
        for _ in range(100):
            mon.add("a", 0.01, 1e-4)
            mon.add("b", 0.01, 1e-4)
        for _ in range(10):
            mon.add("slow", 0.1, 1e-5)
        rows = {r["kind"]: r for r in mon.report()}
        assert rows["slow"]["rel"] > 3.0
        flagged = {r["kind"] for r in mon.flagged()}
        assert "slow" in flagged
        assert "a" not in flagged and "b" not in flagged

    def test_tiny_wall_aggregates_never_flagged(self):
        mon = DriftMonitor(threshold=3.0, min_wall_s=5e-3)
        # Extreme ratio but only microseconds of wall time: timer noise.
        mon.add("fast", 1e-6, 1e-5)
        mon.add("noisy", 1e-4, 1e-9)
        assert mon.flagged() == []

    def test_rel_is_normalized_by_overall_ratio(self):
        mon = DriftMonitor()
        mon.add("a", 0.4, 1e-5)
        mon.add("b", 0.1, 1e-5)
        rows = {r["kind"]: r for r in mon.report()}
        overall = mon.total_wall_s / mon.total_sim_s
        assert rows["a"]["rel"] == pytest.approx(rows["a"]["ratio"] / overall)

    def test_totals(self):
        mon = DriftMonitor()
        mon.add("a", 1.0, 0.25)
        mon.add("b", 2.0, 0.75)
        assert mon.total_wall_s == pytest.approx(3.0)
        assert mon.total_sim_s == pytest.approx(1.0)

    def test_empty_report(self):
        assert DriftMonitor().report() == []
