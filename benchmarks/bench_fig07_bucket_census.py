"""Fig. 7 — Push vs pull per-bucket edge census.

For each bucket of a pruning run the paper tabulates the long arcs of the
current bucket's members split into self / backward / forward classes, the
number of pull requests eq. (1) would issue, and which model the decision
heuristic picked. Early buckets (low-degree frontier still growing) favour
push; the hub-laden buckets favour pull.
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    BENCH_SCALE,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
)
from repro.analysis.phase_stats import bucket_census_table
from repro.core.config import SolverConfig
from repro.core.solver import solve_sssp


@functools.lru_cache(maxsize=1)
def compute_rows():
    graph = cached_rmat(BENCH_SCALE, "rmat1")
    root = choose_root(graph, seed=0)
    cfg = SolverConfig(
        delta=25, use_ios=True, use_pruning=True, collect_census=True
    )
    res = solve_sssp(
        graph, root, algorithm="prune-25", config=cfg, machine=default_machine(8)
    )
    rows = bucket_census_table(res.metrics)
    keep = [
        "bucket", "members", "self_edges", "backward_edges", "forward_edges",
        "push_relaxations", "pull_requests", "pull_responses", "mode",
    ]
    return [{k: r.get(k, "") for k in keep} for r in rows]


def test_fig07_bucket_census(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Fig. 7 — per-bucket census (Prune-25, RMAT-1)")
    assert rows
    for r in rows:
        assert (
            r["self_edges"] + r["backward_edges"] + r["forward_edges"]
            == r["push_relaxations"]
        )
    # Self and backward arcs — the redundancy pull prunes — exist.
    assert sum(r["self_edges"] + r["backward_edges"] for r in rows) > 0
    # Some bucket must be cheaper under pull than push (the Fig. 7 point):
    assert any(
        2 * r["pull_requests"] < r["push_relaxations"] for r in rows
    )


if __name__ == "__main__":
    print_table(compute_rows(), "Fig. 7 — per-bucket census (Prune-25, RMAT-1)")
