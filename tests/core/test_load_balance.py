"""Unit tests for hybrid switch rule and inter-node vertex splitting."""

import numpy as np
import pytest

from repro.core.hybrid import DEFAULT_TAU, should_switch
from repro.core.load_balance import _occurrence_index, split_heavy_vertices
from repro.core.reference import dijkstra_reference
from repro.graph.rmat import RMAT1, rmat_graph


class TestHybridRule:
    def test_default_tau_matches_paper(self):
        assert DEFAULT_TAU == 0.4

    def test_switch_thresholds(self):
        s = np.array([True, True, False, False, False])
        assert should_switch(s, tau=0.3)
        assert not should_switch(s, tau=0.4)  # strict inequality
        assert not should_switch(s, tau=0.5)

    def test_empty_always_switches(self):
        assert should_switch(np.array([], dtype=bool), tau=0.9)


class TestOccurrenceIndex:
    def test_docstring_example(self):
        out = _occurrence_index(np.array([7, 3, 7, 7, 3]))
        assert list(out) == [0, 0, 1, 2, 1]

    def test_empty(self):
        assert _occurrence_index(np.array([], dtype=np.int64)).size == 0

    def test_all_same(self):
        assert list(_occurrence_index(np.array([5, 5, 5]))) == [0, 1, 2]

    def test_all_distinct(self):
        assert list(_occurrence_index(np.array([3, 1, 2]))) == [0, 0, 0]


class TestSplitHeavyVertices:
    def test_no_heavy_vertices_identity(self, path_graph):
        res = split_heavy_vertices(path_graph, threshold=10)
        assert res.num_proxies == 0
        assert res.graph is path_graph
        assert np.array_equal(res.new_id_of_original, np.arange(5))

    def test_star_hub_split(self, star_graph):
        res = split_heavy_vertices(star_graph, threshold=3, shuffle=False)
        assert res.num_split_vertices == 1
        # degree 8 with threshold 3 -> ceil(8/3) = 3 proxies
        assert res.num_proxies == 3
        assert res.graph.num_vertices == 9 + 3

    def test_proxy_degrees_bounded(self, star_graph):
        res = split_heavy_vertices(star_graph, threshold=3, shuffle=False)
        g = res.graph
        # proxies (ids 9..11) have at most threshold + 1 arcs (chunk + spoke)
        for p in (9, 10, 11):
            assert g.degree(p) <= 4
        # the original hub keeps exactly its 3 zero-weight spokes
        assert g.degree(0) == 3
        assert np.all(g.neighbor_weights(0) == 0)

    def test_distances_preserved_star(self, star_graph):
        res = split_heavy_vertices(star_graph, threshold=3, seed=1)
        ref = dijkstra_reference(star_graph, 1)
        d_new = dijkstra_reference(res.graph, int(res.new_id_of_original[1]))
        assert np.array_equal(res.distances_for_original(d_new), ref)

    def test_distances_preserved_rmat(self):
        g = rmat_graph(scale=8, seed=2, params=RMAT1)
        res = split_heavy_vertices(g, threshold=32, seed=3)
        assert res.num_proxies > 0
        root = 5
        ref = dijkstra_reference(g, root)
        d_new = dijkstra_reference(res.graph, int(res.new_id_of_original[root]))
        assert np.array_equal(res.distances_for_original(d_new), ref)

    def test_max_degree_reduced(self):
        g = rmat_graph(scale=9, seed=2, params=RMAT1)
        threshold = 24
        res = split_heavy_vertices(g, threshold=threshold, shuffle=False)
        assert res.graph.degrees.max() <= g.degrees.max()
        # Proxies keep at most threshold original arcs + 1 spoke; split
        # originals keep only their spokes.
        heavy = np.nonzero(g.degrees > threshold)[0]
        for u in heavy[:10]:
            assert res.graph.degree(int(u)) == -(-g.degree(int(u)) // threshold)

    def test_shuffle_scatters_proxies(self):
        g = rmat_graph(scale=9, seed=2, params=RMAT1)
        res = split_heavy_vertices(g, threshold=24, shuffle=True, seed=0)
        # original ids are a permutation subset, not the identity prefix
        assert not np.array_equal(
            res.new_id_of_original, np.arange(g.num_vertices)
        )
        assert len(set(res.new_id_of_original.tolist())) == g.num_vertices

    def test_both_endpoints_heavy(self):
        # Two hubs connected to each other and to many leaves.
        from repro.graph.builder import from_undirected_edges

        n = 22
        hub_a, hub_b = 0, 1
        leaves_a = np.arange(2, 12)
        leaves_b = np.arange(12, 22)
        tails = np.concatenate([[hub_a], np.full(10, hub_a), np.full(10, hub_b)])
        heads = np.concatenate([[hub_b], leaves_a, leaves_b])
        w = np.ones(tails.size, dtype=np.int64) * 3
        g = from_undirected_edges(tails, heads, w, n)
        res = split_heavy_vertices(g, threshold=4, seed=5)
        assert res.num_split_vertices == 2
        ref = dijkstra_reference(g, 2)
        d_new = dijkstra_reference(res.graph, int(res.new_id_of_original[2]))
        assert np.array_equal(res.distances_for_original(d_new), ref)

    def test_invalid_threshold(self, star_graph):
        with pytest.raises(ValueError):
            split_heavy_vertices(star_graph, threshold=0)

    def test_directed_graph_rejected(self):
        from repro.graph.builder import from_edges

        g = from_edges(np.array([0]), np.array([1]), np.array([1]), 2)
        with pytest.raises(ValueError, match="undirected"):
            split_heavy_vertices(g, threshold=1)
