"""Retry and hedging policy for the serving plane (DESIGN.md §12).

A failed solve attempt is not a failed request: transient faults (an
injected error, a corrupted result caught by verification, a deadline
trip on a straggling attempt) are worth a bounded number of re-attempts
before the typed terminal error reaches the caller. :class:`RetryPolicy`
is the budget: how many attempts a request may consume, the capped
exponential backoff between them, which failure classes are retryable at
all, and the *hedging* knobs — when an attempt has been running longer
than ``hedge_after_s``, a second attempt is launched and the first
successful result wins (the SP_Async straggler-tolerance idea applied at
the request layer).

Retries re-enter the micro-batcher (they do not block batch-mates), carry
their backoff as a ``ready_at`` gate, and are exempt from admission
capacity — a retried request was already admitted once; shedding it again
would double-count the overload. Hedges draw from a broker-wide integer
budget so a pathological workload cannot double every solve.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "FAILURE_CLASSES"]

#: The serving plane's failure taxonomy: ``error`` (the solve raised),
#: ``timeout`` (the watchdog tripped / injected stall), ``corrupt`` (the
#: output failed verification). Breaker state and retryability are
#: tracked per class.
FAILURE_CLASSES = ("error", "timeout", "corrupt")


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget, capped exponential backoff, and hedging knobs.

    ``max_attempts`` counts *total* solve attempts per request (1 = no
    retries). ``backoff(attempt)`` is the delay inserted before attempt
    number ``attempt`` (the first retry is attempt 1):
    ``min(base * multiplier**(attempt-1), cap)``. ``retry_on`` lists the
    retryable failure classes (a non-listed class fails terminally on
    first occurrence). ``hedge_after_s`` (None = hedging off) is the
    straggler threshold after which a hedged re-attempt launches;
    ``hedge_budget`` caps total hedges per broker lifetime.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.001
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 0.05
    retry_on: tuple[str, ...] = FAILURE_CLASSES
    hedge_after_s: float | None = None
    hedge_budget: int = 32

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.backoff_cap_s < 0:
            raise ValueError("backoff_cap_s must be >= 0")
        object.__setattr__(self, "retry_on", tuple(self.retry_on))
        for cls in self.retry_on:
            if cls not in FAILURE_CLASSES:
                raise ValueError(
                    f"unknown failure class {cls!r}; "
                    f"choose from {FAILURE_CLASSES}"
                )
        if self.hedge_after_s is not None and self.hedge_after_s < 0:
            raise ValueError("hedge_after_s must be >= 0")
        if self.hedge_budget < 0:
            raise ValueError("hedge_budget must be >= 0")

    # ------------------------------------------------------------------
    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        return min(
            self.backoff_base_s * self.backoff_multiplier ** (attempt - 1),
            self.backoff_cap_s,
        )

    def retries(self, failure_class: str) -> bool:
        """Whether this failure class is retryable at all."""
        return failure_class in self.retry_on

    def allows(self, failure_class: str, attempts_consumed: int) -> bool:
        """Whether one more attempt may be spent after a failure of this
        class with ``attempts_consumed`` attempts already used."""
        return (
            self.retries(failure_class)
            and attempts_consumed < self.max_attempts
        )

    @property
    def hedging(self) -> bool:
        return self.hedge_after_s is not None and self.hedge_budget > 0
