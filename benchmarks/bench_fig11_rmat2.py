"""Fig. 11 — RMAT-2 analysis of Del-25 vs Prune-25 vs OPT-25.

On the milder-skew RMAT-2 family the paper finds a different balance than
on RMAT-1: pruning cuts relaxations roughly in half (not 5-6x) and improves
the relaxation time by ~30 %, but the bucket overhead dominates, so the big
win is hybridization — a ~20x bucket-count reduction making OPT-25 about 3x
faster than the baseline. Shortest distances spread over a wider range, so
Del-25 needs many more buckets than on RMAT-1.
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    VERTICES_PER_RANK_LOG2,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
    run_algorithm,
)

ALGORITHMS = [("Del-25", "delta"), ("Prune-25", "prune"), ("OPT-25", "opt")]
NODE_COUNTS = (2, 8, 32)


@functools.lru_cache(maxsize=1)
def compute_rows():
    rows = []
    for nodes in NODE_COUNTS:
        scale = nodes.bit_length() - 1 + VERTICES_PER_RANK_LOG2
        graph = cached_rmat(scale, "rmat2")
        root = choose_root(graph, seed=0)
        machine = default_machine(nodes)
        for label, name in ALGORITHMS:
            res = run_algorithm(graph, root, name, 25, machine)
            rows.append(
                {
                    "nodes": nodes,
                    "scale": scale,
                    "algorithm": label,
                    "gteps": res.gteps,
                    "bkt_ms": res.cost.bucket_time * 1e3,
                    "other_ms": res.cost.other_time * 1e3,
                    "relaxations": res.metrics.total_relaxations,
                    "buckets": res.metrics.buckets_processed,
                }
            )
    return rows


def _at(rows, nodes, algorithm):
    return next(
        r for r in rows if r["nodes"] == nodes and r["algorithm"] == algorithm
    )


def test_fig11_rmat2_panel(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Fig. 11 — RMAT-2: Del-25 vs Prune-25 vs OPT-25")
    for nodes in NODE_COUNTS:
        del_ = _at(rows, nodes, "Del-25")
        prune = _at(rows, nodes, "Prune-25")
        opt = _at(rows, nodes, "OPT-25")
        # (c) pruning roughly halves the relaxations
        assert prune["relaxations"] < 0.75 * del_["relaxations"]
        # (d) hybridization slashes the bucket count
        assert opt["buckets"] <= del_["buckets"] / 3
        # (b) the OPT bucket overhead collapses
        assert opt["bkt_ms"] < prune["bkt_ms"]
        # (a) OPT is the fastest of the three
        assert opt["gteps"] >= prune["gteps"] * 0.95
        assert opt["gteps"] > 1.15 * del_["gteps"]
    # the advantage widens with scale (the paper's 3x shows at 2,048 nodes;
    # at reproduction scale the gap is smaller but growing)
    largest = NODE_COUNTS[-1]
    assert (
        _at(rows, largest, "OPT-25")["gteps"]
        > 1.35 * _at(rows, largest, "Del-25")["gteps"]
    )


def test_fig11_rmat2_needs_more_buckets_than_rmat1(benchmark):
    # Section IV-E: RMAT-2 distances spread wider -> more buckets for Del-25.
    from benchmarks.bench_fig10_rmat1 import compute_rows as rmat1_rows

    rows2 = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    rows1 = rmat1_rows()
    nodes = NODE_COUNTS[-1]
    assert (
        _at(rows2, nodes, "Del-25")["buckets"]
        > _at(rows1, nodes, "Del-25")["buckets"]
    )


if __name__ == "__main__":
    print_table(compute_rows(), "Fig. 11 — RMAT-2 analysis")
