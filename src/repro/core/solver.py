"""Unified SSSP front-end.

:func:`solve_sssp` is the package's main entry point: pick an algorithm
preset (or pass an explicit :class:`~repro.core.config.SolverConfig`), a
machine shape, a graph and a root — get back distances, the exact execution
counters, the simulated cost breakdown and simulated GTEPS.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import DELTA_FREE_PRESETS, SolverConfig, preset
from repro.core.context import make_context
from repro.core.delta_stepping import DeltaSteppingEngine
from repro.core.load_balance import split_heavy_vertices
from repro.core.reference import validate_distances
from repro.graph.csr import CSRGraph
from repro.runtime.costmodel import CostBreakdown, evaluate_cost, simulated_gteps
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import Metrics

__all__ = ["SsspResult", "run_validation", "solve_sssp", "BatchSolver"]


def _validate_root(root: int, num_vertices: int) -> int:
    """Reject out-of-range roots with a clear error; returns ``int(root)``."""
    root = int(root)
    if not 0 <= root < num_vertices:
        raise ValueError(
            f"root {root} out of range for a graph with "
            f"{num_vertices} vertices (valid: 0 <= root < {num_vertices})"
        )
    return root


def run_validation(
    distances: np.ndarray,
    graph: CSRGraph,
    root: int,
    validate: bool | str,
) -> None:
    """Dispatch the post-solve distance check selected by ``validate``.

    ``False`` does nothing. ``True`` or ``"reference"`` cross-checks against
    the sequential Dijkstra reference (O(m log n) extra work). ``"structural"``
    runs the O(m) structural validator
    (:func:`repro.core.validation.validate_sssp_structure`) — no reference
    solve needed, so it scales to graphs where Dijkstra would dominate.
    Raises ``ValueError`` on an unknown mode, ``AssertionError`` /
    :class:`~repro.core.validation.ValidationError` on a failed check.
    """
    if validate is False:
        return
    if validate is True or validate == "reference":
        validate_distances(distances, graph, root)
    elif validate == "structural":
        from repro.core.validation import validate_sssp_structure

        validate_sssp_structure(graph, root, distances).raise_if_invalid()
    else:
        raise ValueError(
            f"unknown validate mode {validate!r} "
            "(expected False, True, 'reference' or 'structural')"
        )


@dataclass
class SsspResult:
    """Everything one SSSP run produced.

    ``distances`` is indexed by *original* vertex id even when inter-node
    vertex splitting rewrote the graph internally. ``gteps`` follows the
    Graph 500 convention (input edge count over simulated time).
    """

    distances: np.ndarray
    metrics: Metrics
    cost: CostBreakdown
    gteps: float
    algorithm: str
    config: SolverConfig
    machine: MachineConfig
    root: int
    num_vertices: int
    num_edges: int
    wall_time_s: float
    num_proxies: int = 0
    #: populated when the solve ran with ``paranoid`` invariant guards
    guards: object | None = None
    trace: object | None = None
    """The solve's :class:`repro.obs.tracer.Tracer` (finalized, with
    ``registry``/``drift_rows``/``artifacts`` filled in) when telemetry was
    configured; ``None`` otherwise."""

    @property
    def num_reached(self) -> int:
        """Vertices with a finite shortest distance (root included)."""
        from repro.core.distances import INF

        return int((self.distances < INF).sum())

    def summary(self) -> dict[str, float | int | str]:
        """Flat summary row for tables."""
        row: dict[str, float | int | str] = {
            "algorithm": self.algorithm,
            "n": self.num_vertices,
            "m": self.num_edges,
            "gteps": self.gteps,
            "time_s": self.cost.total_time,
            "bkt_s": self.cost.bucket_time,
            "other_s": self.cost.other_time,
        }
        row.update(self.metrics.summary())
        return row


def solve_sssp(
    graph: CSRGraph,
    root: int,
    *,
    algorithm: str = "opt",
    delta: int = 25,
    config: SolverConfig | None = None,
    machine: MachineConfig | None = None,
    num_ranks: int = 8,
    threads_per_rank: int = 8,
    validate: bool | str = False,
    split_seed: int = 0,
    paranoid: bool = False,
    checkpoint_dir=None,
    checkpoint_interval: int = 1,
    resume: bool = False,
    deadline=None,
    trace=None,
) -> SsspResult:
    """Solve single-source shortest paths on the simulated machine.

    Parameters
    ----------
    graph:
        Weighted undirected input graph.
    root:
        Source vertex (original id).
    algorithm:
        Preset name — ``dijkstra``, ``bellman-ford``, ``delta``, ``prune``,
        ``opt``, ``lb-opt``, ``lb-opt-split``, ``radius``, ``rho`` —
        ignored when ``config`` is given explicitly. ``radius`` and
        ``rho`` select the windowed stepping strategies of
        :mod:`repro.core.stepping`; Δ plays no role there.
    delta:
        Bucket width Δ for presets that take one.
    config:
        Explicit solver configuration (overrides ``algorithm``/``delta``).
    machine:
        Explicit machine model (overrides ``num_ranks``/``threads_per_rank``).
    num_ranks, threads_per_rank:
        Machine shape when ``machine`` is not given.
    validate:
        ``True`` (or ``"reference"``) cross-checks the distances against the
        sequential Dijkstra reference (O(m log n) extra work; intended for
        tests and examples); ``"structural"`` runs the O(m) structural
        validator instead, which needs no reference solve.
    split_seed:
        Seed for the proxy-relabelling permutation of vertex splitting.
    paranoid:
        Enable the runtime invariant guards
        (:class:`~repro.runtime.guards.InvariantGuards`) for this solve.
    checkpoint_dir:
        Directory for durable epoch checkpoints (created and write-probed
        up front); ``None`` disables checkpointing.
    checkpoint_interval:
        Save a checkpoint every this many epochs.
    resume:
        Restart from the newest valid checkpoint in ``checkpoint_dir``
        instead of from scratch; the resumed run is distance-identical.
    deadline:
        Optional :class:`~repro.runtime.watchdog.DeadlineConfig` arming
        the superstep-budget/stall watchdog.
    trace:
        Optional :class:`~repro.obs.tracer.TraceConfig` enabling the
        telemetry layer; artifacts are written at solve end and the
        finalized tracer is returned as ``result.trace``.

    Returns
    -------
    :class:`SsspResult`
    """
    root = _validate_root(root, graph.num_vertices)
    if config is None:
        config = preset(algorithm, delta)
        name = (
            algorithm
            if algorithm in DELTA_FREE_PRESETS
            else f"{algorithm}-{delta}"
        )
    else:
        name = algorithm
    if paranoid and not config.paranoid:
        config = config.evolve(paranoid=True)
    if trace is not None:
        config = config.evolve(trace=trace)
    if checkpoint_dir is not None:
        from repro.spmd.checkpoint import ensure_checkpoint_dir

        ensure_checkpoint_dir(checkpoint_dir)
    if machine is None:
        machine = MachineConfig(num_ranks=num_ranks, threads_per_rank=threads_per_rank)

    work_graph = graph
    mapping = None
    num_proxies = 0
    if config.inter_split and not graph.undirected:
        raise ValueError("inter-node vertex splitting requires an undirected graph")
    if config.inter_split:
        mean_degree = float(graph.degrees.mean()) if graph.num_vertices else 0.0
        threshold = config.derived_split_degree(mean_degree)
        split = split_heavy_vertices(graph, threshold, seed=split_seed)
        work_graph = split.graph
        mapping = split
        num_proxies = split.num_proxies

    ctx = make_context(work_graph, machine, config)
    start_root = (
        int(mapping.new_id_of_original[root]) if mapping is not None else root
    )
    t0 = time.perf_counter()
    engine = DeltaSteppingEngine(ctx)
    d = engine.run(
        start_root,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=checkpoint_interval,
        resume=resume,
        deadline=deadline,
    )
    wall = time.perf_counter() - t0

    distances = mapping.distances_for_original(d) if mapping is not None else d
    run_validation(distances, graph, root, validate)

    cost = evaluate_cost(ctx.metrics, machine)
    gteps = simulated_gteps(graph.num_undirected_edges, ctx.metrics, machine)
    if ctx.tracer is not None:
        from repro.obs.export import finalize_trace

        finalize_trace(ctx.tracer, metrics=ctx.metrics)
    return SsspResult(
        distances=distances,
        metrics=ctx.metrics,
        cost=cost,
        gteps=gteps,
        algorithm=name,
        config=config,
        machine=machine,
        root=root,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_undirected_edges,
        wall_time_s=wall,
        num_proxies=num_proxies,
        guards=ctx.guards,
        trace=ctx.tracer,
    )


class BatchSolver:
    """Multi-root solver that pays the preprocessing once.

    ``solve_sssp`` rebuilds the execution context — weight-sorted adjacency,
    short/long tables, optional histograms and vertex splitting — on every
    call. Multi-root workloads (Graph 500's 64 search keys, centrality
    pipelines) share all of that across roots; this class hoists it.

    Example::

        solver = BatchSolver(graph, algorithm="opt", delta=25, num_ranks=8)
        results = solver.solve_many(roots)          # input order preserved

    Each solve still gets fresh metrics and accounting (runs are
    independent), but graph preprocessing is shared. :meth:`solve_many`
    can additionally share one trace across the whole batch
    (``solve_many(roots, trace=TraceConfig(...))``), which is how the
    serving layer (:mod:`repro.serve`) captures per-batch telemetry.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        algorithm: str = "opt",
        delta: int = 25,
        config: SolverConfig | None = None,
        machine: MachineConfig | None = None,
        num_ranks: int = 8,
        threads_per_rank: int = 8,
        split_seed: int = 0,
    ) -> None:
        if config is None:
            config = preset(algorithm, delta)
            self.algorithm = (
                algorithm
                if algorithm in DELTA_FREE_PRESETS
                else f"{algorithm}-{delta}"
            )
        else:
            self.algorithm = algorithm
        if machine is None:
            machine = MachineConfig(
                num_ranks=num_ranks, threads_per_rank=threads_per_rank
            )
        self.config = config
        self.machine = machine
        self._original_graph = graph
        self._mapping = None
        self.num_proxies = 0
        work_graph = graph
        if config.inter_split:
            if not graph.undirected:
                raise ValueError(
                    "inter-node vertex splitting requires an undirected graph"
                )
            mean_degree = float(graph.degrees.mean()) if graph.num_vertices else 0.0
            threshold = config.derived_split_degree(mean_degree)
            split = split_heavy_vertices(graph, threshold, seed=split_seed)
            work_graph = split.graph
            self._mapping = split
            self.num_proxies = split.num_proxies
        # One context build sorts the graph and derives every table; per-root
        # contexts reuse the sorted graph so the work is not repeated.
        self._template_ctx = make_context(work_graph, machine, config)
        self._work_graph = self._template_ctx.graph

    def solve(
        self,
        root: int,
        *,
        validate: bool | str = False,
        deadline=None,
        tracer=None,
    ) -> SsspResult:
        """Solve from one root; metrics and accounting are per-call.

        ``deadline`` arms the superstep-budget/stall watchdog
        (:class:`~repro.runtime.watchdog.DeadlineConfig`) for this solve
        only — the serving layer uses it for per-request timeouts.
        ``tracer`` attaches a caller-owned shared tracer (see
        :meth:`solve_many`); the caller then finalizes it.
        """
        root = _validate_root(root, self._original_graph.num_vertices)
        ctx = make_context(
            self._work_graph, self.machine, self.config, tracer=tracer
        )
        start_root = (
            int(self._mapping.new_id_of_original[root])
            if self._mapping is not None
            else root
        )
        t0 = time.perf_counter()
        d = DeltaSteppingEngine(ctx).run(start_root, deadline=deadline)
        wall = time.perf_counter() - t0
        distances = (
            self._mapping.distances_for_original(d)
            if self._mapping is not None
            else d
        )
        run_validation(distances, self._original_graph, root, validate)
        cost = evaluate_cost(ctx.metrics, self.machine)
        gteps = simulated_gteps(
            self._original_graph.num_undirected_edges, ctx.metrics, self.machine
        )
        if ctx.tracer is not None and tracer is None:
            from repro.obs.export import finalize_trace

            finalize_trace(ctx.tracer, metrics=ctx.metrics)
        return SsspResult(
            distances=distances,
            metrics=ctx.metrics,
            cost=cost,
            gteps=gteps,
            algorithm=self.algorithm,
            config=self.config,
            machine=self.machine,
            root=root,
            num_vertices=self._original_graph.num_vertices,
            num_edges=self._original_graph.num_undirected_edges,
            wall_time_s=wall,
            num_proxies=self.num_proxies,
            guards=ctx.guards,
            trace=ctx.tracer,
        )

    def solve_degraded(
        self, root: int, *, max_supersteps: int = 8
    ) -> SsspResult:
        """Bounded-exact fallback solve: after ``max_supersteps`` bucket
        epochs the engine collapses all remaining buckets into one
        Bellman-Ford fixpoint pass (the ``degrade`` deadline policy), so
        the result is still *exact* but the epoch structure is bounded.
        The serving layer's circuit breaker uses this as its degradation
        path on small graphs (DESIGN.md §12).
        """
        from repro.runtime.watchdog import DeadlineConfig

        return self.solve(
            root, deadline=DeadlineConfig.degraded(max_supersteps)
        )

    def solve_many(
        self,
        roots,
        *,
        validate: bool | str = False,
        deadline=None,
        trace=None,
    ) -> list[SsspResult]:
        """Solve from every root in ``roots``; results come back in input
        order.

        ``trace`` (a :class:`~repro.obs.tracer.TraceConfig`) opens **one**
        shared tracer spanning the whole batch: every per-root solve nests
        under a ``root-<r>`` span in the same event stream, artifacts are
        written once at the end, and each returned result's ``trace``
        attribute is that shared tracer. ``deadline`` applies per root.
        """
        roots = [int(r) for r in roots]
        shared = None
        if trace is not None and getattr(trace, "enabled", True):
            from repro.obs.tracer import Tracer

            shared = Tracer(self.machine, trace)
        results: list[SsspResult] = []
        for r in roots:
            if shared is None:
                results.append(
                    self.solve(r, validate=validate, deadline=deadline)
                )
                continue
            with shared.span(f"root-{r}", cat="root", root=r):
                results.append(
                    self.solve(
                        r, validate=validate, deadline=deadline, tracer=shared
                    )
                )
        if shared is not None:
            from repro.obs.export import finalize_trace

            finalize_trace(shared)
        return results
