"""Unit tests for weight assignment and degree statistics."""

import numpy as np
import pytest

from repro.graph.degree import degree_stats, thread_load_imbalance
from repro.graph.partition import BlockPartition
from repro.graph.rmat import RMAT1, rmat_graph
from repro.graph.weights import DEFAULT_MAX_WEIGHT, uniform_weights


class TestUniformWeights:
    def test_range(self):
        w = uniform_weights(10_000, max_weight=255, seed=0)
        assert w.min() >= 1
        assert w.max() <= 255

    def test_default_max_is_255(self):
        assert DEFAULT_MAX_WEIGHT == 255

    def test_deterministic(self):
        assert np.array_equal(uniform_weights(100, seed=3), uniform_weights(100, seed=3))

    def test_roughly_uniform(self):
        w = uniform_weights(100_000, max_weight=100, seed=1)
        # mean of U[1,100] is 50.5
        assert abs(w.mean() - 50.5) < 1.0

    def test_zero_edges(self):
        assert uniform_weights(0).size == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            uniform_weights(10, max_weight=0)
        with pytest.raises(ValueError):
            uniform_weights(-1)


class TestDegreeStats:
    def test_star_graph(self, star_graph):
        s = degree_stats(star_graph)
        assert s.max_degree == 8
        assert s.num_isolated == 0
        assert s.num_vertices == 9
        assert s.skew_ratio == pytest.approx(8 / s.mean_degree)

    def test_isolated_counted(self, disconnected_graph):
        s = degree_stats(disconnected_graph)
        assert s.num_isolated == 1

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        s = degree_stats(CSRGraph(np.array([0]), np.array([]), np.array([])))
        assert s.num_vertices == 0 and s.max_degree == 0

    def test_as_row_keys(self, star_graph):
        row = degree_stats(star_graph).as_row()
        assert {"n", "m", "max_deg", "skew"} <= set(row)


class TestThreadLoadImbalance:
    def test_uniform_graph_balanced(self):
        # ring: every vertex degree 2 -> perfect balance
        from repro.graph.builder import from_undirected_edges

        n = 64
        t = np.arange(n)
        h = (t + 1) % n
        g = from_undirected_edges(t, h, np.ones(n, dtype=np.int64), n)
        imb = thread_load_imbalance(g, BlockPartition(n, 4), threads_per_rank=4)
        assert imb == pytest.approx(1.0)

    def test_skewed_graph_imbalanced(self):
        g = rmat_graph(scale=10, seed=5, params=RMAT1)
        imb = thread_load_imbalance(
            g, BlockPartition(g.num_vertices, 4), threads_per_rank=4
        )
        assert imb > 1.2

    def test_empty_loads(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph(np.array([0, 0, 0]), np.array([]), np.array([]))
        imb = thread_load_imbalance(g, BlockPartition(2, 2), threads_per_rank=2)
        assert imb == 1.0
