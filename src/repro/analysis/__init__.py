"""Experiment drivers and result analysis.

- :mod:`repro.analysis.phase_stats` — per-phase/per-bucket statistics
  (paper Fig. 3, Fig. 4, Fig. 7);
- :mod:`repro.analysis.oracle` — exhaustive push/pull decision-sequence
  evaluation validating the heuristic (Section IV-G);
- :mod:`repro.analysis.sweep` — Δ sweeps and weak-scaling drivers shared by
  the benchmark harness (Fig. 9–12).
"""

from repro.analysis.oracle import OracleReport, evaluate_decision_sequences
from repro.analysis.phase_stats import (
    algorithm_comparison,
    bucket_census_table,
    phase_relaxation_series,
)
from repro.analysis.sweep import delta_sweep, weak_scaling
from repro.analysis.trace import render_timeline, time_by_phase_kind, timeline

__all__ = [
    "OracleReport",
    "algorithm_comparison",
    "bucket_census_table",
    "delta_sweep",
    "evaluate_decision_sequences",
    "phase_relaxation_series",
    "render_timeline",
    "time_by_phase_kind",
    "timeline",
    "weak_scaling",
]
