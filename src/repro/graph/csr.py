"""Compressed sparse row (CSR) graph container.

All SSSP kernels in :mod:`repro.core` operate on this structure. The graph
is stored as three numpy arrays (the classic adjacency-array layout used by
Graph 500 codes):

- ``indptr``  — ``int64[n + 1]``, prefix sums of vertex out-degrees;
- ``adj``     — ``int64[m]``, concatenated adjacency lists;
- ``weights`` — ``int64[m]``, per-directed-edge weights aligned with ``adj``.

Undirected graphs (the paper's setting) are stored symmetrized: each
undirected edge ``{u, v}`` contributes the two directed arcs ``(u, v)`` and
``(v, u)`` with equal weight. ``num_undirected_edges`` reports ``m / 2`` in
that case and is what TEPS computations use (the Graph 500 convention counts
input edges, not directed arcs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """An immutable weighted graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; adjacency of vertex ``u`` lives
        in ``adj[indptr[u]:indptr[u + 1]]``.
    adj:
        ``int64`` array of directed-edge heads.
    weights:
        ``int64`` array of positive edge weights aligned with ``adj``.
    undirected:
        True when the arrays store a symmetrized undirected graph.
    """

    indptr: np.ndarray
    adj: np.ndarray
    weights: np.ndarray
    undirected: bool = True
    _sorted_by_weight: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        adj = np.ascontiguousarray(self.adj, dtype=np.int64)
        weights = np.ascontiguousarray(self.weights, dtype=np.int64)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "adj", adj)
        object.__setattr__(self, "weights", weights)
        if indptr.ndim != 1 or adj.ndim != 1 or weights.ndim != 1:
            raise ValueError("CSR arrays must be one-dimensional")
        if indptr.size == 0:
            raise ValueError("indptr must have length n + 1 >= 1")
        if indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if adj.size != indptr[-1]:
            raise ValueError(
                f"adj has {adj.size} entries but indptr[-1] = {int(indptr[-1])}"
            )
        if weights.size != adj.size:
            raise ValueError("weights must align with adj")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if adj.size and (adj.min() < 0 or adj.max() >= self.num_vertices):
            raise ValueError("adjacency entries out of range")
        if weights.size and weights.min() < 0:
            raise ValueError("edge weights must be non-negative")

    # ------------------------------------------------------------------
    # Shape accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return int(self.indptr.size - 1)

    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs (``2m`` for undirected graphs)."""
        return int(self.adj.size)

    @property
    def num_undirected_edges(self) -> int:
        """Number of input edges as counted by TEPS (``m``)."""
        return self.num_arcs // 2 if self.undirected else self.num_arcs

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (``int64[n]``)."""
        return np.diff(self.indptr)

    def degree(self, u: int) -> int:
        """Out-degree of vertex ``u``."""
        return int(self.indptr[u + 1] - self.indptr[u])

    def neighbors(self, u: int) -> np.ndarray:
        """Adjacency list (view) of vertex ``u``."""
        return self.adj[self.indptr[u] : self.indptr[u + 1]]

    def neighbor_weights(self, u: int) -> np.ndarray:
        """Weights (view) aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    @property
    def max_weight(self) -> int:
        """Largest edge weight (0 on an edgeless graph)."""
        return int(self.weights.max()) if self.weights.size else 0

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def sorted_by_weight(self) -> "CSRGraph":
        """Return an equivalent graph with each adjacency list sorted by weight.

        Weight-sorted adjacency lets the short/long edge split be expressed as
        a per-vertex offset (a single ``searchsorted`` per vertex) instead of a
        mask over all arcs, which is what the paper's edge-classification
        preprocessing computes.
        """
        if self._sorted_by_weight:
            return self
        n = self.num_vertices
        adj = self.adj.copy()
        weights = self.weights.copy()
        # Sort within each CSR segment: sort globally by (vertex, weight)
        # using a stable composite key. A packed single-key argsort beats a
        # 2-key lexsort when both fields fit in 62 bits together.
        seg = np.repeat(np.arange(n, dtype=np.int64), self.degrees)
        w_span = int(weights.max()) + 1 if weights.size else 1
        if (n.bit_length() + w_span.bit_length() <= 62) and (
            weights.size == 0 or weights.min() >= 0
        ):
            order = np.argsort(seg * w_span + weights, kind="stable")
        else:
            order = np.lexsort((weights, seg))
        adj = adj[order]
        weights = weights[order]
        return CSRGraph(self.indptr, adj, weights, self.undirected, _sorted_by_weight=True)

    def short_edge_offsets(self, delta: int) -> np.ndarray:
        """Per-vertex index of the first *long* edge (weight >= ``delta``).

        Requires a weight-sorted graph (see :meth:`sorted_by_weight`). Entry
        ``k`` for vertex ``u`` means ``adj[indptr[u]:indptr[u]+k]`` are the
        short edges and the rest are long.
        """
        if not self._sorted_by_weight:
            raise ValueError("short_edge_offsets requires a weight-sorted graph")
        n = self.num_vertices
        out = np.empty(n, dtype=np.int64)
        starts = self.indptr[:-1]
        ends = self.indptr[1:]
        # Vectorised per-segment searchsorted: within a sorted segment the
        # count of weights < delta equals searchsorted(weights, delta, 'left')
        # restricted to the segment. np.searchsorted over the whole array is
        # wrong across segment boundaries, so do it segment-wise but without a
        # Python loop: a weight < delta contributes 1 to its segment.
        short_mask = self.weights < delta
        counts = np.zeros(n, dtype=np.int64)
        if short_mask.any():
            seg = np.repeat(np.arange(n, dtype=np.int64), self.degrees)
            np.add.at(counts, seg[short_mask], 1)
        out[:] = counts
        # Sanity: counts cannot exceed degree.
        assert np.all(out <= ends - starts)
        return out

    def reverse(self) -> "CSRGraph":
        """Return the graph with all arcs reversed.

        For undirected (symmetrized) graphs this is an identical graph; it is
        provided for completeness and for directed-graph experiments.
        """
        n = self.num_vertices
        tails = np.repeat(np.arange(n, dtype=np.int64), self.degrees)
        order = np.argsort(self.adj, kind="stable")
        new_tails = self.adj[order]
        new_heads = tails[order]
        new_weights = self.weights[order]
        counts = np.bincount(new_tails, minlength=n).astype(np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(indptr, new_heads, new_weights, self.undirected)

    def arc_tails(self) -> np.ndarray:
        """Tail vertex of every stored arc (``int64[num_arcs]``)."""
        return np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees)

    def to_edge_list(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(tails, heads, weights)`` arrays of all stored arcs."""
        return self.arc_tails(), self.adj.copy(), self.weights.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "undirected" if self.undirected else "directed"
        return (
            f"CSRGraph(n={self.num_vertices}, m={self.num_undirected_edges}, "
            f"{kind}, w_max={self.max_weight})"
        )
