"""Property-based tests (hypothesis) for the defensive execution layer.

Two headline properties over randomly drawn graphs and configurations:

1. Every algorithm preset, with and without runtime guards, matches the
   sequential Dijkstra reference exactly — the guards never perturb a
   solve, and a clean solve never trips a guard.
2. Checkpoint/resume at a *random* epoch is distance-identical: write
   durable checkpoints, keep a random prefix (simulating a kill at an
   arbitrary epoch), resume, and land on the exact same distances.
"""

from __future__ import annotations

import glob
import os

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import PRESETS, preset
from repro.core.reference import dijkstra_reference
from repro.core.solver import solve_sssp
from repro.graph.builder import from_undirected_edges
from repro.runtime.machine import MachineConfig
from repro.spmd.engine import spmd_delta_stepping


@st.composite
def random_graphs(draw, max_n=28, max_m=80, max_w=40):
    """A random small undirected weighted graph plus a valid root."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    tails = rng.integers(0, n, m)
    heads = rng.integers(0, n, m)
    weights = rng.integers(1, max_w + 1, m).astype(np.int64)
    graph = from_undirected_edges(tails, heads, weights, n)
    deg = graph.degrees
    with_edges = np.nonzero(deg > 0)[0]
    if with_edges.size == 0:
        root = 0
    else:
        root = int(with_edges[draw(st.integers(0, int(with_edges.size) - 1))])
    return graph, root


class TestGuardedPresetsMatchDijkstra:
    @settings(max_examples=40, deadline=None)
    @given(
        gr=random_graphs(),
        name=st.sampled_from(sorted(PRESETS)),
        delta=st.sampled_from([1, 7, 25]),
        paranoid=st.booleans(),
        ranks=st.sampled_from([1, 2, 4]),
    )
    def test_preset_exact_with_and_without_guards(
        self, gr, name, delta, paranoid, ranks
    ):
        graph, root = gr
        res = solve_sssp(
            graph, root, algorithm=name, delta=delta, paranoid=paranoid,
            num_ranks=ranks, threads_per_rank=2,
        )
        ref = dijkstra_reference(graph, root)
        assert np.array_equal(res.distances, ref)

    @settings(max_examples=25, deadline=None)
    @given(
        gr=random_graphs(),
        name=st.sampled_from(["delta", "opt", "lb-opt"]),
        delta=st.sampled_from([7, 25]),
    )
    def test_guards_never_change_metrics(self, gr, name, delta):
        graph, root = gr
        plain = solve_sssp(graph, root, algorithm=name, delta=delta,
                           num_ranks=2, threads_per_rank=2)
        guarded = solve_sssp(graph, root, algorithm=name, delta=delta,
                             paranoid=True, num_ranks=2, threads_per_rank=2)
        assert np.array_equal(plain.distances, guarded.distances)
        assert plain.metrics.summary() == guarded.metrics.summary()


class TestCheckpointResumeProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        gr=random_graphs(),
        name=st.sampled_from(["delta", "opt"]),
        delta=st.sampled_from([5, 25]),
        data=st.data(),
    )
    def test_resume_at_random_epoch_is_bit_identical(
        self, gr, name, delta, data, tmp_path_factory
    ):
        graph, root = gr
        machine = MachineConfig(num_ranks=2, threads_per_rank=2)
        cfg = preset(name, delta)
        d_ref, _ = spmd_delta_stepping(graph, root, machine, config=cfg)

        ckdir = tmp_path_factory.mktemp("ck")
        d_full, _ = spmd_delta_stepping(
            graph, root, machine, config=cfg,
            checkpoint_dir=ckdir, checkpoint_keep=10_000,
        )
        assert np.array_equal(d_ref, d_full)

        files = sorted(glob.glob(str(ckdir / "*.npz")))
        if files:
            # Kill at a random epoch: keep a random non-empty prefix.
            keep = data.draw(
                st.integers(min_value=1, max_value=len(files)),
                label="checkpoints_surviving_the_kill",
            )
            for stale in files[keep:]:
                os.unlink(stale)
        d_res, _ = spmd_delta_stepping(
            graph, root, machine, config=cfg,
            checkpoint_dir=ckdir, resume=True,
        )
        assert np.array_equal(d_ref, d_res)
