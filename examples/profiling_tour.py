"""Profiling tour: where does the simulated time go?

Uses the analysis toolkit on one OPT run: the priced execution timeline
(which individual steps dominate), the per-phase-kind time split, the cost
model's linear decomposition over the machine constants, a what-if
retiming under a different interconnect — all without re-running anything
— and finally a *traced* re-run that puts the measured wall clock next to
the simulated clock and reports where the two drift apart.

Run:  python examples/profiling_tour.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import rmat_graph, solve_sssp
from repro.analysis.trace import render_timeline, time_by_phase_kind
from repro.graph.roots import choose_root
from repro.obs import TraceConfig
from repro.obs.report import drift_table
from repro.runtime.calibration import cost_coefficients, retime


def main() -> None:
    graph = rmat_graph(scale=13, seed=9).sorted_by_weight()
    root = choose_root(graph, seed=0)
    res = solve_sssp(graph, root, algorithm="opt", delta=25,
                     num_ranks=16, threads_per_rank=16)
    machine = res.machine

    # 1. The most expensive individual steps.
    print(render_timeline(res.metrics, machine, top=10))

    # 2. Time by paper-level phase kind.
    print("\ntime by phase kind (ms):")
    for kind, t in sorted(time_by_phase_kind(res.metrics, machine).items()):
        print(f"  {kind:<8} {t * 1e3:8.3f}")

    # 3. The run's exact linear time signature.
    coeffs = cost_coefficients(res.metrics)
    print("\ncost decomposition (coefficient x constant = ms):")
    for label, coeff, const in [
        ("relax compute", coeffs.relax_units, machine.t_relax),
        ("request compute", coeffs.request_units, machine.t_request),
        ("bucket scans", coeffs.scan_units, machine.t_scan),
        ("messages (alpha)", coeffs.messages, machine.alpha),
        ("bytes (beta)", coeffs.bytes_moved, machine.beta),
    ]:
        print(f"  {label:<17} {coeff:>12.0f} x {const:.2e} = "
              f"{coeff * const * 1e3:8.3f}")

    # 4. What-if: a 4x-faster network, no re-run needed.
    fast = replace(machine, alpha=machine.alpha / 4, beta=machine.beta / 4)
    t0 = retime(res.metrics, machine)
    t1 = retime(res.metrics, fast)
    print(f"\nretimed under a 4x faster network: {t0 * 1e3:.3f} ms -> "
          f"{t1 * 1e3:.3f} ms ({t0 / t1:.2f}x speedup)")

    # 5. Wall clock vs. simulated clock: re-run with the tracer attached.
    # Everything above priced the run on the *simulated* machine; the tracer
    # also measures what the Python simulator actually spent per record kind
    # and flags kinds the cost model weights differently from reality.
    traced = solve_sssp(graph, root, algorithm="opt", delta=25,
                        num_ranks=16, threads_per_rank=16,
                        trace=TraceConfig(path=None))
    tracer = traced.trace
    print(f"\ntraced re-run: wall {tracer.wall_total * 1e3:9.2f} ms over "
          f"{tracer.num_records} records in {len(tracer.events)} events")
    print(f"               sim  {tracer.sim_t * 1e3:9.4f} ms "
          f"(identical to the cost model total: "
          f"{abs(tracer.sim_t - res.cost.total_time) < 1e-12})")
    print()
    print(drift_table(tracer.drift_rows))


if __name__ == "__main__":
    main()
