"""Vectorised concatenation of index ranges.

The hot path of every relaxation kernel is "gather the adjacency slices of
these vertices". ``concat_ranges`` turns per-vertex ``[start, end)`` ranges
into one flat index array without a Python loop — the idiom the performance
guides call 'vectorise the for loop'.
"""

from __future__ import annotations

import numpy as np

__all__ = ["concat_ranges"]


def concat_ranges(starts: np.ndarray, ends: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the integer ranges ``[starts[i], ends[i])``.

    Returns
    -------
    (indices, owners):
        ``indices`` — the concatenation of all ranges, in order;
        ``owners`` — for each output element, the index ``i`` of the range
        it came from (useful to map arcs back to their tail vertex).

    Example
    -------
    >>> concat_ranges(np.array([0, 5]), np.array([2, 8]))
    (array([0, 1, 5, 6, 7]), array([0, 0, 1, 1, 1]))
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    if starts.shape != ends.shape:
        raise ValueError("starts and ends must have equal shape")
    counts = ends - starts
    if np.any(counts < 0):
        raise ValueError("ranges must have non-negative length")
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    owners = np.repeat(np.arange(starts.size, dtype=np.int64), counts)
    # Within each range the output must count up from `start`; np.arange over
    # the whole output minus the cumulative offset of the range start gives
    # exactly that.
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    indices = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    indices += np.repeat(starts, counts)
    return indices, owners
