"""Ablation — weight distributions and the uniform-weight assumption.

Two questions the paper leaves open:

1. **Where does the best Δ move** when weights are not uniform? The Δ
   sweep is repeated under uniform, exponential (mostly light edges) and
   bimodal (1 or 255) distributions.
2. **How robust is the expectation estimator** (which hard-codes the
   uniform assumption, Section III-C) when the assumption breaks? Under
   bimodal weights its interpolated request windows are maximally wrong;
   the per-vertex histogram estimator measures the real distribution.
   Both are scored against the exhaustive oracle.
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    BENCH_SCALE,
    cached_rmat,
    choose_root,
    choose_roots,
    print_table,
)
from repro.analysis.oracle import evaluate_decision_sequences
from repro.analysis.sweep import delta_sweep
from repro.core.config import SolverConfig
from repro.graph.weights import bimodal_weights, exponential_weights, reweight, uniform_weights

DISTRIBUTIONS = [
    ("uniform", uniform_weights),
    ("exponential", exponential_weights),
    ("bimodal", bimodal_weights),
]
DELTAS = (5, 25, 100)


@functools.lru_cache(maxsize=1)
def graphs():
    base = cached_rmat(BENCH_SCALE - 2, "rmat1")
    return {
        name: reweight(base, gen, seed=11).sorted_by_weight()
        for name, gen in DISTRIBUTIONS
    }


@functools.lru_cache(maxsize=1)
def compute_delta_rows():
    rows = []
    for name, graph in graphs().items():
        root = choose_root(graph, seed=0)
        for r in delta_sweep(graph, root, DELTAS, algorithm="delta",
                             num_ranks=8, threads_per_rank=8):
            rows.append({"weights": name, **r})
    return rows


@functools.lru_cache(maxsize=1)
def compute_estimator_rows():
    rows = []
    for name, graph in graphs().items():
        roots = choose_roots(graph, 5, seed=4)
        for estimator in ("expectation", "histogram"):
            optimal = 0
            worst = 1.0
            for root in roots:
                cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                                   use_hybrid=True,
                                   pushpull_estimator=estimator,
                                   histogram_bins=32)
                rep = evaluate_decision_sequences(
                    graph, int(root), config=cfg,
                    num_ranks=4, threads_per_rank=4,
                )
                optimal += rep.heuristic_is_optimal
                worst = max(worst, rep.slowdown_vs_best)
            rows.append(
                {
                    "weights": name,
                    "estimator": estimator,
                    "optimal": f"{optimal}/{len(roots)}",
                    "optimal_count": optimal,
                    "worst_slowdown": worst,
                }
            )
    return rows


def test_ablation_weights_delta_sweep(benchmark):
    rows = benchmark.pedantic(compute_delta_rows, rounds=1, iterations=1)
    print_table(rows, "Ablation — Δ sweep under different weight distributions")
    # Under every distribution some mid Δ beats at least one extreme;
    # specifics shift with the distribution (that is the point).
    for name, _ in DISTRIBUTIONS:
        sub = {r["delta"]: r["gteps"] for r in rows if r["weights"] == name}
        assert max(sub.values()) > 0


def test_ablation_weights_estimators(benchmark):
    rows = benchmark.pedantic(compute_estimator_rows, rounds=1, iterations=1)
    print_table(
        [{k: v for k, v in r.items() if k != "optimal_count"} for r in rows],
        "Ablation — estimator robustness to the weight distribution",
    )
    by = {(r["weights"], r["estimator"]): r for r in rows}
    # On uniform weights both estimators are near-optimal.
    assert by[("uniform", "expectation")]["worst_slowdown"] < 1.3
    # The histogram estimator never trails the expectation estimator by
    # much on any distribution (it measures instead of assuming).
    for name, _ in DISTRIBUTIONS:
        assert (
            by[(name, "histogram")]["optimal_count"]
            >= by[(name, "expectation")]["optimal_count"] - 1
        )
        assert by[(name, "histogram")]["worst_slowdown"] < 1.5


if __name__ == "__main__":
    print_table(compute_delta_rows(), "Δ sweep by weight distribution")
    print_table(compute_estimator_rows(), "estimator robustness")
