"""Graph persistence: npz round trip and edge-list text files.

Keeps the benchmark harness honest about graph identity across runs: a
generated graph can be saved once and reloaded bit-identically.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.builder import from_undirected_edges
from repro.graph.csr import CSRGraph

__all__ = ["save_npz", "load_npz", "write_edge_list", "read_edge_list"]


def save_npz(graph: CSRGraph, path: str | Path) -> None:
    """Save a graph to a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        indptr=graph.indptr,
        adj=graph.adj,
        weights=graph.weights,
        undirected=np.array([graph.undirected]),
    )


def load_npz(path: str | Path) -> CSRGraph:
    """Load a graph previously saved with :func:`save_npz`."""
    with np.load(Path(path)) as data:
        return CSRGraph(
            indptr=data["indptr"],
            adj=data["adj"],
            weights=data["weights"],
            undirected=bool(data["undirected"][0]),
        )


def write_edge_list(graph: CSRGraph, path: str | Path) -> int:
    """Write ``tail head weight`` lines (each undirected edge once).

    Returns the number of lines written.
    """
    tails, heads, weights = graph.to_edge_list()
    if graph.undirected:
        keep = tails < heads
        tails, heads, weights = tails[keep], heads[keep], weights[keep]
    arr = np.column_stack([tails, heads, weights])
    np.savetxt(Path(path), arr, fmt="%d")
    return int(arr.shape[0])


def read_edge_list(path: str | Path, num_vertices: int | None = None) -> CSRGraph:
    """Read an undirected ``tail head weight`` edge-list file."""
    arr = np.loadtxt(Path(path), dtype=np.int64, ndmin=2)
    if arr.size == 0:
        tails = heads = weights = np.empty(0, dtype=np.int64)
    else:
        if arr.shape[1] != 3:
            raise ValueError("edge list must have three columns: tail head weight")
        tails, heads, weights = arr[:, 0], arr[:, 1], arr[:, 2]
    if num_vertices is None:
        num_vertices = int(max(tails.max(initial=-1), heads.max(initial=-1)) + 1)
    return from_undirected_edges(tails, heads, weights, num_vertices)
