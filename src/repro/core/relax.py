"""Vectorised relaxation application.

A relaxation batch is a pair of arrays ``(dst, nd)``: proposed new tentative
distances for destination vertices. Applying a batch is a grouped min-reduce
(``np.minimum.at``), the vectorised equivalent of the paper's L2-atomic
min-updates. The set of vertices whose distance actually decreased — the
next phase's candidates — falls out of comparing the touched entries before
and after.
"""

from __future__ import annotations

import numpy as np

__all__ = ["apply_relaxations"]


def apply_relaxations(
    d: np.ndarray, dst: np.ndarray, nd: np.ndarray
) -> np.ndarray:
    """Apply ``d[dst] = min(d[dst], nd)`` elementwise; return changed vertices.

    Parameters
    ----------
    d:
        Tentative-distance array, modified in place.
    dst:
        Destination vertex per relaxation record (duplicates allowed).
    nd:
        Proposed distance per record.

    Returns
    -------
    Sorted unique array of vertices whose tentative distance decreased.
    """
    dst = np.asarray(dst, dtype=np.int64)
    nd = np.asarray(nd, dtype=np.int64)
    if dst.shape != nd.shape:
        raise ValueError("dst and nd must align")
    if dst.size == 0:
        return np.empty(0, dtype=np.int64)
    # Early filter against the pre-application values: drop records that
    # cannot improve. Duplicate destinations are still resolved by the
    # grouped minimum below.
    improving = nd < d[dst]
    if not improving.any():
        return np.empty(0, dtype=np.int64)
    dst = dst[improving]
    nd = nd[improving]
    touched = np.unique(dst)
    before = d[touched].copy()
    np.minimum.at(d, dst, nd)
    return touched[d[touched] < before]
