"""RetryPolicy: backoff arithmetic, class filters, hedging knobs."""

import pytest

from repro.serve.retry import FAILURE_CLASSES, RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.retry_on == FAILURE_CLASSES
        assert not policy.hedging

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_s": -1.0},
            {"backoff_multiplier": 0.5},
            {"backoff_cap_s": -0.1},
            {"retry_on": ("error", "bogus")},
            {"hedge_after_s": -0.01},
            {"hedge_budget": -1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBackoff:
    def test_exponential_with_cap(self):
        policy = RetryPolicy(
            backoff_base_s=0.001, backoff_multiplier=2.0, backoff_cap_s=0.003
        )
        assert policy.backoff(1) == pytest.approx(0.001)
        assert policy.backoff(2) == pytest.approx(0.002)
        assert policy.backoff(3) == pytest.approx(0.003)  # capped
        assert policy.backoff(10) == pytest.approx(0.003)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestBudget:
    def test_allows_respects_class_filter(self):
        policy = RetryPolicy(max_attempts=3, retry_on=("timeout",))
        assert policy.allows("timeout", 1)
        assert not policy.allows("error", 1)
        assert not policy.retries("corrupt")

    def test_allows_respects_attempt_budget(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.allows("error", 1)
        assert not policy.allows("error", 2)

    def test_hedging_requires_threshold_and_budget(self):
        assert RetryPolicy(hedge_after_s=0.01).hedging
        assert not RetryPolicy(hedge_after_s=0.01, hedge_budget=0).hedging
        assert not RetryPolicy().hedging
