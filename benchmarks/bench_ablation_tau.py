"""Ablation — hybridization threshold τ (Section III-D).

The paper recommends τ = 0.4 after experimentation. This ablation sweeps τ
from 0 (switch to Bellman-Ford immediately) to 1 (never switch) on both
families and checks that the recommended value sits in the sweet spot:
switching too early inflates relaxations (Bellman-Ford re-relaxes), too
late keeps paying bucket overheads.
"""

from __future__ import annotations

import functools

import pytest

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    BENCH_SCALE,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
)
from repro.core.config import SolverConfig
from repro.core.solver import solve_sssp

TAUS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


@functools.lru_cache(maxsize=1)
def compute_rows():
    rows = []
    machine = default_machine(8)
    for family in ("rmat1", "rmat2"):
        graph = cached_rmat(BENCH_SCALE, family)
        root = choose_root(graph, seed=0)
        for tau in TAUS:
            cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                               use_hybrid=True, tau=tau)
            res = solve_sssp(graph, root, algorithm=f"opt-tau{tau}",
                             config=cfg, machine=machine)
            rows.append(
                {
                    "family": family.upper(),
                    "tau": tau,
                    "gteps": res.gteps,
                    "buckets": res.metrics.buckets_processed,
                    "relaxations": res.metrics.total_relaxations,
                    "bkt_ms": res.cost.bucket_time * 1e3,
                }
            )
    return rows


def test_ablation_tau(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Ablation — hybrid switch threshold τ (paper: 0.4)")
    for family in ("RMAT1", "RMAT2"):
        sub = {r["tau"]: r for r in rows if r["family"] == family}
        # relaxations decrease monotonically as the switch is delayed
        relax = [sub[t]["relaxations"] for t in TAUS]
        assert all(b <= a for a, b in zip(relax, relax[1:]))
        # bucket overhead increases as the switch is delayed
        assert sub[1.0]["bkt_ms"] > sub[0.0]["bkt_ms"]
        # the paper's τ=0.4 performs within 20% of the best sweep point
        best = max(r["gteps"] for r in sub.values())
        assert sub[0.4]["gteps"] > 0.8 * best


if __name__ == "__main__":
    print_table(compute_rows(), "Ablation — hybrid switch threshold τ")
