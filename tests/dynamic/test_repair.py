"""Incremental SSSP repair: bit-identity against fresh solves.

The headline property of DESIGN.md §15: for every snapshot of a
randomized insert/delete/reweight stream, repairing the previous
snapshot's distances yields **bit-identical** distances to a fresh solve
of the new snapshot — under the Δ-stepping strategy and a delta-free
strategy, checked against both the orchestrated solver and the SPMD
engine. Shortest distances over int64 weights are unique, so exactness
and bit-identity coincide; parent trees additionally pin the
deterministic tie-break of the tree extraction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import preset
from repro.core.paths import build_parent_tree
from repro.core.solver import solve_sssp
from repro.dynamic.repair import repair_sssp
from repro.dynamic.updates import UpdateBatch, apply_batch, random_update_batch
from repro.dynamic.versioner import GraphVersioner
from repro.graph.builder import from_undirected_edges
from repro.graph.rmat import rmat_graph
from repro.runtime.machine import MachineConfig
from repro.spmd import spmd_delta_stepping

MACHINE = MachineConfig(num_ranks=4, threads_per_rank=4)

#: Δ-stepping plus one delta-free windowed strategy (acceptance gate).
STRATEGIES = ["opt", "rho"]


def fresh_orchestrated(graph, root, algorithm):
    return solve_sssp(
        graph, root, algorithm=algorithm, delta=25, machine=MACHINE
    ).distances


def fresh_spmd(graph, root):
    distances, _ = spmd_delta_stepping(graph, root, MACHINE, delta=25)
    return distances


@pytest.mark.parametrize("algorithm", STRATEGIES)
class TestRepairStream:
    """Fixed-seed randomized update streams, repaired snapshot by snapshot."""

    def test_stream_bit_identity_both_engines(self, algorithm):
        graph = rmat_graph(8, seed=11)
        root = int(np.flatnonzero(graph.degrees > 0)[0])
        versioner = GraphVersioner(
            graph, machine=MACHINE, config=preset(algorithm, 25), retention=8
        )
        d = fresh_orchestrated(graph, root, algorithm)
        rng = np.random.default_rng(23)
        fallbacks = 0
        for _ in range(6):
            snap, _ = versioner.apply(
                random_update_batch(
                    versioner.current.graph, rng, churn_fraction=0.02
                )
            )
            ctx = versioner.context_for(snap.snapshot_id)
            result = repair_sssp(ctx, root, d, snap.delta)
            if result.fallback:
                fallbacks += 1
                d = fresh_orchestrated(snap.graph, root, algorithm)
                continue
            d = result.distances
            np.testing.assert_array_equal(
                d, fresh_orchestrated(snap.graph, root, algorithm)
            )
            np.testing.assert_array_equal(d, fresh_spmd(snap.graph, root))
        assert fallbacks <= 1  # 2% churn should almost never trip the gate

    def test_parent_trees_match_fresh_extraction(self, algorithm):
        graph = rmat_graph(7, seed=13)
        root = int(np.flatnonzero(graph.degrees > 0)[0])
        versioner = GraphVersioner(
            graph, machine=MACHINE, config=preset(algorithm, 25), retention=8
        )
        d = fresh_orchestrated(graph, root, algorithm)
        rng = np.random.default_rng(29)
        for _ in range(4):
            snap, _ = versioner.apply(
                random_update_batch(
                    versioner.current.graph, rng, churn_fraction=0.02
                )
            )
            ctx = versioner.context_for(snap.snapshot_id)
            result = repair_sssp(ctx, root, d, snap.delta, with_parents=True)
            if result.fallback:
                d = fresh_orchestrated(snap.graph, root, algorithm)
                continue
            d = result.distances
            fresh_d = fresh_orchestrated(snap.graph, root, algorithm)
            np.testing.assert_array_equal(d, fresh_d)
            # Parent extraction is deterministic given (graph, distances);
            # compare on the context's graph — the one repair used.
            np.testing.assert_array_equal(
                result.parents, build_parent_tree(ctx.graph, fresh_d, root)
            )

    def test_delete_heavy_stream_disconnects_correctly(self, algorithm):
        """Deletions orphan whole subtrees; repaired INF set must match."""
        graph = rmat_graph(7, seed=17)
        root = int(np.flatnonzero(graph.degrees > 0)[0])
        versioner = GraphVersioner(
            graph, machine=MACHINE, config=preset(algorithm, 25), retention=8
        )
        d = fresh_orchestrated(graph, root, algorithm)
        rng = np.random.default_rng(31)
        for _ in range(4):
            snap, _ = versioner.apply(
                random_update_batch(
                    versioner.current.graph,
                    rng,
                    churn_fraction=0.03,
                    insert_fraction=0.05,
                    delete_fraction=0.9,
                )
            )
            ctx = versioner.context_for(snap.snapshot_id)
            result = repair_sssp(ctx, root, d, snap.delta)
            if result.fallback:
                d = fresh_orchestrated(snap.graph, root, algorithm)
                continue
            d = result.distances
            np.testing.assert_array_equal(
                d, fresh_orchestrated(snap.graph, root, algorithm)
            )


class TestRepairMechanics:
    def make_ctx(self, graph, algorithm="opt"):
        from repro.core.context import make_context

        return make_context(graph, MACHINE, preset(algorithm, 25))

    def test_empty_delta_is_noop(self, path_graph):
        d = fresh_orchestrated(path_graph, 0, "opt")
        new_graph, delta = apply_batch(path_graph, UpdateBatch.build())
        result = repair_sssp(self.make_ctx(new_graph), 0, d, delta)
        assert not result.fallback
        assert result.dirty == 0
        assert result.frontier == 0
        np.testing.assert_array_equal(result.distances, d)

    def test_old_distances_never_mutated(self, path_graph):
        d = fresh_orchestrated(path_graph, 0, "opt")
        keep = d.copy()
        new_graph, delta = apply_batch(
            path_graph, UpdateBatch.build(deletes=([1], [2]))
        )
        repair_sssp(self.make_ctx(new_graph), 0, d, delta)
        np.testing.assert_array_equal(d, keep)

    def test_insert_shortcut_improves(self, path_graph):
        # path 0-5-1-3-2-7-3-1-4; insert 0-4 with weight 2.
        d = fresh_orchestrated(path_graph, 0, "opt")
        new_graph, delta = apply_batch(
            path_graph, UpdateBatch.build(inserts=([0], [4], [2]))
        )
        result = repair_sssp(self.make_ctx(new_graph), 0, d, delta)
        assert not result.fallback
        assert result.dirty == 0  # pure improvement: nothing orphaned
        np.testing.assert_array_equal(
            result.distances, fresh_orchestrated(new_graph, 0, "opt")
        )
        assert result.distances[4] == 2

    def test_delete_bridge_orphans_subtree(self, path_graph):
        # Deleting 1-2 cuts {2, 3, 4} from root 0 entirely.
        d = fresh_orchestrated(path_graph, 0, "opt")
        new_graph, delta = apply_batch(
            path_graph, UpdateBatch.build(deletes=([1], [2]))
        )
        result = repair_sssp(
            self.make_ctx(new_graph), 0, d, delta, max_dirty_fraction=1.0
        )
        assert not result.fallback
        assert result.dirty == 3
        np.testing.assert_array_equal(
            result.distances, fresh_orchestrated(new_graph, 0, "opt")
        )

    def test_cost_gate_falls_back(self, path_graph):
        d = fresh_orchestrated(path_graph, 0, "opt")
        new_graph, delta = apply_batch(
            path_graph, UpdateBatch.build(deletes=([1], [2]))
        )
        result = repair_sssp(
            self.make_ctx(new_graph), 0, d, delta, max_dirty_fraction=0.1
        )
        assert result.fallback
        assert result.reason == "dirty-region"
        assert result.distances is None

    def test_zero_weight_edges_handled_conservatively(self):
        # A zero-weight pair behind a deleted bridge must not self-certify.
        tails = np.array([0, 1, 2, 1])
        heads = np.array([1, 2, 3, 3])
        weights = np.array([4, 0, 0, 5])
        graph = from_undirected_edges(tails, heads, weights, 4)
        d = fresh_orchestrated(graph, 0, "opt")
        new_graph, delta = apply_batch(
            graph, UpdateBatch.build(deletes=([0], [1]))
        )
        result = repair_sssp(
            self.make_ctx(new_graph), 0, d, delta, max_dirty_fraction=1.0
        )
        if not result.fallback:
            np.testing.assert_array_equal(
                result.distances, fresh_orchestrated(new_graph, 0, "opt")
            )

    def test_requires_undirected(self):
        from repro.graph.builder import from_edges

        g = from_edges(
            np.array([0]), np.array([1]), np.array([1]), 2, undirected=False
        )
        with pytest.raises(ValueError, match="undirected"):
            repair_sssp(
                self.make_ctx_directed(g), 0, np.zeros(2, np.int64), None
            )

    def make_ctx_directed(self, graph):
        from repro.core.context import make_context

        return make_context(graph, MACHINE, preset("opt", 25))

    def test_rejects_wrong_root(self, path_graph):
        d = fresh_orchestrated(path_graph, 0, "opt")
        new_graph, delta = apply_batch(path_graph, UpdateBatch.build())
        ctx = self.make_ctx(new_graph)
        with pytest.raises(ValueError, match="root"):
            repair_sssp(ctx, 1, d, delta)  # d[1] != 0
        with pytest.raises(ValueError, match="range"):
            repair_sssp(ctx, 99, d, delta)


@settings(deadline=None, max_examples=20)
@given(
    seed=st.integers(0, 2**31 - 1),
    churn=st.floats(0.01, 0.08),
    algorithm=st.sampled_from(STRATEGIES),
)
def test_repair_matches_fresh_on_random_batches(seed, churn, algorithm):
    """Hypothesis sweep: any seeded batch on a scale-6 RMAT repairs to the
    exact fresh solution (or falls back, which is always safe)."""
    graph = rmat_graph(6, seed=7)
    root = int(np.flatnonzero(graph.degrees > 0)[0])
    d = fresh_orchestrated(graph, root, algorithm)
    rng = np.random.default_rng(seed)
    batch = random_update_batch(graph, rng, churn_fraction=churn)
    new_graph, delta = apply_batch(graph, batch)
    from repro.core.context import make_context

    ctx = make_context(new_graph, MACHINE, preset(algorithm, 25))
    result = repair_sssp(ctx, root, d, delta, max_dirty_fraction=1.0)
    assert not result.fallback  # gate disabled: repair must complete
    np.testing.assert_array_equal(
        result.distances, fresh_orchestrated(new_graph, root, algorithm)
    )
    np.testing.assert_array_equal(
        result.distances, fresh_spmd(new_graph, root)
    )
