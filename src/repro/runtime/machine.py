"""Machine model: shape and cost constants of the simulated system.

The constants are loosely calibrated to Blue Gene/Q (Section IV-A of the
paper): half-microsecond base network latency, SPI messaging sustaining tens
of millions of messages per second per node, 16 cores x 4-way SMT = 64
hardware threads per node, L2-atomic relaxations. Absolute values are *not*
meant to reproduce BG/Q seconds — only the relative magnitudes (compute per
relaxation vs. per-message latency vs. synchronization cost) that determine
which algorithm wins where. All constants are per-instance so experiments
can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineConfig", "BGQ_LIKE"]


@dataclass(frozen=True)
class MachineConfig:
    """Shape and timing constants of the simulated distributed machine.

    Time constants are in seconds.

    Attributes
    ----------
    num_ranks:
        Number of processing nodes (MPI-rank equivalents).
    threads_per_rank:
        Hardware threads per node cooperating on the node's vertices.
    t_relax:
        Compute cost of generating or applying one relaxation on a thread.
    t_request:
        Compute cost of generating or serving one pull request.
    t_scan:
        Cost of examining one vertex during bucket identification / active
        set construction.
    alpha:
        Per-message latency (one aggregated message per destination rank per
        superstep, the SPI active-message model).
    beta:
        Per-byte transfer cost (inverse network bandwidth per node).
    t_allreduce_base, t_allreduce_log:
        Cost of a small allreduce: ``base + log * log2(num_ranks)``.
    """

    num_ranks: int
    threads_per_rank: int = 64
    t_relax: float = 40e-9
    t_request: float = 30e-9
    t_scan: float = 4e-9
    alpha: float = 2e-6
    beta: float = 0.5e-9
    t_allreduce_base: float = 4e-6
    t_allreduce_log: float = 1.5e-6

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if self.threads_per_rank < 1:
            raise ValueError("threads_per_rank must be >= 1")
        for name in ("t_relax", "t_request", "t_scan", "alpha", "beta",
                     "t_allreduce_base", "t_allreduce_log"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total_threads(self) -> int:
        """Total hardware threads across the machine."""
        return self.num_ranks * self.threads_per_rank

    def allreduce_time(self) -> float:
        """Latency of one small allreduce across all ranks."""
        import math

        return self.t_allreduce_base + self.t_allreduce_log * math.log2(
            max(2, self.num_ranks)
        )

    def with_ranks(self, num_ranks: int) -> "MachineConfig":
        """Copy of this config with a different rank count (weak scaling)."""
        return replace(self, num_ranks=num_ranks)


def BGQ_LIKE(num_ranks: int, threads_per_rank: int = 64) -> MachineConfig:
    """A Blue Gene/Q-flavoured configuration with default cost constants."""
    return MachineConfig(num_ranks=num_ranks, threads_per_rank=threads_per_rank)
