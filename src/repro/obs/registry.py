"""Metrics registry: counters, gauges and histograms with Prometheus output.

A tiny in-process registry in the Prometheus data model. The tracer feeds
it per-record counters (records, bytes, wall/simulated seconds by kind) and
end-of-run gauges (the flat :meth:`~repro.runtime.metrics.Metrics.summary`);
benches and the CLI consume :meth:`MetricsRegistry.snapshot`, and
``--metrics-out`` writes :meth:`MetricsRegistry.prometheus_text` — the
standard text exposition format, scrapable as a node-exporter-style file.

Thread safety: all mutators and readers share one registry lock, so
:meth:`~MetricsRegistry.snapshot` / :meth:`~MetricsRegistry.prometheus_text`
see one *consistent* cut — a histogram's ``_sum``/``_count`` can never
disagree with its buckets under concurrent :meth:`~MetricsRegistry.observe`
(the serving plane observes from several worker threads at once). The
lock is uncontended in the hot path: the tracer batches per-record
counters and flushes once at :meth:`~repro.obs.tracer.Tracer.finish`.

Histograms optionally carry **exemplars** (DESIGN.md §14): the most
recent ``exemplar=`` reference observed per bucket — the serving plane
passes request ids, linking each latency bucket to a concrete request
whose wide event explains it. Exemplars ride on :meth:`snapshot` and
:meth:`~MetricsRegistry.exemplars`; :meth:`prometheus_text` stays the
classic text format (exemplars are an OpenMetrics extension; keeping the
exposition classic keeps every scraper and our CI checker happy).

No external dependency: the exposition format is a few lines of string
formatting, which keeps the registry importable everywhere the simulator
runs.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping

__all__ = ["MetricsRegistry", "DEFAULT_BUCKETS", "escape_label_value"]

DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0
)
"""Histogram bucket upper bounds in seconds (durations are the main use)."""

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    """Canonical hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format spec:
    backslash, double quote and line feed — in that order, so the
    backslashes introduced for ``"`` and ``\\n`` are not re-escaped."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_text(key: _LabelKey) -> str:
    """Render a label key as Prometheus ``{k="v",...}`` (empty for none)."""
    if not key:
        return ""
    inner = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in key)
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    """Format a sample value the way Prometheus text exposition expects."""
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Counters, gauges and histograms keyed by (name, label set).

    Metric names follow Prometheus conventions (``snake_case``, counters
    end in ``_total``). All three families share one namespace; registering
    the same name under two families is an error.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._types: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._counters: dict[str, dict[_LabelKey, float]] = {}
        self._gauges: dict[str, dict[_LabelKey, float]] = {}
        self._hists: dict[str, dict[_LabelKey, dict[str, Any]]] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    def _register(self, name: str, family: str, help_: str | None) -> None:
        seen = self._types.get(name)
        if seen is None:
            self._types[name] = family
            if help_:
                self._help[name] = help_
        elif seen != family:
            raise ValueError(
                f"metric {name!r} already registered as {seen}, not {family}"
            )

    def inc(
        self, name: str, value: float = 1.0, *, help: str | None = None, **labels
    ) -> None:
        """Increment counter ``name`` (monotone; negative deltas rejected)."""
        if value < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._register(name, "counter", help)
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + float(value)

    def set_gauge(
        self, name: str, value: float, *, help: str | None = None, **labels
    ) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        key = _label_key(labels)
        with self._lock:
            self._register(name, "gauge", help)
            self._gauges.setdefault(name, {})[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        *,
        buckets: Iterable[float] | None = None,
        help: str | None = None,
        exemplar: str | None = None,
        **labels,
    ) -> None:
        """Record one observation into histogram ``name``.

        ``buckets`` (upper bounds, ascending) is fixed at the histogram's
        first observation; later calls reuse it. ``exemplar`` (e.g. a
        request id) is remembered per bucket — the most recent reference
        observed in each — and surfaces via :meth:`exemplars` /
        :meth:`snapshot`, linking latency buckets back to wide events.
        """
        key = _label_key(labels)
        with self._lock:
            self._register(name, "histogram", help)
            if name not in self._buckets:
                self._buckets[name] = tuple(
                    buckets if buckets is not None else DEFAULT_BUCKETS
                )
            bounds = self._buckets[name]
            series = self._hists.setdefault(name, {})
            h = series.setdefault(
                key,
                {"counts": [0] * len(bounds), "sum": 0.0, "count": 0,
                 "exemplars": {}},
            )
            for i, bound in enumerate(bounds):
                if value <= bound:
                    h["counts"][i] += 1
            h["sum"] += float(value)
            h["count"] += 1
            if exemplar is not None:
                # Exemplar slot = the tightest bucket covering the value
                # (+Inf when it overflows every bound), last write wins.
                slot = "+Inf"
                for bound in bounds:
                    if value <= bound:
                        slot = _fmt_value(bound)
                        break
                h["exemplars"][slot] = {
                    "ref": str(exemplar), "value": float(value)
                }

    # ------------------------------------------------------------------
    def exemplars(self, name: str, **labels) -> dict[str, dict[str, Any]]:
        """Exemplars of one histogram series: ``{le: {ref, value}}``.

        Empty when the histogram (or series) is unknown or no observation
        carried an ``exemplar=`` reference.
        """
        key = _label_key(labels)
        with self._lock:
            h = self._hists.get(name, {}).get(key)
            if h is None:
                return {}
            return {
                slot: dict(ex) for slot, ex in h.get("exemplars", {}).items()
            }

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of every series (consumed by benches and tests).

        Counter/gauge samples are keyed ``name{k="v"}``; histograms expose
        ``sum``/``count``/``buckets`` (and ``exemplars``, when any were
        observed) sub-dicts under the bare name. Taken under the registry
        lock as one consistent cut: no concurrently-running ``observe``
        can make ``sum``/``count`` disagree with the bucket counts.
        """
        out: dict[str, Any] = {}
        with self._lock:
            for family in (self._counters, self._gauges):
                for name, series in family.items():
                    for key, value in series.items():
                        out[name + _label_text(key)] = value
            for name, series in self._hists.items():
                bounds = self._buckets[name]
                for key, h in series.items():
                    base = name + _label_text(key)
                    row: dict[str, Any] = {
                        "sum": h["sum"],
                        "count": h["count"],
                        "buckets": {
                            _fmt_value(b): c for b, c in zip(bounds, h["counts"])
                        },
                    }
                    if h.get("exemplars"):
                        row["exemplars"] = {
                            slot: dict(ex)
                            for slot, ex in h["exemplars"].items()
                        }
                    out[base] = row
        return out

    def prometheus_text(self) -> str:
        """Render every metric in the Prometheus text exposition format.

        Rendered under the registry lock — one consistent cut, same
        guarantee as :meth:`snapshot`.
        """
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._types):
                family = self._types[name]
                if name in self._help:
                    lines.append(f"# HELP {name} {self._help[name]}")
                lines.append(f"# TYPE {name} {family}")
                if family == "counter":
                    series = self._counters.get(name, {})
                    for key in sorted(series):
                        lines.append(
                            f"{name}{_label_text(key)} {_fmt_value(series[key])}"
                        )
                elif family == "gauge":
                    series = self._gauges.get(name, {})
                    for key in sorted(series):
                        lines.append(
                            f"{name}{_label_text(key)} {_fmt_value(series[key])}"
                        )
                else:
                    bounds = self._buckets[name]
                    for key, h in sorted(self._hists.get(name, {}).items()):
                        # ``counts`` is already cumulative (observe() bumps every
                        # bucket whose bound covers the value), as the text
                        # format's ``le`` semantics require.
                        for bound, count in zip(bounds, h["counts"]):
                            le = _label_key(dict(key) | {"le": _fmt_value(bound)})
                            lines.append(
                                f"{name}_bucket{_label_text(le)} {count}"
                            )
                        inf = _label_key(dict(key) | {"le": "+Inf"})
                        lines.append(
                            f"{name}_bucket{_label_text(inf)} {h['count']}"
                        )
                        lines.append(
                            f"{name}_sum{_label_text(key)} {_fmt_value(h['sum'])}"
                        )
                        lines.append(f"{name}_count{_label_text(key)} {h['count']}")
        return "\n".join(lines) + "\n"
