"""Push–pull decision heuristic (Section III-C).

At the end of each bucket's short stage the algorithm must pick the model
for the long-edge phase. Two estimators are provided, selected by
``SolverConfig.pushpull_estimator``:

**expectation** (the paper's heuristic) — prices each model from cheap
aggregates: the push volume is the (preprocessed) long-degree sum of the
bucket members, exact by construction; the pull volume uses the
uniform-weight expectation trick for the number of eq. (1) requests and
bounds responses by requests. A *maximum-per-rank* term models the request
imbalance the paper added after finding the pure volume heuristic picks
wrong for ~15 % of the cases; ``imbalance_weight`` scales it (0 recovers
the volume-only variant, used as an ablation).

**exact** — prices both models with the cost model itself, from exactly
materialised record sets (the binary-search/histogram strategies the paper
sketches, taken to their limit). Since push and pull relax the same useful
edges, per-bucket costs are independent, so the greedy exact choice is the
globally optimal decision sequence — this is the configuration that
reproduces the paper's Section IV-G result (heuristic optimal on all test
cases).

Either way the decision consumes two small allreduces (sum and max
aggregates), which are charged against the run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.context import ExecutionContext
from repro.core.distances import INF
from repro.runtime.comm import RELAX_RECORD_BYTES, REQUEST_RECORD_BYTES
from repro.runtime.work import thread_work, thread_work_balanced

__all__ = [
    "PushPullEstimate",
    "expectation_partials",
    "combine_expectation_costs",
    "estimate_models",
    "estimate_models_histogram",
    "estimate_models_exact",
    "decide_mode",
]


@dataclass(frozen=True)
class PushPullEstimate:
    """Cost estimates for the two long-phase models of one bucket."""

    push_records: float
    push_max_rank_records: float
    pull_requests: float
    pull_max_rank_requests: float
    push_cost: float
    pull_cost: float
    estimator: str = "expectation"

    @property
    def choice(self) -> str:
        """Model with the lower estimated cost."""
        return "push" if self.push_cost <= self.pull_cost else "pull"


# ----------------------------------------------------------------------
# Expectation estimator (the paper's heuristic)
# ----------------------------------------------------------------------
def expectation_partials(
    cfg,
    w_max: int,
    lo: int,
    member_long_degrees: np.ndarray,
    d_later: np.ndarray,
    later_total_in_degrees: np.ndarray | None,
    later_long_in_degrees: np.ndarray | None,
) -> tuple[float, float]:
    """One rank's (push, pull) partial sums of the expectation estimator.

    This is the single source of truth for the per-vertex volume formulas:
    the orchestrated estimator evaluates it per rank block and the SPMD
    engine per rank slice, so both engines combine bit-identical partials
    and can never drift apart. Push volume is the long-degree sum over the
    rank's bucket members; pull volume is the uniform-weight expectation of
    eq.-(1) requests over the rank's later vertices. Pass
    ``later_total_in_degrees`` (all incoming arcs) under IOS and
    ``later_long_in_degrees`` (long incoming arcs) otherwise — the unused
    one may be ``None``.
    """
    push = float(np.asarray(member_long_degrees).astype(np.float64).sum())
    d_later = np.asarray(d_later)
    if d_later.size == 0:
        return push, 0.0
    d_later_f = d_later.astype(np.float64)
    window = np.where(d_later_f >= INF, np.float64(w_max), d_later_f - lo)
    if cfg.use_ios:
        # Requests may ride any incoming arc with w < d(v) - kΔ.
        deg = np.asarray(later_total_in_degrees).astype(np.float64)
        frac = np.clip(window / w_max, 0.0, 1.0)
    else:
        # Long arcs only: weight window [Δ, d(v) - kΔ).
        deg = np.asarray(later_long_in_degrees).astype(np.float64)
        frac = np.clip(
            (window - cfg.delta) / max(w_max - cfg.delta + 1, 1), 0.0, 1.0
        )
    return push, float((deg * frac).sum())


def combine_expectation_costs(
    cfg,
    machine,
    push_partials: list[float],
    pull_partials: list[float],
) -> PushPullEstimate:
    """Fold per-rank partials into the two model costs (sum/max aggregate).

    The combination is the allreduce pair both engines charge: totals by
    sum, the imbalance terms by per-rank maximum.
    """
    p = machine.num_ranks
    push_records = sum(push_partials)
    push_max = max(push_partials)
    pull_requests = sum(pull_partials)
    pull_max = max(pull_partials)
    pull_responses = pull_requests  # paper's upper bound, good in practice

    push_cost = (
        machine.beta * push_records * RELAX_RECORD_BYTES
        + machine.alpha * p
        + cfg.imbalance_weight * machine.t_relax * push_max
    )
    pull_cost = (
        machine.beta
        * (pull_requests * REQUEST_RECORD_BYTES + pull_responses * RELAX_RECORD_BYTES)
        + machine.alpha * 2 * p
        + cfg.imbalance_weight * machine.t_request * pull_max
    )
    return PushPullEstimate(
        push_records=push_records,
        push_max_rank_records=push_max,
        pull_requests=pull_requests,
        pull_max_rank_requests=pull_max,
        push_cost=push_cost,
        pull_cost=pull_cost,
        estimator="expectation",
    )


def estimate_models(
    ctx: ExecutionContext,
    d: np.ndarray,
    settled: np.ndarray,
    members: np.ndarray,
    k: int,
) -> PushPullEstimate:
    """Expectation-based push/pull estimate for bucket ``k`` (members settled).

    Evaluates :func:`expectation_partials` per rank block (members and
    later vertices are sorted, so the contiguous partition splits them with
    one ``searchsorted`` over the boundaries) and folds the partials with
    :func:`combine_expectation_costs` — the exact computation the SPMD
    engine performs from its rank-local slices.
    """
    cfg = ctx.config
    machine = ctx.machine
    delta = cfg.delta
    lo = k * delta
    hi = lo + delta
    p = machine.num_ranks
    members = np.asarray(members, dtype=np.int64)

    later = np.nonzero(~settled & (d >= hi))[0].astype(np.int64)
    w_max = max(ctx.graph.max_weight, 1)
    in_graph = ctx.in_graph
    bounds = ctx.partition.boundaries
    m_cuts = np.searchsorted(members, bounds)
    l_cuts = np.searchsorted(later, bounds)
    push_partials: list[float] = []
    pull_partials: list[float] = []
    for r in range(p):
        m_r = members[m_cuts[r] : m_cuts[r + 1]]
        l_r = later[l_cuts[r] : l_cuts[r + 1]]
        if cfg.use_ios:
            total_in = in_graph.indptr[l_r + 1] - in_graph.indptr[l_r]
            long_in = None
        else:
            total_in = None
            long_in = ctx.in_long_degrees[l_r]
        push_r, pull_r = expectation_partials(
            cfg, w_max, lo, ctx.long_degrees[m_r], d[l_r], total_in, long_in
        )
        push_partials.append(push_r)
        pull_partials.append(pull_r)
    return combine_expectation_costs(cfg, machine, push_partials, pull_partials)


# ----------------------------------------------------------------------
# Histogram estimator (the paper's suggested alternative, Section III-C)
# ----------------------------------------------------------------------
def estimate_models_histogram(
    ctx: ExecutionContext,
    d: np.ndarray,
    settled: np.ndarray,
    members: np.ndarray,
    k: int,
) -> PushPullEstimate:
    """Histogram-based push/pull estimate for bucket ``k``.

    Like :func:`estimate_models` but the per-vertex request counts come
    from precomputed weight histograms (``#{arcs with w < d(v) - kΔ}``
    answered in O(1) per vertex) instead of the uniform-distribution
    expectation — the "histograms could be used" strategy of Section III-C.
    Requires ``make_context`` to have built ``ctx.weight_histogram``.
    """
    if ctx.weight_histogram is None:
        raise ValueError(
            "histogram estimator requires pushpull_estimator='histogram' at "
            "context construction"
        )
    cfg = ctx.config
    machine = ctx.machine
    delta = cfg.delta
    lo = k * delta
    hi = lo + delta
    p = machine.num_ranks
    members = np.asarray(members, dtype=np.int64)

    push_per_vertex = ctx.long_degrees[members].astype(np.float64)
    push_records = float(push_per_vertex.sum())
    if members.size:
        owners = np.asarray(ctx.partition.owner(members), dtype=np.int64)
        push_max = float(
            np.bincount(owners, weights=push_per_vertex, minlength=p).max()
        )
    else:
        push_max = 0.0

    later = np.nonzero(~settled & (d >= hi))[0].astype(np.int64)
    if later.size:
        hist = ctx.weight_histogram
        w_max = max(ctx.graph.max_weight, 1)
        d_later = d[later].astype(np.float64)
        window = np.where(d_later >= INF, np.float64(w_max + 1), d_later - lo)
        req_per_vertex = hist.count_below(later, window)
        if not cfg.use_ios:
            # Short arcs (w < Δ) never ride requests without IOS.
            req_per_vertex = np.maximum(
                req_per_vertex - ctx.in_short_offsets[later], 0.0
            )
        pull_requests = float(req_per_vertex.sum())
        owners = np.asarray(ctx.partition.owner(later), dtype=np.int64)
        pull_max = float(
            np.bincount(owners, weights=req_per_vertex, minlength=p).max()
        )
    else:
        pull_requests = 0.0
        pull_max = 0.0
    pull_responses = pull_requests

    push_cost = (
        machine.beta * push_records * RELAX_RECORD_BYTES
        + machine.alpha * p
        + cfg.imbalance_weight * machine.t_relax * push_max
    )
    pull_cost = (
        machine.beta
        * (pull_requests * REQUEST_RECORD_BYTES + pull_responses * RELAX_RECORD_BYTES)
        + machine.alpha * 2 * p
        + cfg.imbalance_weight * machine.t_request * pull_max
    )
    return PushPullEstimate(
        push_records=push_records,
        push_max_rank_records=push_max,
        pull_requests=pull_requests,
        pull_max_rank_requests=pull_max,
        push_cost=push_cost,
        pull_cost=pull_cost,
        estimator="histogram",
    )


# ----------------------------------------------------------------------
# Exact estimator (cost-model pricing of materialised record sets)
# ----------------------------------------------------------------------
def _compute_cost_max(
    ctx: ExecutionContext,
    vertices: np.ndarray,
    units: np.ndarray | None,
    t_unit: float,
) -> float:
    """Busiest-thread compute time, mirroring ``ExecutionContext.charge``."""
    if ctx.config.intra_lb:
        tw = thread_work_balanced(
            vertices,
            units,
            ctx.partition,
            ctx.machine,
            ctx.heavy_threshold,
            thread_map=ctx.thread_map,
        )
    else:
        tw = thread_work(
            vertices, units, ctx.partition, ctx.machine, thread_map=ctx.thread_map
        )
    return float(tw.max()) * t_unit if tw.size else 0.0


def _exchange_cost(
    ctx: ExecutionContext,
    src_vertices: np.ndarray,
    dst_vertices: np.ndarray,
    record_bytes: int,
) -> float:
    """α–β price of an exchange, mirroring ``Communicator.exchange_by_vertex``."""
    p = ctx.machine.num_ranks
    src = np.asarray(ctx.partition.owner(src_vertices), dtype=np.int64)
    dst = np.asarray(ctx.partition.owner(dst_vertices), dtype=np.int64)
    off = src != dst
    src, dst = src[off], dst[off]
    if src.size == 0:
        return 0.0
    out_bytes = np.bincount(src, minlength=p) * record_bytes
    in_bytes = np.bincount(dst, minlength=p) * record_bytes
    bytes_max = int((out_bytes + in_bytes).max())
    pairs = np.unique(src * p + dst)
    msgs_max = int(np.bincount(pairs // p, minlength=p).max())
    return ctx.machine.alpha * msgs_max + ctx.machine.beta * bytes_max


def estimate_models_exact(
    ctx: ExecutionContext,
    d: np.ndarray,
    settled: np.ndarray,
    members: np.ndarray,
    k: int,
) -> PushPullEstimate:
    """Price both long-phase models exactly with the machine cost model.

    Materialises the push records and pull requests/responses (without
    touching the distance array) and sums the same compute/exchange terms
    the accounting runtime would record for each branch.
    """
    from repro.core.pruning import (
        gather_pull_requests,
        gather_push_records,
        later_vertices,
        member_mask,
    )

    machine = ctx.machine
    members = np.asarray(members, dtype=np.int64)

    src, dst, _, scanned = gather_push_records(ctx, d, members, k)
    push_cost = (
        _compute_cost_max(ctx, members, scanned, machine.t_relax)
        + _exchange_cost(ctx, src, dst, RELAX_RECORD_BYTES)
        + _compute_cost_max(ctx, dst, None, machine.t_relax)
    )

    later = later_vertices(ctx, d, settled, k)
    req_v, req_u, _, gen_units = gather_pull_requests(ctx, d, later, k)
    respond = member_mask(ctx, members)[req_u] if req_u.size else np.empty(0, bool)
    resp_v = req_v[respond]
    resp_u = req_u[respond]
    pull_cost = (
        _compute_cost_max(ctx, later, gen_units, machine.t_request)
        + _exchange_cost(ctx, req_v, req_u, REQUEST_RECORD_BYTES)
        + _compute_cost_max(ctx, req_u, None, machine.t_request)
        + _exchange_cost(ctx, resp_u, resp_v, RELAX_RECORD_BYTES)
        + _compute_cost_max(ctx, resp_v, None, machine.t_relax)
    )

    p = machine.num_ranks
    push_max = (
        float(
            np.bincount(
                np.asarray(ctx.partition.owner(members), dtype=np.int64),
                weights=ctx.long_degrees[members].astype(np.float64),
                minlength=p,
            ).max()
        )
        if members.size
        else 0.0
    )
    pull_max = (
        float(
            np.bincount(
                np.asarray(ctx.partition.owner(req_v), dtype=np.int64), minlength=p
            ).max()
        )
        if req_v.size
        else 0.0
    )
    return PushPullEstimate(
        push_records=float(dst.size),
        push_max_rank_records=push_max,
        pull_requests=float(req_v.size),
        pull_max_rank_requests=pull_max,
        push_cost=push_cost,
        pull_cost=pull_cost,
        estimator="exact",
    )


# ----------------------------------------------------------------------
# Decision
# ----------------------------------------------------------------------
def decide_mode(
    ctx: ExecutionContext,
    d: np.ndarray,
    settled: np.ndarray,
    members: np.ndarray,
    k: int,
    bucket_ordinal: int,
) -> tuple[str, PushPullEstimate | None]:
    """Pick the long-phase model for this bucket.

    Honors forced modes and oracle replay sequences; in ``auto`` mode runs
    the configured estimator (charging its two decision allreduces).
    """
    cfg = ctx.config
    if not cfg.use_pruning:
        return "push", None
    if cfg.pushpull_mode == "push":
        return "push", None
    if cfg.pushpull_mode == "pull":
        return "pull", None
    if cfg.pushpull_mode == "sequence" and bucket_ordinal < len(
        cfg.pushpull_sequence
    ):
        return cfg.pushpull_sequence[bucket_ordinal], None
    if cfg.pushpull_estimator == "exact":
        est = estimate_models_exact(ctx, d, settled, members, k)
    elif cfg.pushpull_estimator == "histogram":
        est = estimate_models_histogram(ctx, d, settled, members, k)
    else:
        est = estimate_models(ctx, d, settled, members, k)
    # The decision aggregates are part of the pruning long-phase machinery,
    # not of bucket identification, so they bill to OtherTime.
    ctx.comm.allreduce(2, phase_kind="long")
    if ctx.tracer is not None:
        ctx.tracer.instant(
            "pushpull-decision",
            bucket=int(k),
            mode=est.choice,
            estimator=est.estimator,
            push_cost=est.push_cost,
            pull_cost=est.pull_cost,
        )
    return est.choice, est
