"""Directed-graph support: the pull model over explicit reverse adjacency.

On undirected (symmetrized) graphs a vertex's adjacency list doubles as its
in-edge list, which is what the paper's pull model implicitly relies on.
The engine also supports genuinely directed graphs via a reverse graph in
the execution context; these tests pin that path.
"""

import numpy as np
import pytest

from repro.core.config import DELTA_INFINITY, SolverConfig
from repro.core.context import make_context
from repro.core.distances import INF
from repro.core.reference import dijkstra_reference
from repro.core.solver import solve_sssp
from repro.core.validation import validate_sssp_structure
from repro.graph.builder import from_edges
from repro.runtime.machine import MachineConfig


def directed_cycle(n=6, w=3):
    t = np.arange(n)
    h = (t + 1) % n
    return from_edges(t, h, np.full(n, w), n)


def random_directed(seed=0, n=64, m=400):
    rng = np.random.default_rng(seed)
    return from_edges(
        rng.integers(0, n, m),
        rng.integers(0, n, m),
        rng.integers(1, 60, m),
        n,
    )


class TestContextReverseTables:
    def test_reverse_built_for_directed(self):
        g = random_directed()
        ctx = make_context(g, MachineConfig(num_ranks=2, threads_per_rank=2),
                           SolverConfig(delta=25))
        assert ctx.reverse_graph is not None
        assert ctx.in_graph is ctx.reverse_graph
        # reverse degrees == in-degrees
        indeg = np.bincount(g.adj, minlength=g.num_vertices)
        assert np.array_equal(ctx.reverse_graph.degrees, indeg)

    def test_no_reverse_for_undirected(self, rmat1_small):
        ctx = make_context(
            rmat1_small, MachineConfig(num_ranks=2, threads_per_rank=2),
            SolverConfig(delta=25),
        )
        assert ctx.reverse_graph is None
        assert ctx.in_graph is ctx.graph

    def test_reverse_tables_consistent(self):
        g = random_directed(3)
        ctx = make_context(g, MachineConfig(num_ranks=2, threads_per_rank=2),
                           SolverConfig(delta=25))
        assert np.array_equal(
            ctx.in_short_offsets + ctx.in_long_degrees,
            ctx.reverse_graph.degrees,
        )


class TestDirectedCorrectness:
    def test_cycle_distances(self):
        g = directed_cycle(6, w=3)
        res = solve_sssp(g, 0, algorithm="delta", delta=5,
                         num_ranks=2, threads_per_rank=2)
        assert list(res.distances) == [0, 3, 6, 9, 12, 15]

    def test_one_way_reachability(self):
        # arcs only 0->1->2; from 2 nothing is reachable
        g = from_edges(np.array([0, 1]), np.array([1, 2]), np.array([2, 2]), 3)
        res = solve_sssp(g, 2, algorithm="delta", delta=5,
                         num_ranks=1, threads_per_rank=1)
        assert res.distances[2] == 0
        assert res.distances[0] == INF and res.distances[1] == INF

    @pytest.mark.parametrize(
        "flags",
        [
            {},
            {"use_ios": True},
            {"use_ios": True, "use_pruning": True},
            {"use_pruning": True, "pushpull_mode": "pull"},
            {"use_ios": True, "use_pruning": True, "use_hybrid": True},
            {"use_ios": True, "use_pruning": True, "use_hybrid": True,
             "pushpull_estimator": "exact"},
            {"use_ios": True, "use_pruning": True,
             "pushpull_estimator": "histogram"},
        ],
        ids=["plain", "ios", "prune", "pull-only", "opt", "opt-exact",
             "histogram"],
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_variants_match_reference(self, flags, seed):
        g = random_directed(seed)
        cfg = SolverConfig(delta=20, **flags)
        res = solve_sssp(g, 5, algorithm="dir", config=cfg,
                         num_ranks=3, threads_per_rank=2)
        assert np.array_equal(res.distances, dijkstra_reference(g, 5))

    def test_bellman_ford_directed(self):
        g = random_directed(7)
        cfg = SolverConfig(delta=DELTA_INFINITY)
        res = solve_sssp(g, 5, algorithm="bf", config=cfg,
                         num_ranks=2, threads_per_rank=2)
        assert np.array_equal(res.distances, dijkstra_reference(g, 5))

    def test_structural_validation_directed(self):
        g = random_directed(9)
        d = dijkstra_reference(g, 5)
        assert validate_sssp_structure(g, 5, d).valid
        bad = d.copy()
        reached = np.nonzero((bad < INF) & (np.arange(g.num_vertices) != 5))[0]
        bad[reached[0]] += 1
        assert not validate_sssp_structure(g, 5, bad).valid

    def test_split_rejected_on_directed(self):
        g = random_directed(1)
        cfg = SolverConfig(delta=20, inter_split=True)
        with pytest.raises(ValueError, match="undirected"):
            solve_sssp(g, 5, algorithm="x", config=cfg,
                       num_ranks=2, threads_per_rank=2)
