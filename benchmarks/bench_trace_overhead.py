"""Tracing overhead benchmark: telemetry on vs off.

The observability layer (DESIGN.md §10) is pay-for-use: with no
:class:`~repro.obs.tracer.TraceConfig` on the solve, not a single tracer
branch beyond a ``None`` check runs, and the solve must be bit-identical
to the pre-PR tree. With tracing *enabled* the layer records a span per
epoch/phase/superstep and a per-rank timing sample per step record —
real work that must stay cheap enough to leave on during experiments.

For every preset this script times full solves twice — once untraced and
once with an in-memory tracer (``TraceConfig(path=None)``, so file I/O
does not pollute the measurement) — asserts the two variants are
bit-identical in distances, execution counters and simulated cost, and
reports the wall-clock overhead factor (untraced epochs/sec over traced
epochs/sec). Presets cover both engines and both bucket regimes (skewed
R-MAT, large-diameter grid).

Standalone usage::

    python benchmarks/bench_trace_overhead.py --scale tiny
    python benchmarks/bench_trace_overhead.py --scale default --update BENCH_PR4.json
    python benchmarks/bench_trace_overhead.py --scale tiny --max-overhead 2.0

``--max-overhead`` (default 2.0) is the CI smoke gate: the run exits
non-zero when any preset's enabled-tracing overhead factor exceeds it.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    cached_grid,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
    write_bench_json,
)
from repro.core.config import preset
from repro.core.solver import solve_sssp
from repro.obs.tracer import TraceConfig
from repro.runtime.costmodel import evaluate_cost
from repro.spmd.engine import spmd_delta_stepping

SCALE_LABELS = {"tiny": 10, "default": 14}

#: preset name -> (graph builder, algorithm, delta, engine)
PRESETS = {
    "rmat1": (lambda scale: cached_rmat(scale, "rmat1"), "opt", 25, "orch"),
    "grid": (lambda scale: cached_grid(scale), "delta", 25, "orch"),
    "rmat1-spmd": (lambda scale: cached_rmat(scale, "rmat1"), "delta", 8, "spmd"),
    "grid-spmd": (lambda scale: cached_grid(scale), "delta", 25, "spmd"),
}

#: CI gate: fail when traced epochs/sec drops below 1/this of untraced.
DEFAULT_MAX_OVERHEAD = 2.0


def _solve(graph, root, cfg, machine, engine: str, trace):
    """One timed solve; returns (wall_s, distances, metrics, cost, tracer)."""
    if engine == "spmd":
        t0 = time.perf_counter()
        d, ctx = spmd_delta_stepping(graph, root, machine, config=cfg, trace=trace)
        wall = time.perf_counter() - t0
        return wall, d, ctx.metrics, evaluate_cost(ctx.metrics, machine), ctx.tracer
    res = solve_sssp(graph, root, config=cfg, machine=machine, trace=trace)
    return res.wall_time_s, res.distances, res.metrics, res.cost, res.trace


def _epochs(metrics) -> int:
    """Bucket epochs plus Bellman-Ford phases — one 'epoch' of either loop."""
    return int(metrics.buckets_processed + metrics.bf_phases)


def run_preset(name: str, scale: int, *, repeats: int, num_ranks: int) -> dict:
    """Time untraced vs traced solves of one preset; return a result row."""
    builder, algorithm, delta, engine = PRESETS[name]
    graph = builder(scale)
    root = choose_root(graph, seed=scale)
    machine = default_machine(num_ranks, threads_per_rank=8)
    cfg = preset(algorithm, delta)
    trace_cfg = TraceConfig(path=None)  # in-memory: measure tracing, not I/O
    variants: dict[str, dict] = {}
    solves: dict[str, tuple] = {}
    for variant, trace in (("off", None), ("on", trace_cfg)):
        best = None
        for _ in range(repeats):
            solved = _solve(graph, root, cfg, machine, engine, trace)
            if best is None or solved[0] < best[0]:
                best = solved
        wall, _, metrics, _, tracer = best
        solves[variant] = best
        num_edges = graph.num_undirected_edges
        variants[variant] = {
            "wall_s": wall,
            "ns_per_edge": wall * 1e9 / max(num_edges, 1),
            "epochs_per_sec": _epochs(metrics) / wall,
        }
        if tracer is not None:
            variants[variant]["trace_events"] = len(tracer.events)
    # Tracing must be invisible to results, counters and simulated cost.
    _, d_off, m_off, c_off, _ = solves["off"]
    _, d_on, m_on, c_on, _ = solves["on"]
    if not np.array_equal(d_off, d_on):
        raise AssertionError(f"{name}: distances differ with tracing on")
    if m_off.summary() != m_on.summary():
        raise AssertionError(f"{name}: metrics differ with tracing on")
    if c_off != c_on:
        raise AssertionError(f"{name}: simulated cost differs with tracing on")
    row = {
        "preset": name,
        "engine": engine,
        "algorithm": f"{algorithm}-{delta}",
        "scale": scale,
        "n": graph.num_vertices,
        "m": graph.num_undirected_edges,
        "epochs": _epochs(m_off),
        "overhead": (
            variants["off"]["epochs_per_sec"] / variants["on"]["epochs_per_sec"]
        ),
    }
    row.update(variants)
    return row


def run_suite(scale_label: str, *, repeats: int, num_ranks: int) -> dict:
    """Run every preset at one scale; return the JSON payload."""
    scale = SCALE_LABELS.get(scale_label)
    if scale is None:
        scale = int(scale_label)
    runs = []
    for name in PRESETS:
        row = run_preset(name, scale, repeats=repeats, num_ranks=num_ranks)
        row["scale_label"] = scale_label
        runs.append(row)
    return {
        "schema": 1,
        "machine": {"num_ranks": num_ranks, "threads_per_rank": 8},
        "repeats": repeats,
        "runs": runs,
    }


def check_overhead(payload: dict, max_overhead: float) -> list[str]:
    """Gate: every preset's enabled-tracing overhead must stay under the cap.

    Returns a list of human-readable failures (empty = gate passes).
    """
    failures: list[str] = []
    for run in payload["runs"]:
        if run["overhead"] > max_overhead:
            failures.append(
                f"{run['preset']}@{run['scale_label']}: tracing overhead "
                f"{run['overhead']:.2f}x exceeds the {max_overhead:.2f}x cap"
            )
    return failures


def merge_into_baseline(current: dict, baseline: dict) -> dict:
    """Replace baseline rows matched by (scale_label, preset); keep the rest."""
    fresh = {(r["scale_label"], r["preset"]): r for r in current["runs"]}
    kept = [
        r
        for r in baseline.get("runs", [])
        if (r["scale_label"], r["preset"]) not in fresh
    ]
    merged = dict(baseline)
    merged.update({k: current[k] for k in ("schema", "machine", "repeats")})
    merged["runs"] = kept + list(fresh.values())
    return merged


def main(argv=None) -> int:
    """CLI driver; returns a process exit code."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", default="tiny",
                    help="'tiny', 'default', or an explicit log2 scale")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timed repeats per variant; best is kept (default 3)")
    ap.add_argument("--ranks", type=int, default=8,
                    help="simulated ranks (default 8)")
    ap.add_argument("--out", metavar="PATH", default=None,
                    help="write the results JSON to PATH")
    ap.add_argument("--update", metavar="PATH", default=None,
                    help="merge the results into an existing baseline JSON")
    ap.add_argument("--max-overhead", type=float, default=DEFAULT_MAX_OVERHEAD,
                    help="fail when any preset's tracing overhead factor "
                         f"exceeds this (default {DEFAULT_MAX_OVERHEAD})")
    args = ap.parse_args(argv)

    payload = run_suite(args.scale, repeats=args.repeats, num_ranks=args.ranks)
    rows = [
        {
            "preset": r["preset"],
            "engine": r["engine"],
            "epochs": r["epochs"],
            "off_eps": r["off"]["epochs_per_sec"],
            "on_eps": r["on"]["epochs_per_sec"],
            "overhead": r["overhead"],
            "events": r["on"].get("trace_events", 0),
        }
        for r in payload["runs"]
    ]
    print_table(rows, "tracing overhead (epochs/sec, off vs on)")

    if args.out:
        write_bench_json(args.out, payload)
    if args.update:
        path = Path(args.update)
        if path.exists():
            import json

            baseline = json.loads(path.read_text())
        else:
            baseline = {}
        write_bench_json(args.update, merge_into_baseline(payload, baseline))

    failures = check_overhead(payload, args.max_overhead)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
