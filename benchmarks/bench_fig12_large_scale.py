"""Fig. 12 — Performance on large systems (both families).

The paper's final table: GTEPS of the full algorithms (LB-OPT-25 with
vertex splitting for RMAT-1, OPT-40 for RMAT-2) on 1,024-32,768 nodes,
scales 33-39 — 3,107 and 1,480 GTEPS at the top. We reproduce the same
weak-scaling protocol at the largest simulated configurations that fit a
laptop run and check near-linear growth plus the family ordering
(RMAT-1 faster than RMAT-2, by roughly 2x in the paper).
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    VERTICES_PER_RANK_LOG2,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
    run_algorithm,
)
from repro.core.config import SolverConfig
from repro.core.solver import solve_sssp

NODE_COUNTS = (8, 16, 32, 64)

PAPER_GTEPS = {
    "RMAT1": {1024: 173, 2048: 331, 4096: 653, 8192: 1102, 16384: 1870, 32768: 3107},
    "RMAT2": {1024: 70, 2048: 129, 4096: 244, 8192: 460, 16384: 840, 32768: 1480},
}


@functools.lru_cache(maxsize=1)
def compute_rows():
    rows = []
    for nodes in NODE_COUNTS:
        scale = nodes.bit_length() - 1 + VERTICES_PER_RANK_LOG2
        machine = default_machine(nodes)
        row = {"nodes": nodes, "scale": scale}
        # RMAT-1: load-balanced OPT, delta = 25. The paper adds inter-node
        # vertex splitting beyond scale 35, where single hubs outgrow a
        # node; at reproduction scale the skew never reaches that regime
        # and the proxy traffic would only add overhead (EXPERIMENTS.md),
        # so the thread-level tier suffices here, exactly as the paper
        # reports for its own scale<=35 runs.
        graph1 = cached_rmat(scale, "rmat1")
        res1 = run_algorithm(
            graph1, choose_root(graph1, seed=0), "lb-opt", 25, machine
        )
        row["rmat1_gteps"] = res1.gteps
        # RMAT-2: no load balancing needed, delta = 40 (the paper's choice).
        graph2 = cached_rmat(scale, "rmat2")
        res2 = run_algorithm(graph2, choose_root(graph2, seed=0), "opt", 40, machine)
        row["rmat2_gteps"] = res2.gteps
        rows.append(row)
    return rows


def test_fig12_large_scale(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Fig. 12 — weak scaling of the final algorithms")
    print("\npaper GTEPS (1k-32k nodes):", PAPER_GTEPS)
    # near-linear weak scaling: each doubling of nodes grows GTEPS
    for key in ("rmat1_gteps", "rmat2_gteps"):
        series = [r[key] for r in rows]
        assert all(b > 1.2 * a for a, b in zip(series, series[1:]))
    # family ordering as in the paper: RMAT-1 faster than RMAT-2
    for r in rows:
        assert r["rmat1_gteps"] > r["rmat2_gteps"]


if __name__ == "__main__":
    print_table(compute_rows(), "Fig. 12 — weak scaling of the final algorithms")
