"""Deterministic fault injection and recovery for the SPMD engine.

The paper's target machine (32k Blue Gene/Q nodes) makes message loss,
stragglers and rank failures operational realities; this module lets the
reproduction *measure* what surviving them costs.  A :class:`FaultPlan`
describes — fully deterministically, from a seed — which faults hit which
supersteps: per-record **loss**, **duplication**, **delayed delivery** and
stream **reordering** at configurable rates, plus whole-rank **stall** and
**crash** events pinned to chosen supersteps.  :class:`FaultyMailbox`
applies the plan to the wire underneath the reliable transport of
:class:`~repro.spmd.mailbox.ReliableMailbox`.

Recovery is sound because min-apply relaxation is idempotent and monotone
(the SP_Async observation): re-delivered records are no-ops, lost records
are retransmitted, and a crashed rank restarted from an epoch checkpoint
can only *raise* its tentative distances — so the post-solve self-healing
sweep (extra Bellman-Ford iterations until the structural validator
accepts) always converges back to the exact fault-free distances.

:func:`solve_with_faults` is the high-level entry point mirroring
:func:`repro.core.solver.solve_sssp` for fault-injected SPMD runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.machine import MachineConfig
from repro.spmd.mailbox import ReliableMailbox

__all__ = [
    "RankCrash",
    "RankStall",
    "FaultPlan",
    "FaultyMailbox",
    "solve_with_faults",
]


@dataclass(frozen=True)
class RankCrash:
    """Rank ``rank`` fails at superstep ``superstep``: it loses all state
    since its last checkpoint, the records it posted that superstep are
    never sent, and records addressed to it bounce until it restarts (which
    happens immediately, from the checkpoint, via the engine's restore
    hook)."""

    rank: int
    superstep: int


@dataclass(frozen=True)
class RankStall:
    """Rank ``rank`` straggles at superstep ``superstep``: everything it
    sent that superstep is held on the wire for ``duration`` recovery
    rounds before arriving."""

    rank: int
    superstep: int
    duration: int = 2


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic schedule of injected faults + recovery knobs.

    Rates are per record and apply to supersteps in
    ``[first_superstep, last_superstep]`` (``None`` = unbounded); crash and
    stall events fire at their own supersteps regardless of that window.
    The same seed over the same run yields the identical fault schedule
    (recorded in :attr:`repro.runtime.metrics.RecoveryStats.events`).

    Recovery knobs: ``max_attempts``/``backoff_cap`` tune the reliable
    transport's capped exponential backoff, ``checkpoint_interval`` the
    epoch-checkpoint cadence, and ``max_healing_sweeps`` bounds the
    post-solve self-healing Bellman-Ford sweeps.
    """

    seed: int = 0
    loss_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: int = 3
    first_superstep: int = 0
    last_superstep: int | None = None
    crashes: tuple[RankCrash, ...] = ()
    stalls: tuple[RankStall, ...] = ()
    faults_on_retry: bool = False
    """Whether retransmissions can be hit by the rate faults again."""
    max_attempts: int = 6
    backoff_cap: int = 4
    checkpoint_interval: int = 1
    max_healing_sweeps: int = 4

    def __post_init__(self) -> None:
        for name in ("loss_rate", "dup_rate", "reorder_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.max_healing_sweeps < 1:
            raise ValueError("max_healing_sweeps must be >= 1")
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stalls", tuple(self.stalls))
        for crash in self.crashes:
            if crash.rank < 0 or crash.superstep < 0:
                raise ValueError(f"invalid crash spec {crash}")
        for stall in self.stalls:
            if stall.rank < 0 or stall.superstep < 0 or stall.duration < 1:
                raise ValueError(f"invalid stall spec {stall}")

    # ------------------------------------------------------------------
    @property
    def injects_anything(self) -> bool:
        """Whether this plan can inject any fault at all."""
        return bool(
            self.loss_rate
            or self.dup_rate
            or self.reorder_rate
            or self.delay_rate
            or self.crashes
            or self.stalls
        )

    def active_at(self, superstep: int) -> bool:
        """Whether the rate-based faults apply at this superstep."""
        if superstep < self.first_superstep:
            return False
        return self.last_superstep is None or superstep <= self.last_superstep

    def crashes_at(self, superstep: int) -> tuple[int, ...]:
        """Ranks crashing at this superstep."""
        return tuple(c.rank for c in self.crashes if c.superstep == superstep)

    def stalls_at(self, superstep: int) -> tuple[RankStall, ...]:
        """Stall events firing at this superstep."""
        return tuple(s for s in self.stalls if s.superstep == superstep)

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str, **overrides) -> "FaultPlan":
        """Parse a compact CLI spec like
        ``"loss=0.05,dup=0.02,seed=3,crash=1@4+0@9,stall=2@5x3"``.

        Keys: ``loss``, ``dup``, ``reorder``, ``delay`` (rates);
        ``max-delay``, ``seed``, ``first``, ``last``, ``attempts``,
        ``backoff``, ``ckpt`` (ints); ``retry-faults`` (0/1);
        ``crash=RANK@SUPERSTEP`` and ``stall=RANK@SUPERSTEP[xDURATION]``,
        multiple events joined with ``+``.
        """
        kwargs: dict = dict(overrides)
        key_map = {
            "loss": "loss_rate",
            "dup": "dup_rate",
            "reorder": "reorder_rate",
            "delay": "delay_rate",
            "max-delay": "max_delay",
            "seed": "seed",
            "first": "first_superstep",
            "last": "last_superstep",
            "attempts": "max_attempts",
            "backoff": "backoff_cap",
            "ckpt": "checkpoint_interval",
            "retry-faults": "faults_on_retry",
        }
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"malformed fault spec item {item!r}")
            key, value = (part.strip() for part in item.split("=", 1))
            if key == "crash":
                crashes = []
                for ev in value.split("+"):
                    rank, _, step = ev.partition("@")
                    crashes.append(RankCrash(int(rank), int(step)))
                kwargs["crashes"] = tuple(crashes)
            elif key == "stall":
                stalls = []
                for ev in value.split("+"):
                    rank, _, rest = ev.partition("@")
                    step, _, duration = rest.partition("x")
                    stalls.append(
                        RankStall(int(rank), int(step),
                                  int(duration) if duration else 2)
                    )
                kwargs["stalls"] = tuple(stalls)
            elif key in ("loss", "dup", "reorder", "delay"):
                kwargs[key_map[key]] = float(value)
            elif key == "retry-faults":
                kwargs[key_map[key]] = bool(int(value))
            elif key in key_map:
                kwargs[key_map[key]] = int(value)
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        return cls(**kwargs)


class FaultyMailbox(ReliableMailbox):
    """Reliable mailbox whose wire is perturbed by a :class:`FaultPlan`.

    Deterministic events (crashes, stalls) fire at their configured
    supersteps; rate-based faults (loss, duplication, delay, reordering)
    draw from one seeded generator, so the whole fault schedule — logged in
    ``metrics.recovery.events`` — is a pure function of the plan and the
    run.  The reliable-transport layer above repairs everything except
    crash-induced state loss, which the engine repairs via checkpoints and
    the self-healing sweep.
    """

    def __init__(
        self, num_ranks: int, comm, plan: FaultPlan
    ) -> None:
        super().__init__(
            num_ranks,
            comm,
            max_attempts=plan.max_attempts,
            backoff_cap=plan.backoff_cap,
        )
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._held: dict[int, list[np.ndarray]] = {}

    # ------------------------------------------------------------------
    def _hold(self, round_: int, gids: np.ndarray) -> None:
        self._held.setdefault(round_, []).append(gids)

    def _wire_pending(self) -> bool:
        return bool(self._held)

    def _release(self, round_: int) -> np.ndarray:
        parts = self._held.pop(round_, None)
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def _ranks_crashing(self, superstep: int) -> tuple[int, ...]:
        return self.plan.crashes_at(superstep)

    def _pre_send_mask(
        self, superstep: int, src_ranks: np.ndarray
    ) -> np.ndarray | None:
        crashed = self.plan.crashes_at(superstep)
        if not crashed or src_ranks.size == 0:
            return None
        mask = ~np.isin(src_ranks, np.asarray(crashed, dtype=np.int64))
        lost = int(src_ranks.size - mask.sum())
        if lost:
            self.comm.metrics.recovery.note_fault(
                superstep, 0, "crash-send-loss", lost
            )
        return mask

    def _transmit(
        self,
        superstep: int,
        round_: int,
        gids: np.ndarray,
        protect: np.ndarray | None = None,
    ) -> np.ndarray:
        if gids.size == 0:
            return gids
        plan = self.plan
        rec = self.comm.metrics.recovery
        guaranteed = None
        if protect is not None and protect.any():
            guaranteed = gids[protect]
            gids = gids[~protect]
        delivered = gids

        # Deterministic events (independent of the rate window).
        if round_ == 0 and delivered.size:
            down = plan.crashes_at(superstep)
            if down:
                # The crashed rank was not up to receive the exchange; its
                # records bounce and are retransmitted once it restarts.
                drop = np.isin(
                    self._fl_dst[delivered], np.asarray(down, dtype=np.int64)
                )
                if drop.any():
                    rec.note_fault(
                        superstep, round_, "crash-recv-loss", int(drop.sum())
                    )
                    delivered = delivered[~drop]
            for stall in plan.stalls_at(superstep):
                held = self._fl_src[delivered] == stall.rank
                if held.any():
                    rec.note_fault(superstep, round_, "stall", int(held.sum()))
                    self._hold(round_ + stall.duration, delivered[held])
                    delivered = delivered[~held]

        # Rate-based faults within the plan's superstep window.
        faultable = plan.active_at(superstep) and (
            round_ == 0 or plan.faults_on_retry
        )
        if faultable and delivered.size:
            rng = self._rng
            if plan.loss_rate:
                lost = rng.random(delivered.size) < plan.loss_rate
                if lost.any():
                    rec.note_fault(superstep, round_, "loss", int(lost.sum()))
                    delivered = delivered[~lost]
            if plan.delay_rate and delivered.size:
                delayed = rng.random(delivered.size) < plan.delay_rate
                if delayed.any():
                    count = int(delayed.sum())
                    rec.note_fault(superstep, round_, "delay", count)
                    due = round_ + rng.integers(
                        1, plan.max_delay + 1, size=count
                    )
                    victims = delivered[delayed]
                    for offset in np.unique(due):
                        self._hold(int(offset), victims[due == offset])
                    delivered = delivered[~delayed]
            if plan.dup_rate and delivered.size:
                dup = rng.random(delivered.size) < plan.dup_rate
                if dup.any():
                    rec.note_fault(
                        superstep, round_, "duplicate", int(dup.sum())
                    )
                    delivered = np.concatenate([delivered, delivered[dup]])
            if (
                plan.reorder_rate
                and delivered.size > 1
                and rng.random() < plan.reorder_rate
            ):
                rec.note_fault(superstep, round_, "reorder", delivered.size)
                delivered = rng.permutation(delivered)

        if guaranteed is not None:
            delivered = (
                np.concatenate([guaranteed, delivered])
                if delivered.size
                else guaranteed
            )
        return delivered


def solve_with_faults(
    graph,
    root: int,
    plan: FaultPlan,
    *,
    algorithm: str = "delta",
    delta: int = 25,
    config=None,
    machine: MachineConfig | None = None,
    num_ranks: int = 8,
    threads_per_rank: int = 8,
    validate: bool | str = False,
    paranoid: bool = False,
    checkpoint_dir=None,
    checkpoint_interval: int = 1,
    resume: bool = False,
    deadline=None,
    trace=None,
):
    """Run the self-healing SPMD engine under a fault plan.

    ``algorithm`` is ``"delta"`` (Δ-stepping, honoring ``delta``/``config``)
    or ``"bellman-ford"``.  Returns a
    :class:`~repro.core.solver.SsspResult` whose metrics include the
    recovery overhead (``recovery_*`` counters, ``recovery`` phase traffic).
    ``validate`` works as in :func:`~repro.core.solver.solve_sssp`:
    ``True`` cross-checks against the Dijkstra reference,
    ``"structural"`` runs the O(m + n) Graph 500-style validator.

    The defense-layer knobs compose with the fault plan:
    ``checkpoint_dir``/``resume`` persist/restore durable epoch
    checkpoints (a crash *during* recovery is itself recoverable),
    ``deadline`` arms the superstep watchdog
    (:class:`~repro.runtime.watchdog.DeadlineConfig`), and ``paranoid``
    turns on the runtime invariant guards.  ``trace`` is an optional
    :class:`~repro.obs.tracer.TraceConfig` enabling the telemetry layer —
    crash/retransmit/healing events show up as instants in the trace.
    """
    import time

    from repro.core.solver import SsspResult, _validate_root, run_validation
    from repro.runtime.costmodel import evaluate_cost, simulated_gteps
    from repro.spmd.engine import spmd_bellman_ford, spmd_delta_stepping

    root = _validate_root(root, graph.num_vertices)
    if machine is None:
        machine = MachineConfig(
            num_ranks=num_ranks, threads_per_rank=threads_per_rank
        )
    if checkpoint_dir is not None:
        from repro.spmd.checkpoint import ensure_checkpoint_dir

        ensure_checkpoint_dir(checkpoint_dir)
    defense_kwargs = dict(
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=checkpoint_interval,
        resume=resume,
        deadline=deadline,
        trace=trace,
    )
    t0 = time.perf_counter()
    if algorithm in ("bellman-ford", "bf"):
        d, ctx = spmd_bellman_ford(
            graph, root, machine, faults=plan, paranoid=paranoid,
            **defense_kwargs,
        )
        name = "spmd-bellman-ford"
    else:
        if paranoid:
            from repro.core.config import SolverConfig

            config = (
                SolverConfig(delta=delta, paranoid=True)
                if config is None
                else config.evolve(paranoid=True)
            )
        d, ctx = spmd_delta_stepping(
            graph, root, machine, delta=delta, config=config, faults=plan,
            **defense_kwargs,
        )
        name = f"spmd-delta-{ctx.config.delta}"
    wall = time.perf_counter() - t0
    run_validation(d, graph, root, validate)
    if ctx.tracer is not None:
        from repro.obs.export import finalize_trace

        finalize_trace(ctx.tracer, metrics=ctx.metrics)
    return SsspResult(
        distances=d,
        metrics=ctx.metrics,
        cost=evaluate_cost(ctx.metrics, machine),
        gteps=simulated_gteps(graph.num_undirected_edges, ctx.metrics, machine),
        algorithm=name + ("+faults" if plan.injects_anything else ""),
        config=ctx.config,
        machine=machine,
        root=root,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_undirected_edges,
        wall_time_s=wall,
        guards=ctx.guards,
        trace=ctx.tracer,
    )

