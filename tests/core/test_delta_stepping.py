"""Unit tests for the Δ-stepping engine and its variants."""

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.context import make_context
from repro.core.delta_stepping import DeltaSteppingEngine
from repro.core.distances import INF
from repro.core.reference import dijkstra_reference
from repro.runtime.machine import MachineConfig


def run(graph, root, *, ranks=2, threads=2, **cfg_kwargs):
    machine = MachineConfig(num_ranks=ranks, threads_per_rank=threads)
    ctx = make_context(graph, machine, SolverConfig(**cfg_kwargs))
    d = DeltaSteppingEngine(ctx).run(root)
    return d, ctx.metrics


class TestCorrectnessAcrossVariants:
    @pytest.mark.parametrize("delta", [1, 2, 5, 25, 100, 1000])
    def test_deltas_on_path(self, path_graph, delta):
        d, _ = run(path_graph, 0, delta=delta)
        assert np.array_equal(d, dijkstra_reference(path_graph, 0))

    @pytest.mark.parametrize("delta", [1, 10, 25, 64, 300])
    def test_deltas_on_rmat(self, rmat1_small, delta):
        d, _ = run(rmat1_small, 7, delta=delta, ranks=4)
        assert np.array_equal(d, dijkstra_reference(rmat1_small, 7))

    @pytest.mark.parametrize(
        "flags",
        [
            {},
            {"use_ios": True},
            {"use_ios": True, "use_pruning": True},
            {"use_pruning": True, "pushpull_mode": "pull"},
            {"use_pruning": True, "pushpull_mode": "push"},
            {"use_ios": True, "use_pruning": True, "use_hybrid": True},
            {"use_hybrid": True},
            {"use_ios": True, "use_pruning": True, "use_hybrid": True,
             "pushpull_estimator": "exact"},
            {"use_ios": True, "use_pruning": True, "use_hybrid": True,
             "intra_lb": True},
        ],
        ids=[
            "plain", "ios", "prune", "pull-only", "push-only", "opt",
            "hybrid-only", "opt-exact", "opt-lb",
        ],
    )
    def test_optimisation_combinations(self, rmat2_small, flags):
        d, _ = run(rmat2_small, 11, delta=25, ranks=4, **flags)
        assert np.array_equal(d, dijkstra_reference(rmat2_small, 11))

    def test_disconnected_unreached_stay_inf(self, disconnected_graph):
        d, _ = run(disconnected_graph, 0, delta=25)
        assert d[2] == INF and d[3] == INF and d[4] == INF

    def test_isolated_root(self, disconnected_graph):
        d, _ = run(disconnected_graph, 4, delta=25)
        assert d[4] == 0
        assert np.all(d[:4] == INF)

    def test_zero_weight_edges_propagate_in_bucket(self):
        from repro.graph.builder import from_undirected_edges

        # chain with zero-weight middle edge: 0 -2- 1 -0- 2 -3- 3
        g = from_undirected_edges(
            np.array([0, 1, 2]), np.array([1, 2, 3]), np.array([2, 0, 3]), 4
        )
        d, _ = run(g, 0, delta=5)
        assert list(d) == [0, 2, 2, 5]


class TestDijkstraMode:
    def test_delta_one_relaxes_each_arc_once(self, rmat1_small):
        # Dial's variant relaxes every arc exactly once: 2m relaxations.
        d, metrics = run(rmat1_small, 3, delta=1)
        assert metrics.total_relaxations == rmat1_small.num_arcs
        assert np.array_equal(d, dijkstra_reference(rmat1_small, 3))

    def test_delta_one_bucket_count_is_distinct_distances(self, path_graph):
        d, metrics = run(path_graph, 0, delta=1)
        distinct = len({int(x) for x in d if x < INF})
        assert metrics.buckets_processed == distinct


class TestWorkPhaseTradeoffs:
    """The relationships of Section II-B."""

    def test_work_ordering_dijkstra_le_delta_le_bf(self, rmat1_small):
        _, dij = run(rmat1_small, 3, delta=1)
        _, mid = run(rmat1_small, 3, delta=25)
        from repro.core.config import DELTA_INFINITY

        _, bf = run(rmat1_small, 3, delta=DELTA_INFINITY)
        assert (
            dij.total_relaxations
            <= mid.total_relaxations
            <= bf.total_relaxations
        )

    def test_phase_ordering_bf_le_delta_le_dijkstra(self, rmat1_small):
        _, dij = run(rmat1_small, 3, delta=1)
        _, mid = run(rmat1_small, 3, delta=25)
        from repro.core.config import DELTA_INFINITY

        _, bf = run(rmat1_small, 3, delta=DELTA_INFINITY)
        assert bf.total_phases <= mid.total_phases <= dij.total_phases


class TestIos:
    def test_ios_preserves_distances(self, rmat2_small):
        base, _ = run(rmat2_small, 9, delta=25)
        ios, _ = run(rmat2_small, 9, delta=25, use_ios=True)
        assert np.array_equal(base, ios)

    def test_ios_reduces_short_relaxations(self, rmat1_small):
        _, base = run(rmat1_small, 3, delta=64)
        _, ios = run(rmat1_small, 3, delta=64, use_ios=True)
        base_short = base.relaxations_by_kind().get("short_relax", 0)
        ios_short = ios.relaxations_by_kind().get("short_relax", 0)
        assert ios_short < base_short

    def test_ios_does_not_change_long_relaxations_without_pruning(
        self, rmat1_small
    ):
        # IOS moves outer-short arcs into the long phase, so long-phase
        # records grow by exactly the outer-short count while short-phase
        # records shrink; total work never grows.
        _, base = run(rmat1_small, 3, delta=64)
        _, ios = run(rmat1_small, 3, delta=64, use_ios=True)
        assert ios.total_relaxations <= base.total_relaxations


class TestHybrid:
    def test_hybrid_reduces_buckets(self, rmat2_small):
        _, base = run(rmat2_small, 9, delta=10)
        _, hyb = run(rmat2_small, 9, delta=10, use_hybrid=True)
        assert hyb.buckets_processed < base.buckets_processed
        assert hyb.bf_phases > 0

    def test_hybrid_records_switch_bucket(self, rmat2_small):
        _, hyb = run(rmat2_small, 9, delta=10, use_hybrid=True)
        assert hyb.hybrid_switch_bucket >= 0

    def test_tau_one_never_switches(self, rmat2_small):
        _, m = run(rmat2_small, 9, delta=10, use_hybrid=True, tau=1.0)
        assert m.hybrid_switch_bucket == -1
        assert m.bf_phases == 0

    def test_tau_zero_switches_after_first_bucket(self, rmat2_small):
        _, m = run(rmat2_small, 9, delta=10, use_hybrid=True, tau=0.0)
        assert m.buckets_processed == 1


class TestPushPullModes:
    def test_forced_pull_marks_buckets(self, rmat1_small):
        _, m = run(
            rmat1_small, 3, delta=25, use_pruning=True, pushpull_mode="pull"
        )
        assert m.pull_buckets == m.buckets_processed

    def test_forced_push_marks_buckets(self, rmat1_small):
        _, m = run(
            rmat1_small, 3, delta=25, use_pruning=True, pushpull_mode="push"
        )
        assert m.push_buckets == m.buckets_processed

    def test_sequence_replay(self, rmat1_small):
        _, auto = run(rmat1_small, 3, delta=25, use_pruning=True)
        seq = tuple(str(s["mode"]) for s in auto.per_bucket_stats)
        d_seq, replay = run(
            rmat1_small,
            3,
            delta=25,
            use_pruning=True,
            pushpull_mode="sequence",
            pushpull_sequence=seq,
        )
        replay_seq = tuple(str(s["mode"]) for s in replay.per_bucket_stats)
        assert replay_seq == seq
        assert np.array_equal(d_seq, dijkstra_reference(rmat1_small, 3))

    def test_pruning_reduces_relaxations(self, rmat1_small):
        _, base = run(rmat1_small, 3, delta=25)
        _, pruned = run(
            rmat1_small, 3, delta=25, use_ios=True, use_pruning=True
        )
        assert pruned.total_relaxations < base.total_relaxations


class TestCensus:
    def test_census_collected_when_enabled(self, rmat1_small):
        _, m = run(
            rmat1_small, 3, delta=25, use_pruning=True, collect_census=True
        )
        assert m.per_bucket_stats
        for row in m.per_bucket_stats:
            assert {"self_edges", "backward_edges", "forward_edges",
                    "pull_requests"} <= set(row)

    def test_census_edge_classes_sum_to_push_relaxations(self, rmat1_small):
        _, m = run(
            rmat1_small, 3, delta=25, use_pruning=True, collect_census=True
        )
        for row in m.per_bucket_stats:
            assert (
                row["self_edges"] + row["backward_edges"] + row["forward_edges"]
                == row["push_relaxations"]
            )
