"""Conformance suite for the pluggable stepping strategies.

Every strategy behind :mod:`repro.core.stepping` must produce distances
bit-identical to the sequential Dijkstra reference — on the hand-built
fixtures, on the structured generators (grid / geometric / social /
RMAT), and on hypothesis-generated graphs that include disconnected
vertices and zero-weight edges. The orchestrated and SPMD engines must
additionally agree on distances *and* on the full metrics summary for
every strategy, the same parity discipline the delta family already has.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import DELTA_INFINITY, SolverConfig, preset
from repro.core.reference import dijkstra_reference
from repro.core.solver import solve_sssp
from repro.core.stepping import (
    STRATEGIES,
    DeltaStepping,
    RadiusStepping,
    RhoStepping,
    Step,
    make_strategy,
    vertex_radii,
)
from repro.graph.builder import from_undirected_edges
from repro.graph.grid import grid_graph, random_geometric_graph
from repro.graph.rmat import rmat_graph
from repro.graph.social import synthetic_social_graph
from repro.runtime.machine import MachineConfig
from repro.spmd.engine import spmd_delta_stepping

ALGORITHMS = ("delta", "radius", "rho")

MACHINE = MachineConfig(num_ranks=4, threads_per_rank=2)


def config_for(algorithm: str) -> SolverConfig:
    """Small-instance config per strategy (tiny ρ so batching is visible)."""
    if algorithm == "delta":
        return SolverConfig(delta=25)
    if algorithm == "rho":
        return SolverConfig(strategy="rho", rho=8)
    return preset(algorithm)


class TestRegistry:
    def test_registry_matches_config_choices(self):
        assert set(STRATEGIES) == {"delta", "radius", "rho"}

    def test_make_strategy_dispatches(self):
        assert isinstance(make_strategy(SolverConfig()), DeltaStepping)
        assert isinstance(
            make_strategy(SolverConfig(strategy="radius")), RadiusStepping
        )
        assert isinstance(
            make_strategy(SolverConfig(strategy="rho")), RhoStepping
        )

    def test_make_strategy_rejects_unknown(self):
        class Bogus:
            strategy = "bogus"

        with pytest.raises(ValueError, match="bogus"):
            make_strategy(Bogus())

    def test_only_delta_uses_bucket_index(self):
        assert DeltaStepping.uses_bucket_index
        assert not RadiusStepping.uses_bucket_index
        assert not RhoStepping.uses_bucket_index

    def test_windowed_strategies_are_short_phase_only(self):
        assert not DeltaStepping.short_phase_only
        assert RadiusStepping.short_phase_only
        assert RhoStepping.short_phase_only

    def test_classification_widths(self):
        assert make_strategy(SolverConfig(delta=7)).classification_width() == 7
        for name in ("radius", "rho"):
            width = make_strategy(
                SolverConfig(strategy=name)
            ).classification_width()
            assert width == DELTA_INFINITY


class TestVertexRadii:
    def test_path_graph_radii(self, path_graph):
        g = path_graph.sorted_by_weight()
        # path 0 -5- 1 -3- 2 -7- 3 -1- 4: vertex 1 sees {5, 3}.
        r1 = vertex_radii(g, 1)
        r2 = vertex_radii(g, 2)
        assert r1[1] == 3 and r2[1] == 5
        # endpoints have degree 1: k clamps to the only incident weight
        assert r1[0] == 5 and r2[0] == 5
        assert r1[4] == 1 and r2[4] == 1

    def test_isolated_vertex_radius_zero(self, disconnected_graph):
        g = disconnected_graph.sorted_by_weight()
        r = vertex_radii(g, 2)
        isolated = np.nonzero(g.degrees == 0)[0]
        assert isolated.size > 0
        assert np.all(r[isolated] == 0)

    def test_k_exceeding_degree_clamps(self, star_graph):
        g = star_graph.sorted_by_weight()
        assert np.array_equal(vertex_radii(g, 100), vertex_radii(g, g.num_vertices))


class TestFixtureConformance:
    """Bit-identity to the reference on every hand-built fixture."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize(
        "fixture",
        ["path_graph", "star_graph", "diamond_graph", "disconnected_graph",
         "fig6_graph"],
    )
    def test_matches_reference(self, algorithm, fixture, request):
        graph = request.getfixturevalue(fixture)
        res = solve_sssp(
            graph, 0, algorithm="custom", config=config_for(algorithm),
            num_ranks=2, threads_per_rank=2,
        )
        assert np.array_equal(res.distances, dijkstra_reference(graph, 0))

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_rmat_matches_reference(self, algorithm, rmat1_small):
        res = solve_sssp(
            rmat1_small, 3, algorithm="custom", config=config_for(algorithm),
            num_ranks=4, threads_per_rank=2, validate=True,
        )
        assert np.array_equal(
            res.distances, dijkstra_reference(rmat1_small, 3)
        )


class TestGeneratorConformance:
    """Structured generators: grid, geometric, social, RMAT."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_grid(self, algorithm):
        g = grid_graph(12, 12, seed=5)
        res = solve_sssp(
            g, 0, algorithm="custom", config=config_for(algorithm),
            num_ranks=4, threads_per_rank=2,
        )
        assert np.array_equal(res.distances, dijkstra_reference(g, 0))

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_geometric(self, algorithm):
        g = random_geometric_graph(150, radius=0.15, seed=11)
        res = solve_sssp(
            g, 7, algorithm="custom", config=config_for(algorithm),
            num_ranks=4, threads_per_rank=2,
        )
        assert np.array_equal(res.distances, dijkstra_reference(g, 7))

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_social(self, algorithm):
        g = synthetic_social_graph("orkut", scale=9, seed=3)
        res = solve_sssp(
            g, 1, algorithm="custom", config=config_for(algorithm),
            num_ranks=4, threads_per_rank=2,
        )
        assert np.array_equal(res.distances, dijkstra_reference(g, 1))


class TestSpmdParity:
    """Orchestrated vs SPMD: identical distances AND identical metrics."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_distances_and_metrics_parity(self, algorithm, rmat1_small):
        cfg = config_for(algorithm)
        res = solve_sssp(
            rmat1_small, 0, algorithm="custom", config=cfg, machine=MACHINE
        )
        d_spmd, ctx_spmd = spmd_delta_stepping(
            rmat1_small, 0, MACHINE, config=cfg
        )
        assert np.array_equal(res.distances, d_spmd)
        assert res.metrics.summary() == ctx_spmd.metrics.summary()

    @pytest.mark.parametrize("algorithm", ("radius", "rho"))
    def test_parity_under_paranoid_guards(self, algorithm, rmat1_small):
        cfg = config_for(algorithm).evolve(paranoid=True)
        res = solve_sssp(
            rmat1_small, 0, algorithm="custom", config=cfg, machine=MACHINE
        )
        d_spmd, _ = spmd_delta_stepping(rmat1_small, 0, MACHINE, config=cfg)
        assert np.array_equal(res.distances, d_spmd)


class TestHybridComposition:
    """use_hybrid composes with every strategy (BF stage is always exact)."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_hybrid_bit_identity(self, algorithm, rmat1_small):
        cfg = config_for(algorithm).evolve(use_hybrid=True, tau=0.2)
        res = solve_sssp(
            rmat1_small, 3, algorithm="custom", config=cfg,
            num_ranks=4, threads_per_rank=2,
        )
        assert np.array_equal(
            res.distances, dijkstra_reference(rmat1_small, 3)
        )


class TestPresetsAndNaming:
    def test_radius_rho_presets_solve_and_validate(self, rmat1_small):
        for algo in ("radius", "rho"):
            res = solve_sssp(
                rmat1_small, 3, algorithm=algo,
                num_ranks=4, threads_per_rank=2, validate=True,
            )
            assert res.algorithm == algo  # delta-free: no "-25" suffix
            assert res.config.strategy == algo

    def test_rho_parameter_changes_stepping_not_distances(self, rmat1_small):
        ref = dijkstra_reference(rmat1_small, 0)
        epochs = set()
        for rho in (1, 8, 512):
            cfg = SolverConfig(strategy="rho", rho=rho)
            res = solve_sssp(
                rmat1_small, 0, algorithm="custom", config=cfg,
                num_ranks=2, threads_per_rank=2,
            )
            assert np.array_equal(res.distances, ref)
            epochs.add(res.metrics.buckets_processed)
        assert len(epochs) > 1  # ρ genuinely changes the step schedule

    def test_radius_k_changes_stepping_not_distances(self, rmat1_small):
        ref = dijkstra_reference(rmat1_small, 0)
        for k in (1, 2, 4):
            cfg = SolverConfig(strategy="radius", radius_k=k)
            res = solve_sssp(
                rmat1_small, 0, algorithm="custom", config=cfg,
                num_ranks=2, threads_per_rank=2,
            )
            assert np.array_equal(res.distances, ref)


class TestConfigValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="stepping strategy"):
            SolverConfig(strategy="bogus")

    @pytest.mark.parametrize("field", ["rho", "radius_k"])
    def test_positive_parameters_required(self, field):
        with pytest.raises(ValueError):
            SolverConfig(**{field: 0})

    @pytest.mark.parametrize(
        "flag", ["use_ios", "use_pruning", "collect_census"]
    )
    @pytest.mark.parametrize("strategy", ["radius", "rho"])
    def test_delta_specific_flags_rejected(self, strategy, flag):
        with pytest.raises(ValueError, match=flag):
            SolverConfig(strategy=strategy, **{flag: True})

    def test_is_bellman_ford_requires_delta_strategy(self):
        assert SolverConfig(delta=DELTA_INFINITY).is_bellman_ford
        assert not SolverConfig(strategy="rho").is_bellman_ford


def _random_graph(seed: int):
    """Undirected graph with zero-weight edges and disconnected vertices."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 40))
    m = int(rng.integers(0, 3 * n))
    tails = rng.integers(0, n, m)
    heads = rng.integers(0, n, m)
    keep = tails != heads
    tails, heads = tails[keep], heads[keep]
    # weights start at 0: zero-weight edges are part of the contract
    weights = rng.integers(0, 12, tails.size)
    return from_undirected_edges(tails, heads, weights, n)


class TestHypothesisConformance:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.sampled_from(ALGORITHMS))
    def test_matches_reference_on_random_graphs(self, seed, algorithm):
        graph = _random_graph(seed)
        root = seed % graph.num_vertices
        res = solve_sssp(
            graph, root, algorithm="custom", config=config_for(algorithm),
            num_ranks=2, threads_per_rank=1,
        )
        assert np.array_equal(
            res.distances, dijkstra_reference(graph, root)
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.sampled_from(("radius", "rho")))
    def test_spmd_matches_orchestrated_on_random_graphs(self, seed, algorithm):
        graph = _random_graph(seed)
        root = seed % graph.num_vertices
        cfg = config_for(algorithm)
        machine = MachineConfig(num_ranks=2, threads_per_rank=1)
        res = solve_sssp(
            graph, root, algorithm="custom", config=cfg, machine=machine
        )
        d_spmd, ctx_spmd = spmd_delta_stepping(graph, root, machine, config=cfg)
        assert np.array_equal(res.distances, d_spmd)
        assert res.metrics.summary() == ctx_spmd.metrics.summary()


class TestStepContract:
    def test_step_is_frozen_and_ordered(self):
        s = Step(key=3, lo=0, hi=17)
        with pytest.raises((AttributeError, TypeError)):
            s.hi = 20
        assert s.lo < s.hi
