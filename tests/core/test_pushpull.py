"""Unit tests for the push/pull decision heuristic and estimators."""

import numpy as np
import pytest

from repro.core.buckets import bucket_members
from repro.core.config import SolverConfig
from repro.core.context import make_context
from repro.core.distances import init_distances
from repro.core.pruning import long_phase_push
from repro.core.pushpull import (
    decide_mode,
    estimate_models,
    estimate_models_exact,
)
from repro.runtime.machine import MachineConfig


def ctx_for(graph, *, delta=5, ranks=2, threads=2, alpha=None, **cfg):
    machine = MachineConfig(num_ranks=ranks, threads_per_rank=threads)
    if alpha is not None:
        # On toy graphs the per-message latency dominates everything; tests
        # about volume-driven decisions zero it out.
        from dataclasses import replace

        machine = replace(machine, alpha=alpha)
    return make_context(graph, machine, SolverConfig(delta=delta, **cfg))


def fig6_state_bucket2(ctx, graph):
    """Distances/settled right before the Fig. 6 bucket-2 long phase."""
    d = init_distances(graph.num_vertices, 0)
    settled = np.zeros(graph.num_vertices, dtype=bool)
    members0 = bucket_members(d, settled, 0, 5)
    settled[members0] = True
    long_phase_push(ctx, d, members0, 0)
    members2 = bucket_members(d, settled, 2, 5)
    settled[members2] = True
    return d, settled, members2


class TestExpectationEstimator:
    def test_push_records_exact(self, fig6_graph):
        ctx = ctx_for(fig6_graph, use_pruning=True)
        d, settled, members = fig6_state_bucket2(ctx, fig6_graph)
        est = estimate_models(ctx, d, settled, members, 2)
        assert est.push_records == 30  # exact from the long-degree table

    def test_pull_estimate_positive_and_bounded(self, fig6_graph):
        ctx = ctx_for(fig6_graph, use_pruning=True)
        d, settled, members = fig6_state_bucket2(ctx, fig6_graph)
        est = estimate_models(ctx, d, settled, members, 2)
        assert 0 < est.pull_requests <= 5  # 5 pendant arcs max

    def test_prefers_pull_for_heavy_bucket(self, fig6_graph):
        ctx = ctx_for(fig6_graph, use_pruning=True, alpha=0.0)
        d, settled, members = fig6_state_bucket2(ctx, fig6_graph)
        est = estimate_models(ctx, d, settled, members, 2)
        assert est.choice == "pull"

    def test_alpha_dominated_machine_prefers_push(self, fig6_graph):
        # With a high per-message latency the single push round beats the
        # pull request/response round trip on a tiny bucket.
        ctx = ctx_for(fig6_graph, use_pruning=True)
        d, settled, members = fig6_state_bucket2(ctx, fig6_graph)
        est = estimate_models(ctx, d, settled, members, 2)
        assert est.choice == "push"

    def test_empty_bucket_edges(self, path_graph):
        ctx = ctx_for(path_graph, use_pruning=True)
        d = init_distances(5, 0)
        settled = np.ones(5, dtype=bool)
        est = estimate_models(ctx, d, settled, np.empty(0, dtype=np.int64), 0)
        assert est.push_records == 0 and est.pull_requests == 0
        assert est.choice == "push"  # tie goes to push


class TestExactEstimator:
    def test_matches_true_counts_on_fig6(self, fig6_graph):
        ctx = ctx_for(fig6_graph, use_pruning=True, alpha=0.0)
        d, settled, members = fig6_state_bucket2(ctx, fig6_graph)
        est = estimate_models_exact(ctx, d, settled, members, 2)
        assert est.push_records == 30
        assert est.pull_requests == 5
        assert est.choice == "pull"
        assert est.estimator == "exact"

    def test_does_not_mutate_state(self, fig6_graph):
        ctx = ctx_for(fig6_graph, use_pruning=True)
        d, settled, members = fig6_state_bucket2(ctx, fig6_graph)
        d_before = d.copy()
        records_before = len(ctx.metrics.records)
        estimate_models_exact(ctx, d, settled, members, 2)
        assert np.array_equal(d, d_before)
        assert len(ctx.metrics.records) == records_before


class TestDecideMode:
    def test_no_pruning_always_push(self, fig6_graph):
        ctx = ctx_for(fig6_graph, use_pruning=False)
        d, settled, members = fig6_state_bucket2(ctx, fig6_graph)
        mode, est = decide_mode(ctx, d, settled, members, 2, 0)
        assert mode == "push" and est is None

    def test_forced_modes(self, fig6_graph):
        for forced in ("push", "pull"):
            ctx = ctx_for(fig6_graph, use_pruning=True, pushpull_mode=forced)
            d, settled, members = fig6_state_bucket2(ctx, fig6_graph)
            mode, _ = decide_mode(ctx, d, settled, members, 2, 0)
            assert mode == forced

    def test_sequence_replay_and_fallback(self, fig6_graph):
        ctx = ctx_for(
            fig6_graph,
            use_pruning=True,
            pushpull_mode="sequence",
            pushpull_sequence=("push",),
        )
        d, settled, members = fig6_state_bucket2(ctx, fig6_graph)
        mode, _ = decide_mode(ctx, d, settled, members, 2, 0)
        assert mode == "push"
        # past the end of the sequence: falls back to the heuristic
        mode2, est2 = decide_mode(ctx, d, settled, members, 2, 5)
        assert est2 is not None

    def test_auto_charges_allreduces(self, fig6_graph):
        ctx = ctx_for(fig6_graph, use_pruning=True)
        d, settled, members = fig6_state_bucket2(ctx, fig6_graph)
        before = ctx.metrics.total_allreduces
        decide_mode(ctx, d, settled, members, 2, 0)
        assert ctx.metrics.total_allreduces == before + 2

    def test_exact_estimator_selected_by_config(self, fig6_graph):
        ctx = ctx_for(
            fig6_graph, use_pruning=True, pushpull_estimator="exact"
        )
        d, settled, members = fig6_state_bucket2(ctx, fig6_graph)
        _, est = decide_mode(ctx, d, settled, members, 2, 0)
        assert est.estimator == "exact"

    def test_imbalance_weight_zero_is_volume_only(self, fig6_graph):
        ctx = ctx_for(fig6_graph, use_pruning=True, imbalance_weight=0.0)
        d, settled, members = fig6_state_bucket2(ctx, fig6_graph)
        est = estimate_models(ctx, d, settled, members, 2)
        # with zero imbalance weight the cost is purely volume + alpha terms
        m = ctx.machine
        from repro.runtime.comm import RELAX_RECORD_BYTES

        expected_push = (
            m.beta * est.push_records * RELAX_RECORD_BYTES + m.alpha * m.num_ranks
        )
        assert est.push_cost == pytest.approx(expected_push)
