"""Unit tests for the R-MAT generator (Graph 500 parameter sets)."""

import numpy as np
import pytest

from repro.graph.degree import degree_stats
from repro.graph.rmat import EDGE_FACTOR, RMAT1, RMAT2, RMATParams, rmat_edges, rmat_graph


class TestParams:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            RMATParams(0.5, 0.5, 0.5, 0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RMATParams(1.2, -0.2, 0.0, 0.0)

    def test_paper_parameter_sets(self):
        assert (RMAT1.a, RMAT1.b, RMAT1.c, RMAT1.d) == (0.57, 0.19, 0.19, 0.05)
        assert (RMAT2.a, RMAT2.b, RMAT2.c, RMAT2.d) == (0.50, 0.10, 0.10, 0.30)

    def test_skew_ordering(self):
        # RMAT-1 is the more skewed family (Section IV-E).
        assert RMAT1.skew > RMAT2.skew > 0


class TestEdgeStream:
    def test_edge_count(self):
        t, h = rmat_edges(scale=8, seed=0)
        assert t.size == h.size == EDGE_FACTOR << 8

    def test_ids_in_range(self):
        t, h = rmat_edges(scale=8, seed=0)
        n = 1 << 8
        assert t.min() >= 0 and t.max() < n
        assert h.min() >= 0 and h.max() < n

    def test_deterministic_per_seed(self):
        a = rmat_edges(scale=7, seed=5)
        b = rmat_edges(scale=7, seed=5)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        a = rmat_edges(scale=7, seed=5)
        b = rmat_edges(scale=7, seed=6)
        assert not np.array_equal(a[0], b[0])

    def test_scale_zero(self):
        t, h = rmat_edges(scale=0, seed=0)
        assert t.size == EDGE_FACTOR
        assert np.all(t == 0) and np.all(h == 0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            rmat_edges(scale=-1)

    def test_scramble_changes_labels_not_count(self):
        t1, h1 = rmat_edges(scale=8, seed=0, scramble=False)
        t2, h2 = rmat_edges(scale=8, seed=0, scramble=True)
        assert t1.size == t2.size
        assert not np.array_equal(t1, t2)

    def test_unscrambled_skew_concentrates_low_ids(self):
        # With RMAT-1 parameters, quadrant (0,0) dominates: low vertex ids
        # appear far more often than high ids before scrambling.
        t, h = rmat_edges(scale=10, seed=1, scramble=False)
        n = 1 << 10
        low = ((t < n // 4).sum() + (h < n // 4).sum()) / (2 * t.size)
        assert low > 0.5  # >> 25% for a uniform distribution


class TestGraph:
    def test_graph_shape(self):
        g = rmat_graph(scale=8, seed=0)
        assert g.num_vertices == 256
        # duplicates/self-loops reduce the count below the raw stream size
        assert 0 < g.num_undirected_edges <= EDGE_FACTOR * 256
        assert g.undirected

    def test_weight_range(self):
        g = rmat_graph(scale=8, seed=0, max_weight=255)
        assert g.weights.min() >= 1
        assert g.weights.max() <= 255

    def test_custom_weight_range(self):
        g = rmat_graph(scale=7, seed=0, max_weight=10)
        assert g.weights.max() <= 10

    def test_rmat1_skew_exceeds_rmat2(self):
        # Fig. 8: the RMAT-1 max degree grows much faster.
        g1 = rmat_graph(scale=11, seed=3, params=RMAT1)
        g2 = rmat_graph(scale=11, seed=3, params=RMAT2)
        assert degree_stats(g1).max_degree > degree_stats(g2).max_degree

    def test_max_degree_grows_with_scale(self):
        # Fig. 8: max degree increases with scale at fixed edge factor.
        m1 = degree_stats(rmat_graph(scale=9, seed=3)).max_degree
        m2 = degree_stats(rmat_graph(scale=12, seed=3)).max_degree
        assert m2 > m1

    def test_mean_degree_tracks_edge_factor(self):
        g = rmat_graph(scale=10, seed=0, edge_factor=16)
        # 16 undirected edges/vertex = 32 arcs/vertex, minus dedup losses.
        mean = g.degrees.mean()
        assert 16 < mean <= 32
