"""Request/response types of the query service (DESIGN.md §11).

A query enters the broker as a :class:`QueryRequest` (one root, optional
path targets, optional per-request deadline), travels through the
micro-batcher as-is, and resolves into a :class:`QueryResult` via a
:class:`QueryFuture` the submitter holds. Rejections are *typed*: a full
queue sheds with :class:`ServiceOverload` (the caller can back off and
retry), a closed broker refuses with :class:`ServiceShutdown`, a
deadline trip surfaces the engine's own
:class:`~repro.runtime.watchdog.SolveTimeout` through the future, an
open circuit breaker with no viable fallback refuses with
:class:`ServiceUnavailable`, and a solve whose output fails verification
surfaces :class:`SolveCorrupted` (DESIGN.md §12). Every admitted request
ends in exactly one of these outcomes or a result — the journey harness
(`tests/serve/test_journeys.py`) holds the service to that.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "ServiceOverload",
    "ServiceShutdown",
    "ServiceUnavailable",
    "SolveCorrupted",
    "QueryRequest",
    "QueryResult",
    "QueryFuture",
]


class ServiceOverload(RuntimeError):
    """The bounded request queue is at capacity; the request was shed.

    Carries the observed ``depth`` and configured ``capacity`` so callers
    (and tests) can reason about the rejection. Shedding at admission is
    the overload policy: the queue never grows past its bound, so queued
    requests keep their latency budget instead of collapsing together.
    """

    def __init__(self, depth: int, capacity: int) -> None:
        super().__init__(
            f"request queue at capacity ({depth}/{capacity}); request shed"
        )
        self.depth = depth
        self.capacity = capacity


class ServiceShutdown(RuntimeError):
    """The broker is shut down (or shutting down) and takes no new work."""


class ServiceUnavailable(RuntimeError):
    """The circuit breaker is open and no degradation path could serve the
    request (no cache entry, graph too large for the bounded-exact
    fallback). Carries the root and the open failure classes so callers
    can distinguish "the service is broken" from "you asked too much"."""

    def __init__(self, root: int, open_classes: tuple[str, ...] = ()) -> None:
        detail = f"service degraded; root {root} not servable"
        if open_classes:
            detail += f" (open breaker classes: {', '.join(open_classes)})"
        super().__init__(detail)
        self.root = root
        self.open_classes = tuple(open_classes)


class SolveCorrupted(RuntimeError):
    """A solve's output failed result verification (structural or
    reference validation) and was discarded before reaching the caller or
    the cache. Terminal form of the ``corrupt`` failure class once the
    retry budget is spent."""

    def __init__(self, root: int, attempt: int, detail: str) -> None:
        super().__init__(
            f"solve output for root {root} failed verification "
            f"(attempt {attempt}): {detail}"
        )
        self.root = root
        self.attempt = attempt
        self.detail = detail


@dataclass
class QueryRequest:
    """One admitted query: a root, optional path targets, a deadline.

    ``submitted_at`` is the broker-clock admission timestamp (seconds);
    request latency is measured from it. ``deadline`` is the per-request
    :class:`~repro.runtime.watchdog.DeadlineConfig` forwarded to the
    engine's watchdog — requests with different deadlines are never
    coalesced into one solve, so a strict budget cannot fail a lax one.
    """

    root: int
    targets: tuple[int, ...] = ()
    deadline: Any = None
    submitted_at: float = 0.0
    future: "QueryFuture" = field(default_factory=lambda: QueryFuture())
    #: wall-clock latency SLO of this request (seconds from submission);
    #: the micro-batcher schedules earliest-deadline-first on
    #: ``submitted_at + latency_budget_s``, so a tight budget jumps FIFO.
    #: None = no budget (FIFO among themselves).
    latency_budget_s: float | None = None
    #: solve attempts already consumed (bumped by the retry machinery
    #: before a request is re-queued).
    attempts: int = 0
    #: request-scoped observability context
    #: (:class:`~repro.obs.request.RequestContext`); minted by the broker
    #: only when wide events or tracing are armed, ``None`` otherwise —
    #: every layer guards its note with one ``is not None`` check.
    ctx: Any = None
    #: graph snapshot this request is pinned to, fixed at admission.
    #: Every stage — cache lookups, solves, path extraction — reads the
    #: pinned snapshot, so a request never observes a mixed graph even
    #: when :meth:`~repro.serve.broker.QueryBroker.apply_updates` lands
    #: mid-flight.
    snapshot_id: int = 0

    @property
    def coalesce_key(self) -> tuple:
        """Requests sharing this key are served by one solve.

        The snapshot id is part of the key: requests pinned to different
        snapshots must never share a solve, even for the same root.
        """
        return (self.root, self.deadline, self.snapshot_id)

    @property
    def deadline_at(self) -> float:
        """Absolute wall-clock deadline used for EDF batch ordering."""
        if self.latency_budget_s is None:
            return float("inf")
        return self.submitted_at + self.latency_budget_s


@dataclass
class QueryResult:
    """The answer to one query.

    ``distances`` is the full distance array from ``root`` (read-only; on
    a cache hit it *is* the cached array — bit-identical to a fresh
    solve). ``paths`` maps each requested target to its vertex sequence
    (root..target inclusive; ``None`` for unreachable targets), extracted
    deterministically from the distances. ``source`` records how the
    answer was produced: ``"cache"``, ``"solve"`` (fresh member of a
    batch) or ``"coalesced"`` (shared another request's solve in the same
    batch). ``sssp`` is the full :class:`~repro.core.solver.SsspResult`
    for fresh solves, ``None`` for cache hits (the cache stores only
    distances, by byte budget).
    """

    root: int
    distances: np.ndarray
    source: str
    latency_s: float
    batch_id: int | None = None
    paths: dict[int, list[int] | None] = field(default_factory=dict)
    sssp: Any = None
    #: solve attempts this answer consumed (1 = first try; >1 = retried-ok).
    attempts: int = 1
    #: True when the answer was served from cache while the circuit
    #: breaker was degraded — still bit-identical here (the graph is
    #: immutable), but flagged so callers can apply their own staleness
    #: policy once live graphs land.
    stale_ok: bool = False
    #: True when the answer came from the bounded-exact Bellman-Ford
    #: fallback path (breaker open). Distances are still exact.
    degraded: bool = False
    #: request id of the wide event describing this answer's journey
    #: (``None`` when request-scoped observability is disarmed).
    request_id: str | None = None
    #: graph snapshot the answer was computed against (the request's
    #: pinned snapshot; 0 on a broker that never applied updates).
    snapshot_id: int = 0

    @property
    def cached(self) -> bool:
        return self.source == "cache"

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    def distance_to(self, vertex: int) -> int:
        """Distance to one vertex (``INF`` when unreachable)."""
        return int(self.distances[int(vertex)])


class QueryFuture:
    """Completion handle for one submitted query.

    A tiny thread-safe future (no executor dependency): exactly one of
    :meth:`set_result` / :meth:`set_error` is called by the broker;
    :meth:`result` blocks the submitter until then. ``add_done_callback``
    is invoked inline on completion (used by closed-loop workload
    clients).
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: QueryResult | None = None
        self._error: BaseException | None = None
        self._callbacks: list = []
        self._lock = threading.Lock()

    def done(self) -> bool:
        return self._event.is_set()

    def set_result(self, result: QueryResult) -> None:
        with self._lock:
            if self._event.is_set():
                raise RuntimeError("future already completed")
            self._result = result
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def set_error(self, error: BaseException) -> None:
        with self._lock:
            if self._event.is_set():
                raise RuntimeError("future already completed")
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_done_callback(self, callback) -> None:
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def exception(self) -> BaseException | None:
        """The stored error, or None (does not block; None if pending)."""
        return self._error

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block until completed; re-raise the stored error if any."""
        if not self._event.wait(timeout):
            raise TimeoutError("query still pending")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result
