"""Contiguous vertex partitioning across ranks.

The paper distributes vertices over processors with a block distribution
(Section II, "Distributed Implementation"): rank ``r`` owns the contiguous
range ``[start[r], start[r+1])``. Owner lookup goes through a one-time
per-vertex rank table (:attr:`ContiguousPartition.owner_map`) — a single
gather per query batch, fully vectorisable for message routing.

Two strategies are provided:

- :class:`BlockPartition` — equal vertex counts per rank (the paper's);
- :class:`DegreeBalancedPartition` — boundaries chosen so the *aggregate
  degree* per rank balances instead, an ablation of the paper's observation
  that degree skew, not vertex count, drives load imbalance (Section III-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

__all__ = ["BlockPartition", "DegreeBalancedPartition", "ContiguousPartition"]


class ContiguousPartition:
    """Interface/base for contiguous partitions defined by boundaries.

    Subclasses provide :attr:`boundaries` (``int64[P + 1]`` with
    ``b[0] == 0`` and ``b[P] == n``); all lookups are shared.
    """

    num_vertices: int
    num_ranks: int

    @property
    def boundaries(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    @cached_property
    def owner_map(self) -> np.ndarray:
        """Per-vertex owning rank (``int64[n]``).

        Message routing resolves owners for every record of every exchange;
        a one-time O(n) table turns each query into a single gather instead
        of a ``searchsorted`` over the boundaries. Zero-size blocks vanish
        from the repeat, so the table matches the searchsorted semantics
        (a vertex at an empty block's boundary belongs to the block that
        actually contains it).
        """
        return np.repeat(
            np.arange(self.num_ranks, dtype=np.int64), np.diff(self.boundaries)
        )

    def owner(self, vertices: np.ndarray | int) -> np.ndarray | int:
        """Rank owning each vertex (vectorised; ids must be in range)."""
        v = np.asarray(vertices, dtype=np.int64)
        if v.ndim == 0:
            return int(self.owner_map[v])
        return self.owner_map[v]

    def rank_range(self, rank: int) -> tuple[int, int]:
        """Half-open vertex range ``[lo, hi)`` owned by ``rank``."""
        if not 0 <= rank < self.num_ranks:
            raise IndexError(f"rank {rank} out of range")
        b = self.boundaries
        return int(b[rank]), int(b[rank + 1])

    def rank_size(self, rank: int) -> int:
        """Number of vertices owned by ``rank``."""
        lo, hi = self.rank_range(rank)
        return hi - lo

    def to_local(self, rank: int, vertices: np.ndarray) -> np.ndarray:
        """Translate global vertex ids owned by ``rank`` to local indices."""
        lo, hi = self.rank_range(rank)
        v = np.asarray(vertices, dtype=np.int64)
        if v.size and (v.min() < lo or v.max() >= hi):
            raise ValueError(f"vertices not owned by rank {rank}")
        return v - lo

    def to_global(self, rank: int, local: np.ndarray) -> np.ndarray:
        """Translate local indices on ``rank`` back to global vertex ids."""
        lo, hi = self.rank_range(rank)
        v = np.asarray(local, dtype=np.int64)
        if v.size and (v.min() < 0 or v.max() >= hi - lo):
            raise ValueError(f"local indices out of range for rank {rank}")
        return v + lo

    def thread_owner(
        self, local_vertices: np.ndarray, rank: int, num_threads: int
    ) -> np.ndarray:
        """Thread owning each local vertex within a rank.

        Mirrors the paper's node-internal distribution: the vertices owned
        by a node are block-distributed again over its threads.
        """
        size = self.rank_size(rank)
        sub = BlockPartition(size, num_threads)
        return sub.owner(np.asarray(local_vertices, dtype=np.int64))


@dataclass(frozen=True)
class BlockPartition(ContiguousPartition):
    """Equal-vertex-count blocks (the paper's distribution).

    The blocks are as equal as possible: the first ``n % P`` ranks get
    ``ceil(n / P)`` vertices, the rest ``floor(n / P)``.
    """

    num_vertices: int
    num_ranks: int

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if self.num_vertices < 0:
            raise ValueError("num_vertices must be >= 0")

    @cached_property
    def boundaries(self) -> np.ndarray:
        """``int64[P + 1]`` block boundaries; rank r owns [b[r], b[r+1])."""
        n, p = self.num_vertices, self.num_ranks
        base, extra = divmod(n, p)
        sizes = np.full(p, base, dtype=np.int64)
        sizes[:extra] += 1
        out = np.zeros(p + 1, dtype=np.int64)
        np.cumsum(sizes, out=out[1:])
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockPartition(n={self.num_vertices}, P={self.num_ranks})"


class DegreeBalancedPartition(ContiguousPartition):
    """Contiguous blocks balanced by aggregate degree instead of count.

    Boundary ``b[r]`` is placed where the degree prefix sum crosses
    ``r / P`` of the total — each rank then holds roughly ``2m / P`` arc
    endpoints regardless of where the hubs sit. With scrambled vertex ids
    (Graph 500) the difference to :class:`BlockPartition` is modest; on
    unscrambled R-MAT graphs (hubs concentrated at low ids) it is dramatic
    — the ablation `bench_ablation_partition.py` quantifies both.
    """

    def __init__(self, degrees: np.ndarray, num_ranks: int) -> None:
        degrees = np.asarray(degrees, dtype=np.int64)
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if degrees.ndim != 1:
            raise ValueError("degrees must be one-dimensional")
        self.num_vertices = int(degrees.size)
        self.num_ranks = int(num_ranks)
        prefix = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=prefix[1:])
        total = int(prefix[-1])
        targets = (np.arange(1, num_ranks, dtype=np.int64) * total) // num_ranks
        cuts = np.searchsorted(prefix, targets, side="left")
        b = np.empty(num_ranks + 1, dtype=np.int64)
        b[0] = 0
        b[1:-1] = np.clip(cuts, 0, self.num_vertices)
        b[-1] = self.num_vertices
        # enforce monotonicity when many empty-degree prefixes collide
        np.maximum.accumulate(b, out=b)
        self._boundaries = b
        self._degree_totals = prefix[b[1:]] - prefix[b[:-1]]

    @property
    def boundaries(self) -> np.ndarray:
        return self._boundaries

    @property
    def degree_totals(self) -> np.ndarray:
        """Aggregate degree per rank (the balanced quantity)."""
        return self._degree_totals

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DegreeBalancedPartition(n={self.num_vertices}, "
            f"P={self.num_ranks})"
        )
