"""Per-phase and per-bucket statistics extraction.

Turns the raw counters of a run (:class:`repro.runtime.metrics.Metrics`)
into the series the paper plots:

- Fig. 3(a)/(b): phases and relaxations per algorithm variant;
- Fig. 4: per-phase relaxation counts, showing the dominance of long
  phases;
- Fig. 7: per-bucket self/backward/forward edge census with push vs. pull
  request counts.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.solver import SsspResult, solve_sssp
from repro.graph.csr import CSRGraph
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import Metrics

__all__ = [
    "phase_relaxation_series",
    "bucket_census_table",
    "algorithm_comparison",
]


def phase_relaxation_series(metrics: Metrics) -> list[dict[str, Any]]:
    """Fig. 4 data: one row per phase with kind and relaxation count."""
    return [
        {"phase": i, "kind": kind, "relaxations": count}
        for i, (kind, count) in enumerate(metrics.per_phase_relaxations)
    ]


def bucket_census_table(metrics: Metrics) -> list[dict[str, Any]]:
    """Fig. 7 data: per-bucket census rows (requires ``collect_census``)."""
    return [dict(row) for row in metrics.per_bucket_stats]


def algorithm_comparison(
    graph: CSRGraph,
    root: int,
    specs: Sequence[tuple[str, str, int]],
    *,
    machine: MachineConfig | None = None,
    num_ranks: int = 8,
    threads_per_rank: int = 8,
) -> list[dict[str, Any]]:
    """Fig. 3 driver: run several algorithm variants on one graph.

    ``specs`` is a sequence of ``(label, preset_name, delta)``; the result
    is one summary row per variant (phases, relaxations, buckets, simulated
    GTEPS) suitable for :func:`repro.util.format_table`.
    """
    rows: list[dict[str, Any]] = []
    for label, name, delta in specs:
        result: SsspResult = solve_sssp(
            graph,
            root,
            algorithm=name,
            delta=delta,
            machine=machine,
            num_ranks=num_ranks,
            threads_per_rank=threads_per_rank,
        )
        rows.append(
            {
                "algorithm": label,
                "phases": result.metrics.total_phases,
                "relaxations": result.metrics.total_relaxations,
                "buckets": result.metrics.buckets_processed,
                "gteps": result.gteps,
                "time_s": result.cost.total_time,
            }
        )
    return rows
