"""Prometheus text-exposition validator (a promtool-style lint, in-tree).

CI's ``obs-serve-smoke`` job needs to assert that ``--metrics-out`` files
are well-formed without depending on promtool being installed. This
module parses the classic text exposition format strictly enough to
catch the bugs that matter:

- malformed metric/label names, unescaped label values (backslash,
  double quote, newline must appear as ``\\\\``, ``\\"``, ``\\n``);
- samples whose metric was never declared with ``# TYPE``, or that
  appear under a second conflicting ``# TYPE``;
- histogram inconsistencies: missing ``+Inf`` bucket, non-cumulative
  bucket counts, ``_count`` disagreeing with the ``+Inf`` bucket, or a
  series with buckets but no ``_sum``/``_count``;
- counter samples that are negative or non-numeric values anywhere.

Usage: :func:`check_text` returns a list of problem strings (empty =
valid); ``python -m repro.obs.promcheck FILE`` exits non-zero and prints
them.
"""

from __future__ import annotations

import re

__all__ = ["check_text", "check_file", "parse_sample"]

_METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: One label pair inside {...}: name="value" with spec escapes only.
_PAIR_RE = re.compile(
    r'\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"((?:[^"\\\n]|\\\\|\\"|\\n)*)"\s*(,|$)'
)
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_sample(line: str) -> tuple[str, dict[str, str], float] | None:
    """Parse one sample line into ``(name, labels, value)``; None on error."""
    if "{" in line:
        name, _, rest = line.partition("{")
        body, closed, tail = rest.partition("}")
        if not closed:
            return None
        labels: dict[str, str] = {}
        pos = 0
        while pos < len(body):
            m = _PAIR_RE.match(body, pos)
            if m is None:
                return None
            labels[m.group(1)] = m.group(2)
            pos = m.end()
        value_text = tail.strip()
    else:
        parts = line.split()
        if len(parts) < 2:
            return None
        name, value_text = parts[0], parts[1]
        labels = {}
    name = name.strip()
    if not _METRIC_RE.match(name):
        return None
    value_text = value_text.split()[0] if value_text.split() else ""
    try:
        value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
    except ValueError:
        return None
    return name, labels, value


def _base_name(name: str) -> str:
    """Histogram sample name -> family name (strips _bucket/_sum/_count)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_text(text: str) -> list[str]:
    """Validate a text-exposition payload; returns problems (empty = ok)."""
    problems: list[str] = []
    types: dict[str, str] = {}
    # histogram family -> label-subset-key -> {le: count}, plus seen sums.
    hist_buckets: dict[str, dict[tuple, dict[str, float]]] = {}
    hist_sums: dict[str, set] = {}
    hist_counts: dict[str, dict[tuple, float]] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                if len(parts) < 3 or not _METRIC_RE.match(parts[2]):
                    problems.append(
                        f"line {lineno}: malformed {parts[1]} comment: {line!r}"
                    )
                    continue
                if parts[1] == "TYPE":
                    name, family = parts[2], parts[3] if len(parts) > 3 else ""
                    if family not in _TYPES:
                        problems.append(
                            f"line {lineno}: unknown TYPE {family!r} for {name}"
                        )
                    elif name in types and types[name] != family:
                        problems.append(
                            f"line {lineno}: conflicting TYPE for {name}: "
                            f"{types[name]} then {family}"
                        )
                    else:
                        types[name] = family
            continue
        parsed = parse_sample(line)
        if parsed is None:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, labels, value = parsed
        for label in labels:
            if not _LABEL_RE.match(label):
                problems.append(
                    f"line {lineno}: invalid label name {label!r}"
                )
        family_name = _base_name(name)
        family = types.get(name) or types.get(family_name)
        if family is None:
            problems.append(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
            continue
        if family == "counter" and value < 0:
            problems.append(
                f"line {lineno}: counter {name} has negative value {value}"
            )
        if family == "histogram":
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            if name.endswith("_bucket"):
                if "le" not in labels:
                    problems.append(
                        f"line {lineno}: histogram bucket without le label"
                    )
                    continue
                hist_buckets.setdefault(family_name, {}).setdefault(key, {})[
                    labels["le"]
                ] = value
            elif name.endswith("_sum"):
                hist_sums.setdefault(family_name, set()).add(key)
            elif name.endswith("_count"):
                hist_counts.setdefault(family_name, {})[key] = value

    for family_name, series in hist_buckets.items():
        for key, buckets in series.items():
            where = f"{family_name}{dict(key) or ''}"
            if "+Inf" not in buckets:
                problems.append(f"{where}: histogram missing +Inf bucket")
                continue
            ordered = sorted(
                ((float(le.replace("+Inf", "inf")), c)
                 for le, c in buckets.items()),
            )
            counts = [c for _, c in ordered]
            if any(a > b for a, b in zip(counts, counts[1:])):
                problems.append(
                    f"{where}: bucket counts not cumulative: {counts}"
                )
            count = hist_counts.get(family_name, {}).get(key)
            if count is None:
                problems.append(f"{where}: histogram missing _count sample")
            elif count != buckets["+Inf"]:
                problems.append(
                    f"{where}: _count {count} != +Inf bucket {buckets['+Inf']}"
                )
            if key not in hist_sums.get(family_name, set()):
                problems.append(f"{where}: histogram missing _sum sample")
    return problems


def check_file(path: str) -> list[str]:
    """Validate one exposition file; returns problems (empty = valid)."""
    with open(path, encoding="utf-8") as fh:
        return check_text(fh.read())


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.promcheck FILE...`` — exit 1 on any problem."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.obs.promcheck",
        description="validate Prometheus text exposition files",
    )
    parser.add_argument("paths", nargs="+", help="exposition files to check")
    args = parser.parse_args(argv)
    failed = False
    for path in args.paths:
        problems = check_file(path)
        if problems:
            failed = True
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  {problem}")
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover — exercised via CLI tests
    raise SystemExit(main())
