"""Inside the push/pull decision: census, estimators and the oracle.

A guided tour of the pruning machinery of Sections III-B/III-C/IV-G:

1. run with the per-bucket census enabled and print the self/backward/
   forward edge classes that make push redundant on hub-heavy buckets;
2. compare the expectation estimator's predictions against the exact
   request counts;
3. run the exhaustive 2^k decision oracle and verify the heuristic's
   choices.

Run:  python examples/push_pull_tuning.py
"""

from __future__ import annotations

from repro import SolverConfig, rmat_graph, solve_sssp
from repro.analysis.oracle import evaluate_decision_sequences
from repro.graph.roots import choose_root
from repro.util import format_table


def census_tour(graph, root: int) -> None:
    cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                       collect_census=True)
    res = solve_sssp(graph, root, algorithm="prune-25", config=cfg,
                     num_ranks=8, threads_per_rank=8)
    rows = []
    for s in res.metrics.per_bucket_stats:
        pull_cost = 2 * s["pull_requests"]
        rows.append(
            {
                "bucket": s["bucket"],
                "members": s["members"],
                "self": s["self_edges"],
                "backward": s["backward_edges"],
                "forward": s["forward_edges"],
                "push_cost": s["push_relaxations"],
                "pull_cost<=": pull_cost,
                "chosen": s["mode"],
            }
        )
    print(format_table(rows, "per-bucket census (push relaxations vs pull bound)"))
    redundant = sum(r["self"] + r["backward"] for r in rows)
    total = sum(r["push_cost"] for r in rows)
    print(f"\nself+backward (redundant under push): {redundant} of {total} "
          f"long relaxations ({redundant / max(total, 1):.0%})")


def oracle_tour(graph, root: int) -> None:
    for estimator in ("expectation", "exact"):
        cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                           use_hybrid=True, pushpull_estimator=estimator)
        rep = evaluate_decision_sequences(graph, root, config=cfg,
                                          num_ranks=8, threads_per_rank=8)
        print(f"\nestimator={estimator}:")
        print(f"  buckets:   {rep.num_buckets} -> {2**rep.num_buckets} sequences")
        print(f"  heuristic: {rep.heuristic_sequence}")
        print(f"  best:      {rep.best_sequence}")
        print(f"  optimal:   {rep.heuristic_is_optimal} "
              f"(slowdown {rep.slowdown_vs_best:.3f}, "
              f"worst sequence {rep.worst_time / rep.best_time:.2f}x best)")


if __name__ == "__main__":
    graph = rmat_graph(scale=12, seed=5).sorted_by_weight()
    root = choose_root(graph, seed=0)
    census_tour(graph, root)
    oracle_tour(graph, root)
