"""Workload generator: Zipf popularity, arrival processes, run_workload."""

import numpy as np
import pytest

from repro.graph.roots import choose_roots
from repro.serve.broker import QueryBroker
from repro.serve.workload import (
    WorkloadSpec,
    interarrival_times,
    root_sequence,
    run_workload,
    zipf_weights,
)


class TestSpec:
    def test_defaults_valid(self):
        spec = WorkloadSpec()
        assert spec.arrival == "closed"

    def test_evolve(self):
        spec = WorkloadSpec().evolve(num_requests=7, zipf_s=0.0)
        assert spec.num_requests == 7
        assert spec.zipf_s == 0.0

    @pytest.mark.parametrize(
        "changes",
        [
            {"arrival": "poisson"},
            {"num_requests": 0},
            {"rate_qps": 0.0},
            {"concurrency": 0},
            {"zipf_s": -1.0},
            {"root_universe": 0},
        ],
    )
    def test_validation(self, changes):
        with pytest.raises(ValueError):
            WorkloadSpec(**changes)


class TestZipf:
    def test_weights_normalized_and_decreasing(self):
        w = zipf_weights(16, 1.1)
        assert w.sum() == pytest.approx(1.0)
        assert (np.diff(w) < 0).all()

    def test_s_zero_is_uniform(self):
        w = zipf_weights(8, 0.0)
        assert np.allclose(w, 1 / 8)

    def test_root_sequence_deterministic_and_in_universe(self, rmat1_small):
        spec = WorkloadSpec(num_requests=100, root_universe=16, seed=3)
        a = root_sequence(rmat1_small, spec)
        b = root_sequence(rmat1_small, spec)
        assert np.array_equal(a, b)
        universe = set(
            int(r) for r in choose_roots(rmat1_small, 16, seed=3)
        )
        assert set(a.tolist()) <= universe
        # roots are servable: none isolated
        assert all(rmat1_small.degrees[r] > 0 for r in set(a.tolist()))

    def test_skew_concentrates_traffic(self, rmat1_small):
        spec = WorkloadSpec(
            num_requests=400, root_universe=32, zipf_s=1.5, seed=0
        )
        roots = root_sequence(rmat1_small, spec)
        _, counts = np.unique(roots, return_counts=True)
        # the hottest root dominates well beyond the uniform share
        assert counts.max() > 3 * spec.num_requests / spec.root_universe

    def test_interarrival_seeded_and_rate_scaled(self):
        spec = WorkloadSpec(num_requests=2000, arrival="open", rate_qps=100.0)
        gaps = interarrival_times(spec)
        assert np.array_equal(gaps, interarrival_times(spec))
        assert (gaps >= 0).all()
        assert gaps.mean() == pytest.approx(1 / 100.0, rel=0.2)


class TestSlo:
    def test_policy_pass_and_fail(self):
        from repro.serve.slo import SloPolicy

        report = {
            "p50_s": 0.001, "p99_s": 0.1, "cache_hit_rate": 0.6,
            "offered": 100, "shed": 10,
        }
        assert SloPolicy().check(report) == []
        assert SloPolicy(p99_s=1.0, min_hit_rate=0.5,
                         max_shed_fraction=0.2).check(report) == []
        violations = SloPolicy(p50_s=0.0001, p99_s=0.01, min_hit_rate=0.9,
                               max_shed_fraction=0.05).check(report)
        assert len(violations) == 4

    def test_percentile_exact_lower(self):
        from repro.serve.slo import percentile

        assert percentile([3.0, 1.0, 2.0], 50) == 2.0
        assert np.isnan(percentile([], 50))

    def test_latency_window_split_by_source(self):
        from repro.serve.slo import LatencyWindow

        window = LatencyWindow(window=4)
        for latency in (0.1, 0.2, 0.3):
            window.record("solve", latency)
        window.record("cache", 0.001)
        summary = window.summary()
        assert summary["requests"] == 4
        assert summary["p50_cache_s"] == 0.001
        assert summary["p50_solve_s"] == 0.2
        # bounded reservoir: old samples age out
        for _ in range(10):
            window.record("solve", 9.0)
        assert window.samples("solve") == [9.0] * 4


class TestRunWorkload:
    def test_closed_loop_manual_broker(self, rmat1_small):
        broker = QueryBroker(
            rmat1_small, num_ranks=2, threads_per_rank=2,
            num_workers=0, flush_interval_s=0.0,
        )
        spec = WorkloadSpec(
            num_requests=20, arrival="closed", concurrency=1,
            zipf_s=1.2, root_universe=4, seed=1,
        )
        report = run_workload(broker, spec)
        broker.shutdown()
        assert report["completed"] == 20
        assert report["shed"] == 0
        assert report["workload"] == "closed"
        assert 0.0 < report["cache_hit_rate"] < 1.0
        assert report["throughput_qps"] > 0
        for key in ("p50_s", "p99_s", "mean_batch_size", "solves"):
            assert key in report

    def test_closed_loop_threaded_clients(self, rmat1_small):
        broker = QueryBroker(
            rmat1_small, num_ranks=2, threads_per_rank=2,
            num_workers=1, max_batch_size=4, flush_interval_s=0.001,
        )
        spec = WorkloadSpec(
            num_requests=24, arrival="closed", concurrency=3,
            zipf_s=1.2, root_universe=4, seed=2,
        )
        report = run_workload(broker, spec)
        broker.shutdown()
        assert report["completed"] == 24
        # 4 distinct roots, 24 requests: the cache must absorb most
        assert report["solves"] <= 8

    def test_open_loop(self, rmat1_small):
        broker = QueryBroker(
            rmat1_small, num_ranks=2, threads_per_rank=2,
            num_workers=1, max_batch_size=8, flush_interval_s=0.001,
        )
        spec = WorkloadSpec(
            num_requests=15, arrival="open", rate_qps=5000.0,
            zipf_s=1.1, root_universe=4, seed=3,
        )
        report = run_workload(broker, spec)
        broker.shutdown()
        assert report["completed"] + report["shed"] == 15
        assert report["shed"] == 0  # capacity 256 cannot overflow here

    def test_report_is_delta_scoped(self, rmat1_small):
        # two runs over one broker: the second report counts only its own
        broker = QueryBroker(
            rmat1_small, num_ranks=2, threads_per_rank=2,
            num_workers=0, flush_interval_s=0.0,
        )
        spec = WorkloadSpec(
            num_requests=10, arrival="closed", concurrency=1,
            root_universe=4, seed=4,
        )
        first = run_workload(broker, spec)
        second = run_workload(broker, spec)
        broker.shutdown()
        assert first["completed"] == 10
        assert second["completed"] == 10
