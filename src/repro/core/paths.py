"""Shortest-path tree reconstruction and path extraction.

The paper's algorithms compute distances only; a downstream consumer
(routing, centrality, Graph 500 validation) also needs the *tree*. Rather
than burden the distributed engine with parent bookkeeping, the tree is
reconstructed from the distance array in one vectorised pass: vertex ``v``
may pick any neighbour ``u`` with ``d(u) + w(u, v) == d(v)`` as its parent
— such a neighbour always exists for a reached non-root vertex, and any
choice yields a valid shortest-path tree.

Also provides predecessor *sets* (all tight incoming arcs), the structure
weighted betweenness accumulation walks (:mod:`repro.apps.centrality`).
"""

from __future__ import annotations

import numpy as np

from repro.core.distances import INF
from repro.graph.csr import CSRGraph
from repro.util.ranges import concat_ranges

__all__ = [
    "build_parent_tree",
    "extract_path",
    "predecessor_arcs",
    "tree_depths",
    "NO_PARENT",
]

NO_PARENT: int = -1
"""Parent marker for the root and for unreached vertices."""


def build_parent_tree(graph: CSRGraph, d: np.ndarray, root: int) -> np.ndarray:
    """Parent of every vertex in some shortest-path tree rooted at ``root``.

    Vectorised over all arcs: an arc ``(u, v)`` is *tight* when
    ``d[u] + w == d[v]``; every reached non-root vertex selects one tight
    incoming arc. Returns ``int64[n]`` with :data:`NO_PARENT` for the root
    and for unreached vertices.

    Raises ``ValueError`` if ``d`` is not a valid distance array for the
    graph (a reached non-root vertex with no tight incoming arc).
    """
    n = graph.num_vertices
    d = np.asarray(d, dtype=np.int64)
    if d.shape != (n,):
        raise ValueError("distance array shape mismatch")
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    tails = graph.arc_tails()
    heads = graph.adj
    finite_tail = d[tails] < INF
    tight = finite_tail & (d[tails] + graph.weights == d[heads])
    # For each head with at least one tight arc, keep any one tail (last
    # write wins — all candidates are equally valid).
    parent[heads[tight]] = tails[tight]
    parent[root] = NO_PARENT
    reached = d < INF
    orphans = reached & (parent == NO_PARENT)
    orphans[root] = False
    if orphans.any():
        v = int(np.nonzero(orphans)[0][0])
        raise ValueError(
            f"invalid distance array: vertex {v} is reached (d={int(d[v])}) "
            "but has no tight incoming arc"
        )
    return parent


def extract_path(parent: np.ndarray, root: int, target: int) -> list[int]:
    """Vertex sequence root -> ... -> target along the parent tree.

    Returns ``[]`` when ``target`` is unreached. Guards against malformed
    parent arrays (cycles) by bounding the walk at ``n`` steps.
    """
    parent = np.asarray(parent, dtype=np.int64)
    if target == root:
        return [root]
    if parent[target] == NO_PARENT:
        return []
    path = [int(target)]
    v = int(target)
    for _ in range(parent.size):
        v = int(parent[v])
        path.append(v)
        if v == root:
            return path[::-1]
    raise ValueError("parent array contains a cycle")


def predecessor_arcs(
    graph: CSRGraph, d: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All tight arcs ``(u, v)`` with ``d[u] + w == d[v]`` (the SP DAG).

    Returns parallel arrays ``(tails, heads)`` of the shortest-path DAG
    edges — every shortest path from the root to any vertex is a path in
    this DAG, the structure Brandes-style betweenness accumulation needs.
    """
    d = np.asarray(d, dtype=np.int64)
    tails = graph.arc_tails()
    heads = graph.adj
    finite = d[tails] < INF
    tight = finite & (d[tails] + graph.weights == d[heads])
    return tails[tight], heads[tight]


def tree_depths(parent: np.ndarray, root: int) -> np.ndarray:
    """Hop depth of every vertex in the parent tree (-1 if unreached).

    Runs in O(n) amortised via path-compression-style memoisation.
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = parent.size
    depth = np.full(n, -2, dtype=np.int64)  # -2 = unknown
    depth[root] = 0
    unreached = parent == NO_PARENT
    depth[unreached] = -1
    depth[root] = 0
    for v in range(n):
        if depth[v] != -2:
            continue
        chain = []
        u = v
        while depth[u] == -2:
            chain.append(u)
            u = int(parent[u])
        base = depth[u]
        for i, x in enumerate(reversed(chain), start=1):
            depth[x] = base + i
    return depth
