"""Unit tests for social stand-ins, mesh generators, IO and root choice."""

import numpy as np
import pytest

from repro.graph.degree import degree_stats
from repro.graph.grid import grid_graph, random_geometric_graph
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list
from repro.graph.roots import choose_root, choose_roots
from repro.graph.social import SOCIAL_GRAPH_SPECS, synthetic_social_graph


class TestSocial:
    def test_known_networks_present(self):
        assert {"friendster", "orkut", "livejournal"} == set(SOCIAL_GRAPH_SPECS)

    def test_paper_statistics_recorded(self):
        spec = SOCIAL_GRAPH_SPECS["friendster"]
        assert spec.paper_vertices == 63_000_000
        assert spec.paper_edges == 1_800_000_000
        assert spec.paper_avg_degree == pytest.approx(2 * 1.8e9 / 63e6)

    def test_generation_shape(self):
        g = synthetic_social_graph("orkut", scale=11, seed=0)
        assert g.num_vertices == 2048
        assert g.num_undirected_edges > 0
        assert g.weights.min() >= 1

    def test_heavy_tail(self):
        g = synthetic_social_graph("friendster", scale=12, seed=1)
        s = degree_stats(g)
        assert s.skew_ratio > 3  # hub degrees far above the mean

    def test_case_insensitive_name(self):
        g = synthetic_social_graph("LiveJournal", scale=9, seed=0)
        assert g.num_vertices == 512

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown social graph"):
            synthetic_social_graph("myspace", scale=9)

    def test_deterministic(self):
        a = synthetic_social_graph("orkut", scale=10, seed=5)
        b = synthetic_social_graph("orkut", scale=10, seed=5)
        assert np.array_equal(a.adj, b.adj)


class TestGrid:
    def test_grid_shape(self):
        g = grid_graph(4, 5)
        assert g.num_vertices == 20
        # 4*4 horizontal + 3*5 vertical edges
        assert g.num_undirected_edges == 4 * 4 + 3 * 5

    def test_grid_degrees(self):
        g = grid_graph(3, 3)
        deg = g.degrees
        assert deg.max() == 4  # center
        assert deg.min() == 2  # corners

    def test_diagonal_adds_edges(self):
        a = grid_graph(4, 4, diagonal=False)
        b = grid_graph(4, 4, diagonal=True)
        assert b.num_undirected_edges == a.num_undirected_edges + 9

    def test_single_cell(self):
        g = grid_graph(1, 1)
        assert g.num_vertices == 1 and g.num_arcs == 0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)

    def test_geometric_graph_connects_close_points(self):
        g = random_geometric_graph(200, radius=0.2, seed=0)
        assert g.num_undirected_edges > 0
        assert g.weights.min() >= 1

    def test_geometric_radius_monotone(self):
        few = random_geometric_graph(200, radius=0.05, seed=0).num_undirected_edges
        many = random_geometric_graph(200, radius=0.3, seed=0).num_undirected_edges
        assert many > few

    def test_geometric_zero_vertices(self):
        g = random_geometric_graph(0, radius=0.1)
        assert g.num_vertices == 0

    def test_geometric_invalid_radius(self):
        with pytest.raises(ValueError):
            random_geometric_graph(10, radius=0.0)


class TestIO:
    def test_npz_round_trip(self, tmp_path, rmat1_small):
        path = tmp_path / "g.npz"
        save_npz(rmat1_small, path)
        g2 = load_npz(path)
        assert np.array_equal(g2.indptr, rmat1_small.indptr)
        assert np.array_equal(g2.adj, rmat1_small.adj)
        assert np.array_equal(g2.weights, rmat1_small.weights)
        assert g2.undirected == rmat1_small.undirected

    def test_edge_list_round_trip(self, tmp_path, path_graph):
        path = tmp_path / "edges.txt"
        n_lines = write_edge_list(path_graph, path)
        assert n_lines == path_graph.num_undirected_edges
        g2 = read_edge_list(path, num_vertices=5)
        assert np.array_equal(g2.indptr, path_graph.indptr)
        assert np.array_equal(g2.weights, path_graph.weights)

    def test_edge_list_infers_vertex_count(self, tmp_path, path_graph):
        path = tmp_path / "edges.txt"
        write_edge_list(path_graph, path)
        g2 = read_edge_list(path)
        assert g2.num_vertices == 5


class TestRoots:
    def test_root_has_degree(self, disconnected_graph):
        for seed in range(10):
            r = choose_root(disconnected_graph, seed=seed)
            assert disconnected_graph.degree(r) > 0

    def test_roots_distinct(self, rmat1_small):
        roots = choose_roots(rmat1_small, 16, seed=0)
        assert len(set(roots.tolist())) == 16

    def test_count_clipped_to_candidates(self, path_graph):
        roots = choose_roots(path_graph, 100, seed=0)
        assert roots.size == 5

    def test_edgeless_graph_rejected(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph(np.array([0, 0]), np.array([]), np.array([]))
        with pytest.raises(ValueError, match="no valid root"):
            choose_root(g)

    def test_deterministic(self, rmat1_small):
        assert choose_root(rmat1_small, seed=4) == choose_root(rmat1_small, seed=4)
