"""QueryBroker: the embeddable SSSP query service (DESIGN.md §11/§12).

Request path::

    submit ──▶ admission control ──▶ distance cache ──▶ micro-batcher
                  │ (bounded queue)       │ (hit: done)      │ (EDF order)
                  ▼                       ▼                  ▼
           ServiceOverload          QueryFuture        worker pool
                                                  (per-request isolation,
                                                   retries, breaker ladder)

One broker serves one (graph, config, machine) triple — the coordinates
the distance cache is keyed under; run one broker per graph/config pair
you serve. Queries for the same root arriving in one batch window are
*coalesced* into a single solve; different per-request deadlines are
never coalesced (a strict budget must not fail a lax request). Answers
are bit-identical to offline :func:`~repro.core.solver.solve_sssp` on
every path — cache hit, cache miss, batched, retried and degraded —
because the engine is deterministic and the cache stores engine output
verbatim.

Live graphs (DESIGN.md §15): :meth:`QueryBroker.apply_updates` applies
an :class:`~repro.dynamic.updates.UpdateBatch` through a
:class:`~repro.dynamic.versioner.GraphVersioner` and swaps the current
snapshot under a **drain-free epoch handoff** — no barrier, no paused
traffic. Every request is pinned to the snapshot current at admission:
its cache key is ``(snapshot_id, root)``, its solve runs a per-snapshot
:class:`~repro.core.solver.BatchSolver`, its paths extract against its
snapshot's graph, and its wide event carries the ``snapshot_id`` — so
no request ever observes a mixed snapshot. Old snapshots stay resident
while requests are pinned to them and are retired (solver, graph, cache
entries) once the last pinned request completes and retention lapses.
Hot cached roots can optionally be **repaired in place** across the
handoff via :func:`~repro.dynamic.repair.repair_sssp` — incrementally
fixed distances, bit-identical to a fresh solve on the new snapshot.

Resilience (DESIGN.md §12): a failing, stalling or corrupted root fails
**only its own request** — batch-mates complete normally. Failed solve
groups go through the :class:`~repro.serve.retry.RetryPolicy` (capped
exponential backoff back into the batcher, budgeted hedged re-attempts
for stragglers) before a typed terminal error. A per-failure-class
:class:`~repro.serve.breaker.CircuitBreaker` trips on consecutive
failures; while open the broker walks the degradation ladder — cache
hits flagged ``stale_ok``, bounded-exact Bellman-Ford fallback on small
graphs, typed :class:`~repro.serve.request.ServiceUnavailable` otherwise
— and cache reads re-verify their checksums. Chaos
(:class:`~repro.serve.chaos.ChaosPlan`) injects deterministic faults
underneath all of it for replayable scenario tests.

Overload sheds at admission with a typed
:class:`~repro.serve.request.ServiceOverload`; shutdown drains: admitted
requests complete — including in-flight retries, which drain waits for
and abort cancels — new ones are refused. Telemetry flows into a
:class:`~repro.obs.registry.MetricsRegistry` (queue depth, batch size,
latency histograms, cache/shed/retry/breaker counters) and — when a
:class:`~repro.obs.tracer.TraceConfig` is given — into per-request,
per-batch and resilience tracer spans written at shutdown.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.paths import build_parent_tree, extract_path
from repro.core.solver import BatchSolver, run_validation
from repro.dynamic.repair import repair_sssp
from repro.dynamic.versioner import GraphVersioner
from repro.obs.request import RequestContext, request_id
from repro.runtime.watchdog import SolveTimeout
from repro.serve.batcher import MicroBatcher
from repro.serve.events import WideEventLog
from repro.serve.breaker import BreakerConfig, CircuitBreaker
from repro.serve.cache import DistanceCache
from repro.serve.chaos import ChaosPlan, ChaosSolver
from repro.serve.request import (
    QueryFuture,
    QueryRequest,
    QueryResult,
    ServiceOverload,
    ServiceShutdown,
    ServiceUnavailable,
    SolveCorrupted,
)
from repro.serve.retry import RetryPolicy
from repro.serve.slo import LatencyWindow

__all__ = ["QueryBroker"]

_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

_UNSET = object()


def _classify(exc: BaseException) -> str:
    """Map an attempt failure onto the breaker/retry failure taxonomy."""
    if isinstance(exc, SolveTimeout):
        return "timeout"
    if isinstance(exc, SolveCorrupted):
        return "corrupt"
    return "error"


class QueryBroker:
    """Batched, cached, admission-controlled SSSP query service.

    Parameters
    ----------
    graph:
        The served graph (preprocessing is hoisted once via
        :class:`~repro.core.solver.BatchSolver`).
    algorithm, delta, config, machine, num_ranks, threads_per_rank:
        Solver/machine coordinates, as for ``solve_sssp``.
    capacity:
        Bound on queued requests; submits beyond it shed with
        :class:`ServiceOverload`.
    max_batch_size:
        Size trigger of the micro-batcher.
    flush_interval_s:
        Latency trigger: the longest a queued request waits for its
        batch to fill.
    num_workers:
        Worker threads executing batches. ``0`` is manual mode — nothing
        runs until :meth:`process_once` is called — which tests and
        single-threaded embeddings use for determinism.
    cache_bytes:
        Byte budget of the distance cache (``0`` disables caching).
    default_deadline:
        :class:`~repro.runtime.watchdog.DeadlineConfig` applied to
        requests that do not carry their own.
    retry:
        Optional :class:`~repro.serve.retry.RetryPolicy`. ``None`` (the
        default) keeps the pre-resilience behavior: first failure is
        terminal.
    breaker:
        Optional :class:`~repro.serve.breaker.BreakerConfig` (the broker
        builds the breaker on its own clock) or a ready
        :class:`~repro.serve.breaker.CircuitBreaker` (tests inject one
        with a fake clock). Enables cache checksums and the degradation
        ladder.
    chaos:
        Optional :class:`~repro.serve.chaos.ChaosPlan`; solves then run
        through a :class:`~repro.serve.chaos.ChaosSolver` (exposed as
        ``broker.chaos``) injecting the plan's deterministic faults.
    verify:
        Post-solve result verification, as ``solve_sssp``'s ``validate``
        (``"structural"`` is the cheap production shape). A failed check
        becomes the ``corrupt`` failure class.
    negative_ttl_s:
        TTL of negative-cache tombstones for timed-out roots (0 = off):
        within the TTL, requests for a recently timed-out root fail fast
        with :class:`~repro.runtime.watchdog.SolveTimeout`.
    trace:
        Optional :class:`~repro.obs.tracer.TraceConfig`; per-request,
        per-batch and resilience spans are recorded and artifacts
        written at shutdown.
    registry:
        Optional external :class:`~repro.obs.registry.MetricsRegistry`;
        defaults to the tracer's (when tracing) or a fresh one.
    events:
        Optional wide-event sink: a
        :class:`~repro.serve.events.WideEventLog`, a path (a log writing
        there at shutdown is built), or ``True`` (in-memory log). Arms
        request-scoped observability (DESIGN.md §14): every request gets
        a :class:`~repro.obs.request.RequestContext` propagated through
        batcher/solve/retry/breaker, one wide event per terminal
        completion, request-id exemplars on the latency histograms, and
        request ids on batch/solve spans. ``None`` (default) keeps the
        whole machinery unbuilt — zero cost. A tracer alone also mints
        contexts so its spans can carry request ids.
    snapshot_retention:
        How many graph snapshots the live-graph versioner keeps resident
        (see :meth:`apply_updates`). Requests pinned to an
        out-of-retention snapshot still complete — retirement of their
        solver, graph and cache entries is deferred until the last
        pinned request resolves.
    """

    def __init__(
        self,
        graph,
        *,
        algorithm: str = "opt",
        delta: int = 25,
        config=None,
        machine=None,
        num_ranks: int = 8,
        threads_per_rank: int = 8,
        capacity: int = 256,
        max_batch_size: int = 16,
        flush_interval_s: float = 0.002,
        num_workers: int = 1,
        cache_bytes: int = 64 << 20,
        default_deadline=None,
        retry: RetryPolicy | None = None,
        breaker=None,
        chaos: ChaosPlan | None = None,
        verify: bool | str = False,
        negative_ttl_s: float = 0.0,
        trace=None,
        registry=None,
        events=None,
        snapshot_retention: int = 4,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self.graph = graph
        self._solver = BatchSolver(
            graph,
            algorithm=algorithm,
            delta=delta,
            config=config,
            machine=machine,
            num_ranks=num_ranks,
            threads_per_rank=threads_per_rank,
        )
        # Live-graph state: snapshot lineage, per-snapshot solvers/graphs,
        # and pin counts for the drain-free epoch handoff. Snapshot 0 is
        # the construction graph; a broker that never applies updates
        # pays nothing beyond the (0, root) cache-key tuples.
        self.versioner = GraphVersioner(
            graph,
            machine=self._solver.machine,
            config=self._solver.config,
            retention=snapshot_retention,
        )
        self._solver_kwargs = dict(
            algorithm=self._solver.algorithm,
            config=self._solver.config,
            machine=self._solver.machine,
        )
        self._snapshot_id = 0
        self._graphs = {0: graph}
        self._solvers = {0: self._solver}
        self._snapshot_inflight: dict[int, int] = {}
        self._retire_pending: set[int] = set()
        self._update_lock = threading.Lock()
        self._updates = 0
        self._repairs = 0
        self._repair_fallbacks = 0
        self.default_deadline = default_deadline
        self._tracer = None
        if trace is not None and getattr(trace, "enabled", True):
            from repro.obs.tracer import Tracer

            self._tracer = Tracer(self._solver.machine, trace)
        if registry is not None:
            self.registry = registry
        elif self._tracer is not None:
            self.registry = self._tracer.registry
        else:
            from repro.obs.registry import MetricsRegistry

            self.registry = MetricsRegistry()
        self._clock = (
            self._tracer.wall_now if self._tracer is not None else time.perf_counter
        )
        self._retry = retry
        self._verify = verify
        if breaker is None:
            self._breaker = None
        elif isinstance(breaker, BreakerConfig):
            self._breaker = CircuitBreaker(
                breaker, clock=self._clock, registry=self.registry
            )
        else:
            self._breaker = breaker
        self.chaos = (
            ChaosSolver(self._solver, chaos, registry=self.registry)
            if chaos is not None
            else None
        )
        self.cache = DistanceCache(
            cache_bytes,
            registry=self.registry,
            checksum=self._breaker is not None,
            negative_ttl_s=negative_ttl_s,
            clock=self._clock,
        )
        self._batcher = MicroBatcher(
            capacity=capacity,
            max_batch_size=max_batch_size,
            flush_interval_s=flush_interval_s,
            clock=self._clock,
        )
        if events is None:
            self.events = None
        elif isinstance(events, WideEventLog):
            self.events = events
        elif events is True:
            self.events = WideEventLog()
        else:
            self.events = WideEventLog(str(events))
        # Request contexts ride with events *or* spans; with neither
        # armed, no context is ever minted (the zero-cost path).
        self._ctx_armed = self.events is not None or self._tracer is not None
        self._next_request_seq = 0
        self.latency = LatencyWindow(clock=self._clock)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._trace_lock = threading.Lock()
        self._closed = False
        self._aborted = False
        self._inflight = 0
        self._uncompleted = 0  # admitted, not yet terminally resolved
        self._next_batch_id = 0
        self._offered = 0
        self._shed = 0
        self._batches = 0
        self._batched_requests = 0
        self._solves = 0
        self._retries = 0
        self._hedges = 0
        self._retried_ok = 0
        self._outcomes: dict[str, int] = {}
        self._t_start = self._clock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"sssp-serve-{i}", daemon=True
            )
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._batcher.depth

    @property
    def capacity(self) -> int:
        return self._batcher.capacity

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def manual(self) -> bool:
        """True when no worker threads run (``num_workers=0``)."""
        return not self._workers

    @property
    def tracer(self):
        """The service tracer (None unless constructed with ``trace=``)."""
        return self._tracer

    @property
    def breaker(self) -> CircuitBreaker | None:
        """The circuit breaker (None unless constructed with ``breaker=``)."""
        return self._breaker

    def _degraded_now(self) -> bool:
        """Breaker-degraded state; also arms cache read verification
        while degraded (checksummed entries re-verify on every read)."""
        if self._breaker is None:
            return False
        degraded = self._breaker.degraded
        self.cache.verify_get = degraded
        return degraded

    # ------------------------------------------------------------------
    # Submission (the client-facing edge)
    # ------------------------------------------------------------------
    def submit(
        self,
        root: int,
        *,
        targets=(),
        deadline=_UNSET,
        latency_budget_s: float | None = None,
    ) -> QueryFuture:
        """Admit one query; returns its :class:`QueryFuture`.

        Admission control happens here, synchronously: an out-of-range
        root or target raises ``ValueError``, a closed broker raises
        :class:`ServiceShutdown`, and a full queue sheds with
        :class:`ServiceOverload` — the queue never grows past its bound.
        A cache hit completes the future before ``submit`` returns.
        ``latency_budget_s`` declares the request's latency SLO; the
        batcher schedules tight budgets earliest-deadline-first.
        """
        if self._closed:
            raise ServiceShutdown("broker is shut down")
        n = self.graph.num_vertices
        root = int(root)
        if not 0 <= root < n:
            raise ValueError(f"root {root} out of range (n={n})")
        targets = tuple(int(t) for t in targets)
        for t in targets:
            if not 0 <= t < n:
                raise ValueError(f"path target {t} out of range (n={n})")
        if deadline is _UNSET:
            deadline = self.default_deadline
        req = QueryRequest(
            root,
            targets,
            deadline,
            submitted_at=self._clock(),
            latency_budget_s=latency_budget_s,
        )
        with self._lock:
            self._offered += 1
            self._uncompleted += 1
            # Pin the request to the snapshot current *now*; pin count and
            # snapshot read share the lock with apply_updates' swap, so a
            # request is never pinned to a half-installed snapshot.
            req.snapshot_id = self._snapshot_id
            self._snapshot_inflight[req.snapshot_id] = (
                self._snapshot_inflight.get(req.snapshot_id, 0) + 1
            )
            if self._ctx_armed:
                seq = self._next_request_seq
                self._next_request_seq += 1
        if self._ctx_armed:
            req.ctx = RequestContext(
                request_id(seq),
                root,
                submitted_at=req.submitted_at,
                snapshot_id=req.snapshot_id,
            )
        stale = self._degraded_now()
        cached = self.cache.get((req.snapshot_id, root))
        if cached is not None:
            if req.ctx is not None:
                req.ctx.note_cache("stale_hit" if stale else "hit")
                if stale:
                    req.ctx.note_degraded(
                        "stale_cache", self._breaker.open_classes()
                    )
            self._complete(
                req, cached, source="cache", batch_id=None, stale_ok=stale
            )
            return req.future
        try:
            depth = self._batcher.put(req)
        except ServiceOverload:
            with self._lock:
                self._shed += 1
                self._uncompleted -= 1
                self._idle.notify_all()
            self._snapshot_unpin(req.snapshot_id)
            self.registry.inc(
                "serve_shed_total", help="requests shed by admission control"
            )
            if req.ctx is not None and self.events is not None:
                req.ctx.note_shed()
                self.events.emit(
                    req.ctx.wide_event(
                        outcome="shed",
                        source=None,
                        latency_s=self._clock() - req.submitted_at,
                        attempts_total=0,
                    )
                )
            raise
        self.registry.set_gauge(
            "serve_queue_depth", depth, help="queued requests awaiting a batch"
        )
        return req.future

    def submit_many(self, roots, **kwargs) -> list[QueryFuture]:
        """Admit a k-root query; one future per root, in input order."""
        return [self.submit(int(r), **kwargs) for r in roots]

    def query(
        self, root: int, *, targets=(), deadline=_UNSET,
        latency_budget_s: float | None = None,
        timeout: float | None = None,
    ) -> QueryResult:
        """Synchronous convenience: submit and wait for the answer."""
        future = self.submit(
            root, targets=targets, deadline=deadline,
            latency_budget_s=latency_budget_s,
        )
        # Manual mode: nobody else will run the batch (or its retries).
        while not self._workers and not future.done():
            if self.process_once(block=True) == 0:
                break
        return future.result(timeout)

    def query_many(self, roots, **kwargs) -> list[QueryResult]:
        """Synchronous k-root query; results in input order."""
        timeout = kwargs.pop("timeout", None)
        futures = self.submit_many(roots, **kwargs)
        while not self._workers and any(not f.done() for f in futures):
            if self.process_once(block=True) == 0:
                break
        return [f.result(timeout) for f in futures]

    # ------------------------------------------------------------------
    # Batch execution (the worker edge)
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self._batcher.take(block=True)
            if batch is None:
                # Closed and empty — but a group failing *right now* in
                # another worker may still requeue a retry past the
                # closed batcher. Only exit once nothing can come back.
                if self._retry is None or self._aborted:
                    return
                with self._idle:
                    if self._uncompleted == 0:
                        return
                    self._idle.wait(timeout=0.002)
                continue
            self._execute_batch(batch)

    def process_once(self, *, block: bool = False) -> int:
        """Manual mode: take and execute one batch inline.

        Returns the number of requests served (0 = nothing ready). Safe
        to call alongside worker threads, but intended for
        ``num_workers=0`` embeddings and deterministic tests.
        """
        batch = self._batcher.take(block=block)
        if batch is None:
            return 0
        self._execute_batch(batch)
        return len(batch)

    def _execute_batch(self, batch: list) -> None:
        with self._lock:
            self._inflight += len(batch)
            batch_id = self._next_batch_id
            self._next_batch_id += 1
        t0 = self._clock()
        stats = {"hits": 0, "solves": 0, "timeouts": 0, "retries": 0}
        try:
            stale = self._degraded_now()
            # Coalesce: requests sharing (root, deadline, snapshot) share
            # one solve — cross-snapshot coalescing would hand one
            # snapshot's distances to a request pinned to another.
            groups: dict[tuple, list[QueryRequest]] = {}
            for req in batch:
                groups.setdefault(req.coalesce_key, []).append(req)
            to_solve: list[tuple[tuple, list[QueryRequest]]] = []
            for key, reqs in groups.items():
                # Re-check the cache at dispatch: an earlier batch may have
                # populated this root after these requests were queued.
                cached = self.cache.peek((key[2], key[0]))
                if cached is not None:
                    stats["hits"] += len(reqs)
                    for req in reqs:
                        if req.ctx is not None:
                            req.ctx.note_batch(batch_id)
                            req.ctx.note_cache(
                                "stale_hit" if stale else "hit"
                            )
                            if stale:
                                req.ctx.note_degraded(
                                    "stale_cache",
                                    self._breaker.open_classes(),
                                )
                        self._complete(
                            req, cached, source="cache", batch_id=batch_id,
                            stale_ok=stale,
                        )
                else:
                    for req in reqs:
                        if req.ctx is not None:
                            req.ctx.note_batch(batch_id)
                    to_solve.append((key, reqs))
            for key, reqs in to_solve:
                # Per-group isolation: one root's failure reaches only
                # its own requests; the rest of the batch proceeds.
                self._solve_group(key, reqs, batch_id, stats)
        except Exception as exc:  # defensive: never strand a future
            for req in batch:
                if not req.future.done():
                    self._fail(req, exc, outcome="error")
        finally:
            wall = self._clock() - t0
            with self._lock:
                self._inflight -= len(batch)
                self._batches += 1
                self._batched_requests += len(batch)
                self._solves += stats["solves"]
                self._idle.notify_all()
            self.registry.inc("serve_batches_total", help="executed batches")
            self.registry.inc(
                "serve_solves_total", stats["solves"],
                help="fresh engine solves",
            )
            self.registry.observe(
                "serve_batch_size",
                len(batch),
                buckets=_BATCH_SIZE_BUCKETS,
                help="requests per executed batch",
            )
            self.registry.observe(
                "serve_batch_wall_seconds", wall,
                help="wall-clock duration of batch execution",
            )
            self.registry.set_gauge("serve_queue_depth", self._batcher.depth)
            self._trace_span(
                f"batch-{batch_id}",
                "batch",
                t0,
                wall,
                requests=len(batch),
                solves=stats["solves"],
                cache_hits=stats["hits"],
                timeouts=stats["timeouts"],
                retries=stats["retries"],
                request_ids=[
                    req.ctx.request_id
                    for req in batch
                    if req.ctx is not None
                ],
            )

    # ------------------------------------------------------------------
    # Resilient solve path
    # ------------------------------------------------------------------
    def _graph_for(self, snapshot_id: int):
        """The pinned snapshot's graph (resident while any request pins it)."""
        with self._lock:
            return self._graphs[snapshot_id]

    def _solver_for(self, snapshot_id: int) -> BatchSolver:
        """The pinned snapshot's solver, built lazily on first solve.

        Construction (context build, weight sort, partition) runs outside
        the broker lock; a concurrent builder loses the ``setdefault``
        race and its solver is discarded — both are equivalent."""
        with self._lock:
            solver = self._solvers.get(snapshot_id)
            graph = self._graphs.get(snapshot_id)
        if solver is not None:
            return solver
        if graph is None:
            raise KeyError(f"snapshot {snapshot_id} is no longer resident")
        built = BatchSolver(graph, **self._solver_kwargs)
        with self._lock:
            return self._solvers.setdefault(snapshot_id, built)

    def _snapshot_unpin(self, snapshot_id: int) -> None:
        """Drop one pin; run any deferred retirement when the last pin
        for an already-superseded snapshot drops."""
        sid = int(snapshot_id)
        retire = False
        with self._lock:
            left = self._snapshot_inflight.get(sid, 0) - 1
            if left <= 0:
                self._snapshot_inflight.pop(sid, None)
                if sid in self._retire_pending:
                    self._retire_pending.discard(sid)
                    self._solvers.pop(sid, None)
                    self._graphs.pop(sid, None)
                    retire = True
            else:
                self._snapshot_inflight[sid] = left
        if retire:
            self.cache.evict_snapshot(sid)

    def _retire_snapshot(self, snapshot_id: int) -> None:
        """Release a snapshot the versioner pruned. Deferred while any
        in-flight request is still pinned to it (the request keeps its
        graph and solver until terminal completion)."""
        sid = int(snapshot_id)
        with self._lock:
            if self._snapshot_inflight.get(sid, 0) > 0:
                self._retire_pending.add(sid)
                return
            self._solvers.pop(sid, None)
            self._graphs.pop(sid, None)
        self.cache.evict_snapshot(sid)

    def apply_updates(
        self,
        batch,
        *,
        repair_hot_roots: int = 0,
        max_dirty_fraction: float = 0.25,
    ) -> dict:
        """Apply an :class:`~repro.dynamic.updates.UpdateBatch` and swap
        the serving snapshot — a drain-free epoch handoff.

        The new snapshot is built and (optionally) hot cache roots are
        repaired *before* the swap, so requests keep landing on the old
        snapshot until the new one is fully ready; the swap itself is one
        pointer update under the broker lock, shared with ``submit``'s
        pin — no request ever observes a half-installed graph. Snapshots
        pruned by the versioner's retention window are retired once their
        last pinned request completes.

        With ``repair_hot_roots > 0`` the most-recently-used cached roots
        of the outgoing snapshot are carried over by incremental repair
        (:func:`~repro.dynamic.repair.repair_sssp`) instead of starting
        the new epoch cold; repaired distances are bit-identical to a
        fresh solve, so the carried entries are *correct* cache entries,
        not approximations. Roots whose dirty region exceeds
        ``max_dirty_fraction`` fall back to cold (counted, not repaired).

        Returns a report dict; concurrent callers serialise on an update
        lock (last writer's snapshot serves).
        """
        with self._lock:
            if self._closed:
                raise ServiceShutdown("broker is shut down")
        with self._update_lock:
            old_id = self._snapshot_id
            snapshot, retired = self.versioner.apply(batch)
            repaired = 0
            fallbacks = 0
            if repair_hot_roots > 0 and self.cache.byte_budget > 0:
                ctx = self.versioner.context_for(snapshot.snapshot_id)
                hot = [
                    key
                    for key in reversed(self.cache.roots())
                    if isinstance(key, tuple) and key[0] == old_id
                ][: int(repair_hot_roots)]
                for key in hot:
                    dist = self.cache.peek(key)
                    if dist is None:
                        continue
                    rr = repair_sssp(
                        ctx,
                        key[1],
                        dist,
                        snapshot.delta,
                        max_dirty_fraction=max_dirty_fraction,
                    )
                    if rr.fallback:
                        fallbacks += 1
                        continue
                    self.cache.put(
                        (snapshot.snapshot_id, key[1]),
                        rr.distances,
                        cost_s=rr.wall_time_s,
                    )
                    repaired += 1
            with self._lock:
                self._snapshot_id = snapshot.snapshot_id
                self.graph = snapshot.graph
                self._graphs[snapshot.snapshot_id] = snapshot.graph
                self._updates += 1
                self._repairs += repaired
                self._repair_fallbacks += fallbacks
            for sid in retired:
                self._retire_snapshot(sid)
            self.registry.inc(
                "serve_updates_total",
                help="update batches applied to the serving graph",
            )
            if repaired:
                self.registry.inc(
                    "serve_repairs_total", repaired,
                    help="hot cache roots carried across snapshots by "
                    "incremental repair",
                )
            if fallbacks:
                self.registry.inc(
                    "serve_repair_fallbacks_total", fallbacks,
                    help="hot-root repairs that fell back to cold "
                    "(dirty region too large)",
                )
            self.registry.set_gauge(
                "serve_snapshot_id", snapshot.snapshot_id,
                help="current serving snapshot",
            )
            return {
                "snapshot_id": snapshot.snapshot_id,
                "parent_id": snapshot.parent_id,
                "batch_size": batch.size,
                "num_edges": snapshot.graph.num_undirected_edges,
                "repaired": repaired,
                "repair_fallbacks": fallbacks,
                "retired": list(retired),
            }

    def _raw_solve(self, root: int, deadline, attempt: int, snapshot_id: int):
        """One solve attempt through the chaos layer (when configured)."""
        solver = self._solver_for(snapshot_id)
        if self.chaos is not None:
            return self.chaos.solve(
                root, deadline=deadline, attempt=attempt, solver=solver
            )
        return solver.solve(root, deadline=deadline)

    def _attempt_solve(self, root: int, deadline, attempt: int, snapshot_id: int):
        """One (possibly hedged) solve attempt, verified when configured.

        Returns ``(result, used_attempt)`` — ``used_attempt`` differs
        from ``attempt`` exactly when a hedged re-attempt won, so the
        request context records the attempt whose chaos draw actually
        produced the answer.

        Hedging: with ``retry.hedge_after_s`` set, the primary attempt
        runs in a side thread; if it straggles past the threshold and
        hedge budget remains, a re-attempt (at ``attempt + 1``, so a
        chaos ``slow``/fault draw does not repeat) runs inline and its
        result is preferred. Raises the attempt's failure otherwise.
        """
        policy = self._retry
        if policy is None or not policy.hedging:
            return self._finish_attempt(
                self._raw_solve(root, deadline, attempt, snapshot_id),
                root,
                attempt,
                snapshot_id,
            )
        box: dict = {}
        done = threading.Event()

        def run_primary() -> None:
            try:
                box["res"] = self._raw_solve(root, deadline, attempt, snapshot_id)
            except BaseException as exc:  # noqa: BLE001 — relayed below
                box["exc"] = exc
            finally:
                done.set()

        thread = threading.Thread(
            target=run_primary, name=f"sssp-hedge-primary-{root}", daemon=True
        )
        thread.start()
        if not done.wait(policy.hedge_after_s):
            with self._lock:
                hedge = self._hedges < policy.hedge_budget
                if hedge:
                    self._hedges += 1
            if hedge:
                self.registry.inc(
                    "serve_hedges_total",
                    help="hedged re-attempts launched for stragglers",
                )
                self._trace_span(
                    "hedge", "resilience", self._clock(), 0.0,
                    root=root, attempt=attempt,
                )
                try:
                    res = self._raw_solve(root, deadline, attempt + 1, snapshot_id)
                    return self._finish_attempt(res, root, attempt + 1, snapshot_id)
                except BaseException:  # noqa: BLE001 — fall back to primary
                    done.wait()
                    if "res" in box:
                        return self._finish_attempt(
                            box["res"], root, attempt, snapshot_id
                        )
                    raise
        done.wait()
        if "exc" in box:
            raise box["exc"]
        return self._finish_attempt(box["res"], root, attempt, snapshot_id)

    def _finish_attempt(self, res, root: int, attempt: int, snapshot_id: int):
        """Post-attempt verification; a failed check is ``corrupt``.
        Returns ``(res, attempt)`` so callers know which attempt won."""
        if self._verify:
            try:
                run_validation(
                    res.distances, self._graph_for(snapshot_id), root, self._verify
                )
            except Exception as exc:
                raise SolveCorrupted(root, attempt, str(exc)) from exc
        return res, attempt

    def _chaos_draw(self, root: int, attempt: int) -> str | None:
        """The chaos plan's draw for (root, attempt), None without chaos.
        Pure and cheap — safe to re-query for the request context."""
        if self.chaos is None:
            return None
        return self.chaos.plan.draw(root, attempt)

    def _note_attempt(
        self, reqs: list, attempt: int, decision: str, outcome: str
    ) -> None:
        """Record one solve attempt on every coalesced request's context."""
        if reqs[0].ctx is None:
            return
        draw = self._chaos_draw(reqs[0].root, attempt)
        for req in reqs:
            req.ctx.note_attempt(attempt, decision, draw, outcome)

    def _solve_group(
        self, key: tuple, reqs: list, batch_id: int, stats: dict
    ) -> None:
        """Solve one coalesce group with isolation, breaker and retries."""
        root, deadline, snapshot_id = key
        attempt = max(req.attempts for req in reqs)
        if self.cache.negative((snapshot_id, root), count=len(reqs)):
            stats["timeouts"] += len(reqs)
            exc = SolveTimeout(
                "negative-cached: root recently timed out", root=root
            )
            for req in reqs:
                if req.ctx is not None:
                    req.ctx.note_negative()
                self._fail(req, exc, outcome="timeout")
            return
        decision = (
            self._breaker.acquire() if self._breaker is not None else "primary"
        )
        if decision == "degraded":
            self._serve_degraded(root, reqs, batch_id, stats, snapshot_id)
            return
        t0 = self._clock()
        try:
            res, used_attempt = self._attempt_solve(
                root, deadline, attempt, snapshot_id
            )
        except Exception as exc:
            if isinstance(exc, SolveTimeout) and exc.root is None:
                exc.root = root
            failure_class = _classify(exc)
            self._note_attempt(reqs, attempt, decision, failure_class)
            if self._breaker is not None:
                self._breaker.on_result(decision, failure_class)
            self.registry.inc(
                "serve_solve_failures_total",
                help="failed solve attempts by failure class",
                **{"class": failure_class},
            )
            consumed = attempt + 1
            if (
                self._retry is not None
                and not self._aborted
                and self._retry.allows(failure_class, consumed)
            ):
                self._requeue_group(reqs, consumed, failure_class, stats)
                return
            if failure_class == "timeout":
                self.cache.note_timeout((snapshot_id, root))
                stats["timeouts"] += len(reqs)
            for req in reqs:
                self._fail(req, exc, outcome=failure_class)
            return
        self._note_attempt(reqs, used_attempt, decision, "ok")
        if self._breaker is not None:
            self._breaker.on_result(decision, None)
        stats["solves"] += 1
        self._trace_span(
            "solve", "solve", t0, self._clock() - t0,
            root=root, attempt=used_attempt, batch_id=batch_id,
            request_ids=[
                req.ctx.request_id for req in reqs if req.ctx is not None
            ],
        )
        self.cache.put(
            (snapshot_id, root), res.distances, cost_s=res.wall_time_s
        )
        for i, req in enumerate(reqs):
            self._complete(
                req,
                res.distances,
                source="solve" if i == 0 else "coalesced",
                batch_id=batch_id,
                sssp=res,
                attempts=req.attempts + 1,
            )

    def _requeue_group(
        self, reqs: list, consumed: int, failure_class: str, stats: dict
    ) -> None:
        """Send a failed group back through the batcher with backoff."""
        delay = self._retry.backoff(consumed)
        ready_at = self._clock() + delay
        stats["retries"] += len(reqs)
        with self._lock:
            self._retries += len(reqs)
        self.registry.inc(
            "serve_retries_total", len(reqs),
            help="requests re-queued for another solve attempt",
        )
        self._trace_span(
            "retry", "resilience", self._clock(), 0.0,
            root=reqs[0].root, attempt=consumed,
            failure_class=failure_class, backoff_s=delay,
        )
        for req in reqs:
            req.attempts = consumed
            # submitted_at shares the batcher's clock, so passing it as
            # enqueued_at keeps the latency flush anchored to when the
            # request first entered the system, not the retry instant.
            self._batcher.requeue(
                req, ready_at=ready_at, enqueued_at=req.submitted_at
            )
        with self._idle:
            self._idle.notify_all()

    def _serve_degraded(
        self, root: int, reqs: list, batch_id: int, stats: dict,
        snapshot_id: int,
    ) -> None:
        """The open-breaker ladder for a group with no cache entry:
        bounded-exact fallback on small graphs, typed refusal otherwise.
        Ladder outcomes never feed the breaker's state machine — they do
        not exercise the primary path it is protecting."""
        cfg = self._breaker.config
        open_classes = self._breaker.open_classes()
        graph = self._graph_for(snapshot_id)
        if graph.num_vertices <= cfg.degrade_max_vertices:
            res = self._solver_for(snapshot_id).solve_degraded(
                root, max_supersteps=cfg.degrade_supersteps
            )
            stats["solves"] += 1
            self.cache.put(
                (snapshot_id, root), res.distances, cost_s=res.wall_time_s
            )
            for req in reqs:
                if req.ctx is not None:
                    req.ctx.note_degraded("bounded_exact", open_classes)
                self._complete(
                    req,
                    res.distances,
                    source="degraded",
                    batch_id=batch_id,
                    sssp=res,
                    attempts=req.attempts + 1,
                    degraded=True,
                )
            return
        exc = ServiceUnavailable(root, open_classes)
        for req in reqs:
            if req.ctx is not None:
                req.ctx.note_degraded("refused", open_classes)
            self._fail(req, exc, outcome="unavailable")

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _paths(
        self,
        root: int,
        distances: np.ndarray,
        targets: tuple[int, ...],
        snapshot_id: int,
    ) -> dict[int, list[int] | None]:
        if not targets:
            return {}
        parent = build_parent_tree(
            self._graph_for(snapshot_id), distances, root
        )
        out: dict[int, list[int] | None] = {}
        for t in targets:
            path = extract_path(parent, root, t)
            out[t] = path if path else None
        return out

    def _complete(
        self,
        req: QueryRequest,
        distances: np.ndarray,
        *,
        source: str,
        batch_id: int | None,
        sssp=None,
        attempts: int = 1,
        stale_ok: bool = False,
        degraded: bool = False,
    ) -> None:
        latency = self._clock() - req.submitted_at
        result = QueryResult(
            root=req.root,
            distances=distances,
            source=source,
            latency_s=latency,
            batch_id=batch_id,
            paths=self._paths(
                req.root, distances, req.targets, req.snapshot_id
            ),
            sssp=sssp,
            attempts=attempts,
            stale_ok=stale_ok,
            degraded=degraded,
            request_id=req.ctx.request_id if req.ctx is not None else None,
            snapshot_id=req.snapshot_id,
        )
        if attempts > 1:
            with self._lock:
                self._retried_ok += 1
            self.registry.inc(
                "serve_retried_ok_total",
                help="requests that succeeded after at least one retry",
            )
        self._account(
            req, source, latency,
            source=source, attempts=attempts,
            stale_ok=stale_ok, degraded=degraded,
        )
        req.future.set_result(result)

    def _fail(self, req: QueryRequest, error: BaseException, *, outcome: str) -> None:
        latency = self._clock() - req.submitted_at
        self._account(req, outcome, latency, attempts=req.attempts)
        req.future.set_error(error)

    def _account(
        self,
        req: QueryRequest,
        outcome: str,
        latency: float,
        *,
        source: str | None = None,
        attempts: int = 0,
        stale_ok: bool = False,
        degraded: bool = False,
    ) -> None:
        """Terminal accounting — the single point every completion and
        failure passes through exactly once, which is what makes the
        "one wide event per request" invariant structural."""
        with self._lock:
            self._outcomes[outcome] = self._outcomes.get(outcome, 0) + 1
            self._uncompleted -= 1
            self._idle.notify_all()
        self._snapshot_unpin(req.snapshot_id)
        self.latency.record(outcome, latency)
        self.registry.inc(
            "serve_requests_total", outcome=outcome,
            help="completed requests by outcome",
        )
        self.registry.observe(
            "serve_request_latency_seconds", latency, source=outcome,
            help="end-to-end request latency",
            exemplar=req.ctx.request_id if req.ctx is not None else None,
        )
        span_args = {"root": req.root, "outcome": outcome}
        if req.ctx is not None:
            span_args["request_id"] = req.ctx.request_id
        self._trace_span(
            "request", "request", req.submitted_at, latency, **span_args
        )
        if req.ctx is not None and self.events is not None:
            self.events.emit(
                req.ctx.wide_event(
                    outcome=outcome,
                    source=source,
                    latency_s=latency,
                    attempts_total=attempts,
                    stale_ok=stale_ok,
                    degraded=degraded,
                )
            )

    def _trace_span(
        self, name: str, cat: str, ts: float, dur: float, **args
    ) -> None:
        tracer = self._tracer
        if tracer is None:
            return
        event = {
            "type": "span",
            "name": name,
            "cat": cat,
            "ts": ts,
            "dur": max(dur, 0.0),
            "sim_ts": tracer.sim_t,
            "sim_dur": 0.0,
            "depth": 0,
            "args": dict(args),
        }
        with self._trace_lock:
            tracer.events.append(event)

    # ------------------------------------------------------------------
    # Drain and shutdown
    # ------------------------------------------------------------------
    def _drain_manual(self, deadline: float | None) -> bool:
        """Manual-mode drain: execute the backlog inline, riding out
        retry backoffs, until nothing admitted remains unresolved."""
        while True:
            served = self.process_once(block=False)
            with self._idle:
                if self._uncompleted == 0:
                    return True
            if served:
                continue
            if deadline is not None and time.monotonic() >= deadline:
                return False
            # A retry's ready_at lies in the future; yield briefly.
            time.sleep(0.0005)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every admitted request has terminally completed —
        including requests currently being retried or hedged; a future is
        never leaked. In manual mode (``num_workers=0``) this *executes*
        the backlog inline. Returns False if ``timeout`` expired first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        if not self._workers:
            return self._drain_manual(deadline)
        with self._idle:
            while self._uncompleted:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(timeout=remaining)
        return True

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service. Idempotent.

        With ``drain=True`` (graceful): new submits are refused, every
        already-admitted request completes — retries included — workers
        exit, trace/metrics artifacts are written. With ``drain=False``:
        queued requests (and pending retries) fail with
        :class:`ServiceShutdown`; requests already inside a batch still
        complete (a batch is never abandoned mid-flight) but no new
        retry attempts are launched.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                self._aborted = True
        if not drain:
            for req in self._batcher.cancel_pending():
                self._fail(
                    req,
                    ServiceShutdown("broker shut down before execution"),
                    outcome="cancelled",
                )
        self._batcher.close()
        if not self._workers:
            if drain:
                self._drain_manual(
                    None if timeout is None else time.monotonic() + timeout
                )
        else:
            for worker in self._workers:
                worker.join(timeout)
        if not drain:
            # A group that was mid-failure during the abort may have
            # requeued a retry after cancel_pending ran; sweep again so
            # no future is ever leaked.
            for req in self._batcher.cancel_pending():
                self._fail(
                    req,
                    ServiceShutdown("broker shut down before execution"),
                    outcome="cancelled",
                )
        if self.events is not None and self.events.path is not None:
            self.events.write()
        if self._tracer is not None:
            from repro.obs.export import finalize_trace

            self.registry.set_gauge("serve_queue_depth", self._batcher.depth)
            finalize_trace(self._tracer)

    def __enter__(self) -> "QueryBroker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Flat service report: traffic, latency percentiles, cache, SLO
        inputs (consumed by ``repro serve-bench`` and the benchmarks)."""
        with self._lock:
            completed = sum(self._outcomes.values())
            row = {
                "offered": self._offered,
                "completed": completed,
                "shed": self._shed,
                "batches": self._batches,
                "solves": self._solves,
                "retries": self._retries,
                "hedges": self._hedges,
                "retried_ok": self._retried_ok,
                "mean_batch_size": (
                    self._batched_requests / self._batches
                    if self._batches
                    else 0.0
                ),
                "queue_depth": self._batcher.depth,
                "snapshot_id": self._snapshot_id,
                "updates": self._updates,
                "repairs": self._repairs,
                "repair_fallbacks": self._repair_fallbacks,
                "snapshots_resident": len(self._graphs),
                **{
                    f"outcome_{k}": v
                    for k, v in sorted(self._outcomes.items())
                },
            }
        row["cache_hit_rate"] = self.cache.stats.hit_rate
        row["cache_bytes"] = self.cache.stats.bytes_in_use
        row["cache_evictions"] = self.cache.stats.evictions
        row["cache_quarantined"] = self.cache.stats.quarantined
        row["negative_hits"] = self.cache.stats.negative_hits
        row.update(self.latency.summary())
        if self.events is not None:
            row["wide_events"] = self.events.emitted
        wall = self._clock() - self._t_start
        row["wall_s"] = wall
        row["throughput_qps"] = completed / wall if wall > 0 else 0.0
        return row
