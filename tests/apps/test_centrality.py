"""Unit tests for SSSP-based centrality, cross-checked against networkx."""

import numpy as np
import pytest

from repro.apps.centrality import (
    betweenness_centrality,
    closeness_centrality,
    sssp_distances,
)
from repro.graph.builder import from_undirected_edges
from repro.graph.rmat import rmat_graph


def to_networkx(graph):
    import networkx as nx

    nxg = nx.Graph()
    nxg.add_nodes_from(range(graph.num_vertices))
    tails, heads, weights = graph.to_edge_list()
    for a, b, w in zip(tails.tolist(), heads.tolist(), weights.tolist()):
        if a < b:
            nxg.add_edge(a, b, weight=w)
    return nxg


@pytest.fixture(scope="module")
def random_graph():
    rng = np.random.default_rng(5)
    n, m = 30, 60
    t = rng.integers(0, n, m)
    h = rng.integers(0, n, m)
    w = rng.integers(1, 10, m)
    return from_undirected_edges(t, h, w, n)


class TestSsspDistances:
    def test_matches_reference(self, random_graph):
        from repro.core.reference import dijkstra_reference

        d = sssp_distances(random_graph, 0)
        assert np.array_equal(d, dijkstra_reference(random_graph, 0))


class TestCloseness:
    def test_matches_networkx_exactly(self, random_graph):
        import networkx as nx

        nxg = to_networkx(random_graph)
        ref = nx.closeness_centrality(nxg, distance="weight", wf_improved=True)
        ours = closeness_centrality(
            random_graph, sources=np.arange(30),
            num_ranks=2, threads_per_rank=2,
        )
        for v in range(30):
            assert ours[v] == pytest.approx(ref[v], abs=1e-12)

    def test_isolated_source_zero(self, disconnected_graph):
        out = closeness_centrality(
            disconnected_graph, sources=np.array([4]),
            num_ranks=1, threads_per_rank=1,
        )
        assert out[4] == 0.0

    def test_sampling(self, random_graph):
        out = closeness_centrality(random_graph, num_sources=5, seed=3,
                                   num_ranks=2, threads_per_rank=2)
        assert len(out) == 5


class TestBetweenness:
    def test_matches_networkx_exactly(self, random_graph):
        import networkx as nx

        nxg = to_networkx(random_graph)
        ref = nx.betweenness_centrality(nxg, weight="weight", normalized=True)
        ours = betweenness_centrality(
            random_graph, sources=np.arange(30),
            num_ranks=2, threads_per_rank=2,
        )
        for v in range(30):
            assert ours[v] == pytest.approx(ref[v], abs=1e-9)

    def test_unnormalized_matches_networkx(self, random_graph):
        import networkx as nx

        nxg = to_networkx(random_graph)
        ref = nx.betweenness_centrality(nxg, weight="weight", normalized=False)
        ours = betweenness_centrality(
            random_graph, sources=np.arange(30), normalized=False,
            num_ranks=2, threads_per_rank=2,
        )
        for v in range(30):
            assert ours[v] == pytest.approx(ref[v], abs=1e-9)

    def test_path_graph_middle_dominates(self, path_graph):
        bc = betweenness_centrality(
            path_graph, sources=np.arange(5), normalized=False,
            num_ranks=1, threads_per_rank=1,
        )
        # middle of a path carries the most pairs: 0<1<2>3>0 symmetric
        assert bc[2] == bc.max()
        assert bc[0] == bc[4] == 0.0

    def test_rejects_zero_weights(self):
        g = from_undirected_edges(
            np.array([0, 1]), np.array([1, 2]), np.array([0, 3]), 3
        )
        with pytest.raises(ValueError, match="positive"):
            betweenness_centrality(g, sources=np.array([0]))

    def test_sampled_approximation_correlates(self):
        g = rmat_graph(scale=8, seed=11)
        exact = betweenness_centrality(
            g, sources=np.arange(g.num_vertices),
            num_ranks=1, threads_per_rank=1,
        )
        approx = betweenness_centrality(
            g, num_sources=64, seed=1, num_ranks=1, threads_per_rank=1
        )
        top_exact = set(np.argsort(exact)[-10:].tolist())
        top_approx = set(np.argsort(approx)[-10:].tolist())
        assert len(top_exact & top_approx) >= 5
