"""Simulated communication layer.

Algorithms never move data between ranks directly; they declare the traffic
to a :class:`Communicator`, which attributes message counts and bytes to the
source and destination ranks and emits a :class:`~repro.runtime.metrics.
StepRecord` per exchange. Messages between co-located vertices (same rank)
are free, exactly as in the paper's implementation where on-node relaxations
go through L2 atomics rather than the network.

The counting model matches SPI-style active messaging with per-superstep
aggregation: all records a rank sends to one destination rank within one
exchange count as a single message (one ``alpha``), while every record
contributes its byte size (``beta``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.partition import BlockPartition
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import Metrics

__all__ = [
    "Communicator",
    "RELAX_RECORD_BYTES",
    "REQUEST_RECORD_BYTES",
    "RECOVERY_PHASE",
]

RELAX_RECORD_BYTES = 16
"""Wire size of a relaxation record: (destination vertex, distance)."""

REQUEST_RECORD_BYTES = 24
"""Wire size of a pull request: (source vertex, destination vertex, weight)."""

RECOVERY_PHASE = "recovery"
"""Phase kind charged for fault-tolerance traffic (retries, ack rounds,
healing sweeps) so recovery overhead is separable from algorithm traffic."""


class Communicator:
    """Traffic accountant for one simulated machine.

    Parameters
    ----------
    machine:
        Machine shape (rank count must match ``partition.num_ranks``).
    partition:
        Vertex ownership map used to resolve endpoints to ranks.
    metrics:
        Destination for the step records.
    """

    def __init__(
        self,
        machine: MachineConfig,
        partition: BlockPartition,
        metrics: Metrics,
    ) -> None:
        if machine.num_ranks != partition.num_ranks:
            raise ValueError(
                f"machine has {machine.num_ranks} ranks but partition has "
                f"{partition.num_ranks}"
            )
        self.machine = machine
        self.partition = partition
        self.metrics = metrics

    # ------------------------------------------------------------------
    def exchange_by_vertex(
        self,
        src_vertices: np.ndarray,
        dst_vertices: np.ndarray,
        record_bytes: int,
        *,
        phase_kind: str = "other",
    ) -> None:
        """Account an exchange of per-vertex records.

        Each record travels from ``owner(src)`` to ``owner(dst)``;
        same-rank records are dropped from the network accounting.
        """
        src = np.asarray(src_vertices, dtype=np.int64)
        dst = np.asarray(dst_vertices, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src_vertices and dst_vertices must align")
        src_ranks = self.partition.owner(src)
        dst_ranks = self.partition.owner(dst)
        self.exchange_by_rank(src_ranks, dst_ranks, record_bytes, phase_kind=phase_kind)

    def exchange_by_rank(
        self,
        src_ranks: np.ndarray,
        dst_ranks: np.ndarray,
        record_bytes: int,
        *,
        phase_kind: str = "other",
    ) -> None:
        """Account an exchange given explicit per-record rank endpoints."""
        if record_bytes < 0:
            raise ValueError("record_bytes must be non-negative")
        p = self.machine.num_ranks
        src = np.asarray(src_ranks, dtype=np.int64)
        dst = np.asarray(dst_ranks, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src_ranks and dst_ranks must align")
        off_node = src != dst
        src = src[off_node]
        dst = dst[off_node]
        bytes_per_rank = np.zeros(p, dtype=np.int64)
        msgs_per_rank = np.zeros(p, dtype=np.int64)
        if src.size:
            # One bincount over (src, dst) lane ids yields the full P×P
            # traffic grid; bytes and aggregated message counts (one per
            # lane with traffic) fall out of its row/column reductions.
            lanes = np.bincount(src * p + dst, minlength=p * p).reshape(p, p)
            out_counts = lanes.sum(axis=1)
            in_counts = lanes.sum(axis=0)
            bytes_per_rank = (out_counts + in_counts) * record_bytes
            msgs_per_rank = np.count_nonzero(lanes, axis=1).astype(np.int64)
        self.metrics.add_exchange(msgs_per_rank, bytes_per_rank, phase_kind=phase_kind)

    def exchange_by_rank_counts(
        self,
        src_ranks: np.ndarray,
        dst_ranks: np.ndarray,
        counts: np.ndarray,
        record_bytes: int,
        *,
        phase_kind: str = "other",
    ) -> None:
        """Account an exchange given per-(src, dst)-lane record counts.

        Metrics-identical to :meth:`exchange_by_rank` over the expanded
        per-record endpoint arrays, without ever materialising them —
        ``counts[i]`` records travel the ``(src_ranks[i], dst_ranks[i])``
        lane. Lanes may repeat (they are deduplicated for the message
        count, exactly as repeated records are) and zero-count lanes are
        ignored.
        """
        if record_bytes < 0:
            raise ValueError("record_bytes must be non-negative")
        p = self.machine.num_ranks
        src = np.asarray(src_ranks, dtype=np.int64)
        dst = np.asarray(dst_ranks, dtype=np.int64)
        cnt = np.asarray(counts, dtype=np.int64)
        if src.shape != dst.shape or src.shape != cnt.shape:
            raise ValueError("src_ranks, dst_ranks and counts must align")
        if cnt.size and int(cnt.min()) < 0:
            raise ValueError("counts must be non-negative")
        live = (src != dst) & (cnt > 0)
        src, dst, cnt = src[live], dst[live], cnt[live]
        bytes_per_rank = np.zeros(p, dtype=np.int64)
        msgs_per_rank = np.zeros(p, dtype=np.int64)
        if src.size:
            # Accumulate the P×P traffic grid in pure int64 arithmetic
            # (bincount-with-weights would round-trip through float64);
            # identical values to exchange_by_rank over expanded arrays.
            lanes = np.zeros(p * p, dtype=np.int64)
            np.add.at(lanes, src * p + dst, cnt)
            lanes = lanes.reshape(p, p)
            out_counts = lanes.sum(axis=1)
            in_counts = lanes.sum(axis=0)
            bytes_per_rank = (out_counts + in_counts) * record_bytes
            msgs_per_rank = np.count_nonzero(lanes, axis=1).astype(np.int64)
        self.metrics.add_exchange(msgs_per_rank, bytes_per_rank, phase_kind=phase_kind)

    def retransmit(
        self,
        src_ranks: np.ndarray,
        dst_ranks: np.ndarray,
        record_bytes: int,
    ) -> None:
        """Account one retransmission batch of the reliable transport.

        The exchange is charged under the ``recovery`` phase kind and the
        per-run :class:`~repro.runtime.metrics.RecoveryStats` counters are
        bumped, so the cost of fault tolerance stays separable from the
        algorithm's own traffic. Same-rank records stay free, exactly like
        first-attempt traffic.
        """
        src = np.asarray(src_ranks, dtype=np.int64)
        dst = np.asarray(dst_ranks, dtype=np.int64)
        self.exchange_by_rank(src, dst, record_bytes, phase_kind=RECOVERY_PHASE)
        rec = self.metrics.recovery
        rec.retries += 1
        rec.retransmitted_records += int(src.size)
        off_node_bytes = int((src != dst).sum()) * record_bytes
        rec.retransmitted_bytes += off_node_bytes
        tr = self.metrics.tracer
        if tr is not None:
            tr.instant(
                "retransmit", records=int(src.size), bytes=off_node_bytes
            )

    def allreduce(self, count: int = 1, *, phase_kind: str = "bucket") -> None:
        """Account ``count`` small allreduce operations (termination checks,
        next-bucket computation, settled-vertex counting)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count:
            self.metrics.add_allreduce(count, phase_kind=phase_kind)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Communicator(P={self.machine.num_ranks}, "
            f"T={self.machine.threads_per_rank})"
        )
