"""True message-passing (SPMD) execution mode.

The main engine (:mod:`repro.core.delta_stepping`) is *globally
orchestrated*: it operates on whole-graph arrays and declares the traffic a
distributed run would generate to the accounting communicator. That style
is fast and debuggable, but its honesty rests on an argument, not a
mechanism.

This subpackage provides the mechanism: an SPMD engine where each simulated
rank owns only its vertex slice (local distances, local adjacency rows) and
*all* cross-rank information flows through explicit per-rank mailboxes —
a rank physically cannot read another rank's state. The SPMD engine
implements Bellman-Ford and Δ-stepping with edge classification; the test
suite asserts it produces bit-identical distances *and identical
relaxation/phase/bucket counters* to the orchestrated engine, which is the
equivalence witness for the whole simulation approach (DESIGN.md §5).

Because every cross-rank byte goes through the mailbox, the SPMD engine is
also the natural host for the fault-injection and recovery layer
(:mod:`repro.spmd.faults`, DESIGN.md §7): a :class:`FaultPlan` drives a
:class:`FaultyMailbox` that loses, duplicates, reorders and delays records
or crashes whole ranks, while :class:`ReliableMailbox` plus engine-side
checkpointing and self-healing sweeps recover the exact fault-free answer.
"""

from repro.spmd.checkpoint import (
    CheckpointError,
    CheckpointManager,
    SolveCheckpoint,
    ensure_checkpoint_dir,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.spmd.engine import RecoveryError, spmd_bellman_ford, spmd_delta_stepping
from repro.spmd.faults import (
    FaultPlan,
    FaultyMailbox,
    RankCrash,
    RankStall,
    solve_with_faults,
)
from repro.spmd.mailbox import Mailbox, ReliableMailbox
from repro.spmd.state import RankState, build_rank_states

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "FaultPlan",
    "FaultyMailbox",
    "Mailbox",
    "RankCrash",
    "RankStall",
    "RankState",
    "RecoveryError",
    "ReliableMailbox",
    "SolveCheckpoint",
    "build_rank_states",
    "ensure_checkpoint_dir",
    "latest_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "solve_with_faults",
    "spmd_bellman_ford",
    "spmd_delta_stepping",
]
