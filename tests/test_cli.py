"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.command == "solve"
        assert args.algorithm == "opt"
        assert args.scale == 12

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--algorithm", "magic"])

    def test_family_choices(self):
        args = build_parser().parse_args(["solve", "--family", "rmat2"])
        assert args.family == "rmat2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--family", "rmat3"])


class TestCommands:
    def test_solve_runs(self, capsys):
        rc = main(["solve", "--scale", "9", "--ranks", "2", "--threads", "2",
                   "--validate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gteps" in out
        assert "simulated time breakdown" in out

    def test_solve_explicit_root(self, capsys):
        rc = main(["solve", "--scale", "9", "--root", "5",
                   "--ranks", "2", "--threads", "2"])
        assert rc == 0
        assert "root:  5" in capsys.readouterr().out

    def test_solve_structural_validation(self, capsys):
        rc = main(["solve", "--scale", "9", "--ranks", "2", "--threads", "2",
                   "--validate-structural"])
        assert rc == 0
        assert "gteps" in capsys.readouterr().out

    def test_solve_with_faults(self, capsys):
        rc = main(["solve", "--scale", "9", "--ranks", "4", "--threads", "2",
                   "--faults", "loss=0.05,seed=3,crash=1@4",
                   "--validate-structural"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recovery overhead" in out
        assert "resent_bytes" in out

    def test_compare_runs(self, capsys):
        rc = main(["compare", "--scale", "9", "--ranks", "2", "--threads", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("Dijkstra", "Del-25", "Prune-25", "OPT-25", "Bellman-Ford"):
            assert name in out

    def test_graph500_runs(self, capsys):
        rc = main(["graph500", "--scale", "9", "--roots", "3",
                   "--ranks", "2", "--threads", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hmean_gteps" in out

    def test_sweep_runs(self, capsys):
        rc = main(["sweep", "--scale", "9", "--deltas", "1,25",
                   "--ranks", "2", "--threads", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "delta" in out

    def test_bfs_runs(self, capsys):
        rc = main(["bfs", "--scale", "9", "--ranks", "2", "--threads", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "direction per level" in out
        assert "edges_examined" in out

    def test_bfs_forced_direction(self, capsys):
        rc = main(["bfs", "--scale", "9", "--direction", "top-down",
                   "--ranks", "2", "--threads", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bottom-up" not in out

    def test_rmat2_family(self, capsys):
        rc = main(["solve", "--scale", "9", "--family", "rmat2",
                   "--ranks", "2", "--threads", "2"])
        assert rc == 0

    def test_serve_bench_runs(self, capsys, tmp_path):
        metrics = tmp_path / "serve.prom"
        rc = main(["serve-bench", "--scale", "9", "--ranks", "2",
                   "--threads", "2", "--requests", "20", "--workers", "0",
                   "--flush-ms", "0", "--root-universe", "4",
                   "--concurrency", "1", "--metrics-out", str(metrics),
                   "--json", "-"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "traffic" in out
        assert "latency (ms)" in out
        assert "distance cache" in out
        assert '"throughput_qps"' in out
        text = metrics.read_text()
        assert "serve_requests_total" in text
        assert "serve_cache_hits_total" in text

    def test_serve_bench_slo_violation_fails(self, capsys):
        # a hit rate above 1.0 is unreachable: the SLO gate must trip
        rc = main(["serve-bench", "--scale", "9", "--ranks", "2",
                   "--threads", "2", "--requests", "10", "--workers", "0",
                   "--flush-ms", "0", "--root-universe", "4",
                   "--concurrency", "1", "--slo-min-hit-rate", "1.5"])
        assert rc == 1
        assert "SLO VIOLATION" in capsys.readouterr().err

    def test_serve_bench_parser_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.arrival == "closed"
        assert args.batch_size == 16
        assert args.cache_mb == 64.0
        assert args.events is None
        # burn monitoring is opt-in for serve-bench
        assert args.burn_objective is None
        assert args.burn_fast_s == 60.0
        assert args.burn_slow_s == 300.0

    def test_serve_bench_events_and_burn(self, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        rc = main(["serve-bench", "--scale", "9", "--ranks", "2",
                   "--threads", "2", "--requests", "20", "--workers", "0",
                   "--flush-ms", "0", "--root-universe", "4",
                   "--concurrency", "1", "--events", str(events),
                   "--burn-objective", "0.99", "--burn-min-samples", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SLO burn rate" in out
        assert "wide events written" in out
        from repro.serve.events import read_events

        stream = read_events(str(events))
        assert len(stream) == 20
        assert all(e["schema"] == 1 for e in stream)

    def test_serve_bench_events_replay_identical(self, capsys, tmp_path):
        from repro.serve.events import canonical_text, read_events

        streams = []
        for run in ("a", "b"):
            events = tmp_path / f"events-{run}.jsonl"
            rc = main(["serve-bench", "--scale", "9", "--ranks", "2",
                       "--threads", "2", "--requests", "15", "--workers", "0",
                       "--flush-ms", "0", "--root-universe", "4",
                       "--concurrency", "1", "--retries", "3",
                       "--retry-backoff-ms", "0",
                       "--chaos", "error=0.2,clean-after=2,seed=3",
                       "--events", str(events)])
            assert rc == 0
            capsys.readouterr()
            streams.append(canonical_text(read_events(str(events))))
        assert streams[0] and streams[0] == streams[1]

    def test_serve_top_fixed_frames(self, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        rc = main(["serve-top", "--scale", "9", "--ranks", "2",
                   "--threads", "2", "--requests", "20", "--workers", "1",
                   "--root-universe", "4", "--concurrency", "1",
                   "--refresh-ms", "10", "--frames", "2", "--no-clear",
                   "--events", str(events)])
        assert rc == 0
        out = capsys.readouterr().out
        # two live frames plus the final post-drain frame
        assert out.count("serve-top — SSSP serving plane") >= 3
        assert "latency by source" in out
        assert "burn rate" in out
        assert events.exists()

    def test_serve_top_requires_workers(self, capsys):
        rc = main(["serve-top", "--scale", "9", "--workers", "0",
                   "--frames", "1"])
        assert rc == 2
        assert "worker" in capsys.readouterr().err

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "solve", "--scale", "8",
             "--ranks", "2", "--threads", "2"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "gteps" in proc.stdout
