"""Unit tests for the metrics registry and its Prometheus exposition."""

import threading

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    escape_label_value,
)


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", 1)
        reg.inc("requests_total", 2)
        assert reg.snapshot()["requests_total"] == 3

    def test_labels_make_distinct_series(self):
        reg = MetricsRegistry()
        reg.inc("records_total", 1, kind="short")
        reg.inc("records_total", 4, kind="long")
        snap = reg.snapshot()
        assert snap['records_total{kind="short"}'] == 1
        assert snap['records_total{kind="long"}'] == 4

    def test_negative_delta_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("requests_total", -1)

    def test_family_clash_rejected(self):
        reg = MetricsRegistry()
        reg.inc("x_total", 1)
        with pytest.raises(ValueError):
            reg.set_gauge("x_total", 5)


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("temp", 1.0)
        reg.set_gauge("temp", 2.5)
        assert reg.snapshot()["temp"] == 2.5


class TestHistograms:
    def test_counts_are_cumulative(self):
        reg = MetricsRegistry()
        reg.observe("lat", 1e-5, buckets=(1e-5, 1e-3, 1.0))
        reg.observe("lat", 1e-4)
        h = reg.snapshot()["lat"]
        assert h["count"] == 2
        assert h["sum"] == pytest.approx(1.1e-4)
        # le=1e-05 covers only the first observation; the larger bounds both.
        assert h["buckets"]["1e-05"] == 1
        assert h["buckets"]["0.001"] == 2
        assert h["buckets"]["1"] == 2

    def test_default_buckets_used(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.5)
        assert len(reg.snapshot()["lat"]["buckets"]) == len(DEFAULT_BUCKETS)


class TestPrometheusText:
    def test_exposition_structure(self):
        reg = MetricsRegistry()
        reg.inc("records_total", 3, kind="short", help="records by kind")
        reg.set_gauge("wall_seconds", 1.5, help="wall time")
        reg.observe("epoch_seconds", 0.02, buckets=(0.01, 0.1))
        text = reg.prometheus_text()
        assert "# HELP records_total records by kind" in text
        assert "# TYPE records_total counter" in text
        assert 'records_total{kind="short"} 3' in text
        assert "# TYPE wall_seconds gauge" in text
        assert "wall_seconds 1.5" in text
        assert "# TYPE epoch_seconds histogram" in text
        assert 'epoch_seconds_bucket{le="0.01"} 0' in text
        assert 'epoch_seconds_bucket{le="0.1"} 1' in text
        assert 'epoch_seconds_bucket{le="+Inf"} 1' in text
        assert "epoch_seconds_count 1" in text
        assert text.endswith("\n")


class TestLabelEscaping:
    """Satellite: label values must render per the text-format spec."""

    def test_escape_helper(self):
        assert escape_label_value("plain") == "plain"
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        # A backslash already escaping a quote must not be double-mangled
        # beyond one escape level each.
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_exposition_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.inc("paths_total", 1, path='C:\\dir\n"quoted"')
        text = reg.prometheus_text()
        assert 'paths_total{path="C:\\\\dir\\n\\"quoted\\""} 1' in text
        # the raw (unescaped) forms must not leak into the exposition
        assert '\n"quoted"' not in text

    def test_escaped_exposition_passes_checker(self):
        from repro.obs.promcheck import check_text

        reg = MetricsRegistry()
        reg.inc("paths_total", 1, help="odd labels",
                path='back\\slash "quote" new\nline')
        assert check_text(reg.prometheus_text()) == []

    def test_newline_value_stays_on_one_line(self):
        # an unescaped newline would split the sample across two lines and
        # corrupt every scrape of the whole payload
        reg = MetricsRegistry()
        reg.inc("x_total", 1, k="a\nb")
        sample_lines = [
            line for line in reg.prometheus_text().splitlines()
            if line.startswith("x_total")
        ]
        assert sample_lines == ['x_total{k="a\\nb"} 1']


class TestExemplars:
    def test_exemplar_lands_in_tightest_bucket(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.005, buckets=(0.001, 0.01, 0.1),
                    exemplar="req-000007")
        ex = reg.exemplars("lat")
        assert ex == {"0.01": {"ref": "req-000007", "value": 0.005}}

    def test_most_recent_reference_wins(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.005, buckets=(0.01,), exemplar="req-a")
        reg.observe("lat", 0.006, buckets=(0.01,), exemplar="req-b")
        assert reg.exemplars("lat")["0.01"]["ref"] == "req-b"

    def test_overflow_goes_to_inf_slot(self):
        reg = MetricsRegistry()
        reg.observe("lat", 5.0, buckets=(0.01, 0.1), exemplar="req-slow")
        assert reg.exemplars("lat")["+Inf"]["ref"] == "req-slow"

    def test_exemplars_per_label_series(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.005, buckets=(0.01,), source="cache",
                    exemplar="req-hit")
        reg.observe("lat", 0.005, source="solve", exemplar="req-miss")
        assert reg.exemplars("lat", source="cache")["0.01"]["ref"] == "req-hit"
        assert reg.exemplars("lat", source="solve")["0.01"]["ref"] == "req-miss"
        assert reg.exemplars("lat") == {}  # unlabelled series: none

    def test_exemplars_surface_in_snapshot(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.005, buckets=(0.01,), exemplar="req-1")
        snap = reg.snapshot()["lat"]
        assert snap["exemplars"]["0.01"]["ref"] == "req-1"

    def test_no_exemplar_keeps_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.005, buckets=(0.01,))
        assert "exemplars" not in reg.snapshot()["lat"]

    def test_exposition_stays_classic_format(self):
        # Exemplars are exposed via the API, not the classic text format
        # (OpenMetrics "# {...}" suffixes would break plain scrapers).
        reg = MetricsRegistry()
        reg.observe("lat", 0.005, buckets=(0.01,), exemplar="req-1")
        assert "req-1" not in reg.prometheus_text()


class TestSnapshotConsistency:
    """Satellite: snapshot/prometheus_text take one consistent cut."""

    def test_histogram_sum_count_buckets_agree_under_concurrency(self):
        reg = MetricsRegistry()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                reg.observe("lat", 0.5, buckets=(1.0,))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                h = reg.snapshot().get("lat")
                if h is None:
                    continue
                # one consistent cut: every covering bucket equals count,
                # and the sum is exactly count * 0.5
                assert h["buckets"]["1"] == h["count"]
                assert h["sum"] == pytest.approx(h["count"] * 0.5)
        finally:
            stop.set()
            for t in threads:
                t.join()

    def test_prometheus_text_consistent_under_concurrency(self):
        reg = MetricsRegistry()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                reg.observe("lat_seconds", 0.5, buckets=(1.0,))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                counts = {}
                for line in reg.prometheus_text().splitlines():
                    if line.startswith("lat_seconds"):
                        name = line.split("{")[0].split(" ")[0]
                        counts[name] = float(line.rsplit(" ", 1)[1])
                if not counts:
                    continue
                assert counts["lat_seconds_bucket"] == counts["lat_seconds_count"]
                assert counts["lat_seconds_sum"] == pytest.approx(
                    counts["lat_seconds_count"] * 0.5
                )
        finally:
            stop.set()
            for t in threads:
                t.join()
