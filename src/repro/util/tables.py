"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this helper renders them readably without any plotting
dependency.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = ["format_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Iterable[Mapping[str, Any]], title: str | None = None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), max(len(line[i]) for line in cells)) for i, c in enumerate(columns)
    ]
    out: list[str] = []
    if title:
        out.append(title)
    header = "  ".join(c.rjust(w) for c, w in zip(columns, widths))
    out.append(header)
    out.append("  ".join("-" * w for w in widths))
    for line in cells:
        out.append("  ".join(v.rjust(w) for v, w in zip(line, widths)))
    return "\n".join(out)
