"""Per-vertex weight histograms for pull-request estimation.

Section III-C sketches two strategies for counting the arcs of a vertex
whose weight falls in a range: binary search over weight-sorted adjacency
(exact, used by the ``exact`` estimator) and *histograms* "for deriving
approximate estimates". This module implements the histogram strategy: a
preprocessing pass builds, for every vertex, a cumulative histogram of its
arc weights over ``B`` equal bins; the per-bucket estimator then answers
``#{arcs of v with w < x}`` with one gather and a linear interpolation
inside the partial bin — O(1) per vertex, O(n·B) memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["WeightHistogram", "build_weight_histogram"]


@dataclass(frozen=True)
class WeightHistogram:
    """Cumulative per-vertex weight histograms.

    ``cumulative[v, k]`` counts the arcs of ``v`` with weight strictly
    below ``k * bin_width``; column ``B`` therefore equals the degree.
    """

    cumulative: np.ndarray
    bin_width: int
    num_bins: int

    def count_below(self, vertices: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Estimate ``#{arcs of v with w < t}`` per (vertex, threshold) pair.

        Fully-covered bins are counted exactly; the partial bin is
        interpolated linearly (the uniform-within-bin assumption).
        """
        v = np.asarray(vertices, dtype=np.int64)
        t = np.asarray(thresholds, dtype=np.float64)
        if v.shape != t.shape:
            raise ValueError("vertices and thresholds must align")
        t = np.clip(t, 0.0, self.num_bins * self.bin_width)
        full = (t // self.bin_width).astype(np.int64)
        full = np.minimum(full, self.num_bins)
        base = self.cumulative[v, full]
        frac = (t - full * self.bin_width) / self.bin_width
        nxt = np.minimum(full + 1, self.num_bins)
        partial = (self.cumulative[v, nxt] - base) * frac
        return base + partial


def build_weight_histogram(graph: CSRGraph, num_bins: int = 16) -> WeightHistogram:
    """One preprocessing pass over all arcs (vectorised ``add.at``)."""
    if num_bins < 1:
        raise ValueError("num_bins must be >= 1")
    n = graph.num_vertices
    w_max = max(graph.max_weight, 1)
    bin_width = -(-(w_max + 1) // num_bins)  # ceil
    counts = np.zeros((n, num_bins), dtype=np.int64)
    if graph.num_arcs:
        tails = graph.arc_tails()
        bins = np.minimum(graph.weights // bin_width, num_bins - 1)
        np.add.at(counts.reshape(-1), tails * num_bins + bins, 1)
    cumulative = np.zeros((n, num_bins + 1), dtype=np.int64)
    np.cumsum(counts, axis=1, out=cumulative[:, 1:])
    return WeightHistogram(
        cumulative=cumulative, bin_width=bin_width, num_bins=num_bins
    )
