"""Unit tests for the 1-D block partition."""

import numpy as np
import pytest

from repro.graph.partition import BlockPartition


class TestBoundaries:
    def test_even_split(self):
        p = BlockPartition(8, 4)
        assert list(p.boundaries) == [0, 2, 4, 6, 8]

    def test_uneven_split_front_loads_remainder(self):
        p = BlockPartition(10, 4)
        assert list(p.boundaries) == [0, 3, 6, 8, 10]

    def test_more_ranks_than_vertices(self):
        p = BlockPartition(2, 4)
        assert list(p.boundaries) == [0, 1, 2, 2, 2]

    def test_single_rank(self):
        p = BlockPartition(7, 1)
        assert list(p.boundaries) == [0, 7]

    def test_zero_vertices(self):
        p = BlockPartition(0, 3)
        assert list(p.boundaries) == [0, 0, 0, 0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BlockPartition(5, 0)
        with pytest.raises(ValueError):
            BlockPartition(-1, 2)


class TestOwner:
    def test_owner_scalar(self):
        p = BlockPartition(10, 4)
        assert p.owner(0) == 0
        assert p.owner(2) == 0
        assert p.owner(3) == 1
        assert p.owner(9) == 3

    def test_owner_vectorized_matches_ranges(self):
        p = BlockPartition(100, 7)
        v = np.arange(100)
        owners = p.owner(v)
        for r in range(7):
            lo, hi = p.rank_range(r)
            assert np.all(owners[lo:hi] == r)

    def test_owner_inverse_of_rank_range(self):
        p = BlockPartition(37, 5)
        for r in range(5):
            lo, hi = p.rank_range(r)
            for v in range(lo, hi):
                assert p.owner(v) == r

    def test_blocks_tile_vertex_space(self):
        p = BlockPartition(41, 6)
        total = sum(p.rank_size(r) for r in range(6))
        assert total == 41


class TestLocalGlobal:
    def test_round_trip(self):
        p = BlockPartition(10, 3)
        for r in range(3):
            lo, hi = p.rank_range(r)
            g = np.arange(lo, hi)
            local = p.to_local(r, g)
            assert np.array_equal(p.to_global(r, local), g)

    def test_to_local_rejects_foreign_vertices(self):
        p = BlockPartition(10, 2)
        with pytest.raises(ValueError):
            p.to_local(0, np.array([9]))

    def test_to_global_rejects_out_of_range(self):
        p = BlockPartition(10, 2)
        with pytest.raises(ValueError):
            p.to_global(0, np.array([7]))

    def test_rank_range_bounds_checked(self):
        p = BlockPartition(10, 2)
        with pytest.raises(IndexError):
            p.rank_range(2)


class TestThreadOwner:
    def test_thread_distribution_covers_all_threads(self):
        p = BlockPartition(64, 2)
        local = np.arange(32)
        threads = p.thread_owner(local, rank=0, num_threads=4)
        assert set(threads.tolist()) == {0, 1, 2, 3}

    def test_thread_blocks_contiguous(self):
        p = BlockPartition(64, 2)
        threads = p.thread_owner(np.arange(32), rank=0, num_threads=4)
        assert np.all(np.diff(threads) >= 0)
