"""Incremental bucket index: membership and min-bucket without rescans.

Both engines historically recomputed bucket membership and the next
non-empty bucket by scanning the *entire* distance array every epoch
(``bucket_members``/``next_bucket``), an O(n·#epochs) overhead the paper's
Blue Gene/Q implementation never pays. Dong et al.'s *Efficient Stepping
Algorithms* (LazyBatchedPQ) and shared-memory Δ-stepping implementations
drive the bucket structure from the *changed-vertex set* instead — which
:func:`repro.core.relax.apply_relaxations` already returns.

:class:`BucketIndex` is that structure. It maintains, per vertex, the
bucket it currently lives in (``NO_BUCKET`` for unreached or settled
vertices), plus lazily-compacted per-bucket candidate batches, exact
per-bucket cardinalities and a lazy min-heap of non-empty bucket ids. The
cost of every update is proportional to the number of vertices that
actually changed — unchanged vertices are never touched.

Laziness, in both senses used here:

- **Membership batches** — a vertex moving into bucket ``b`` is appended
  to ``pending[b]`` without removing the stale entry it may have left in
  its previous bucket's batch; :meth:`members` filters stale entries on
  read (``bucket_of[v] == k`` is ground truth) and compacts the result
  back, so repeated reads stay cheap.
- **Min-heap** — a bucket id is pushed when its count turns positive and
  never eagerly removed; :meth:`min_bucket` pops stale heads (count gone
  to zero) on read. Distances are monotone non-increasing between
  rebuilds, so the amortised heap traffic is O(#distinct buckets).

The index is exact: :meth:`members` returns byte-identical output to
:func:`repro.core.buckets.bucket_members` and :meth:`min_bucket` to
:func:`repro.core.buckets.next_bucket` — the paranoid guard
(:meth:`repro.runtime.guards.InvariantGuards.check_bucket_index`)
cross-checks exactly that equivalence against the from-scratch scan after
every epoch. State restores (crash rollback, checkpoint resume) may
lawfully *raise* distances; callers handle those by :meth:`rebuild`.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.buckets import NO_BUCKET
from repro.core.distances import INF

__all__ = ["BucketIndex"]


class BucketIndex:
    """Incrementally-maintained bucket membership for one distance array.

    Parameters
    ----------
    delta:
        Bucket width Δ (vertex with distance ``d`` lives in ``d // Δ``).
    d:
        Tentative distances the index starts from.
    settled:
        Optional settled flags; settled vertices hold no bucket.
    """

    def __init__(
        self,
        delta: int,
        d: np.ndarray,
        settled: np.ndarray | None = None,
    ) -> None:
        if delta < 1:
            raise ValueError("delta must be >= 1")
        self.delta = int(delta)
        self._bucket_of: np.ndarray = np.empty(0, dtype=np.int64)
        self._pending: dict[int, list[np.ndarray]] = {}
        self._counts: dict[int, int] = {}
        self._heap: list[int] = []
        self._clean: set[int] = set()
        """Buckets whose single pending batch is exactly the sorted live
        membership (no stale entries, no duplicates): :meth:`members` can
        return it without filtering. Invalidated by any append or retire."""
        self.rebuild(d, settled)

    # ------------------------------------------------------------------
    def rebuild(self, d: np.ndarray, settled: np.ndarray | None = None) -> None:
        """Reinitialise from scratch (one O(n) pass).

        Used at construction and after state restores (crash rollback,
        checkpoint resume), where distances may lawfully have risen.
        """
        live = d < INF
        if settled is not None:
            live &= ~settled
        self._bucket_of = np.where(live, d // self.delta, np.int64(NO_BUCKET))
        self._pending = {}
        self._counts = {}
        live_v = np.nonzero(live)[0].astype(np.int64)
        if live_v.size:
            buckets = self._bucket_of[live_v]
            order = np.argsort(buckets, kind="stable")
            uniq, counts = np.unique(buckets, return_counts=True)
            grouped = live_v[order]
            start = 0
            for b, end in zip(uniq.tolist(), np.cumsum(counts).tolist()):
                self._counts[b] = end - start
                self._pending[b] = [grouped[start:end]]
                start = end
        self._heap = sorted(self._counts)
        # Every rebuilt batch is sorted live membership by construction.
        self._clean = set(self._counts)

    # ------------------------------------------------------------------
    def _retire(self, b: int, c: int) -> None:
        """Retire ``c`` memberships from bucket ``b``."""
        left = self._counts[b] - c
        if left:
            self._counts[b] = left
            # Departed vertices leave stale entries in the batch.
            self._clean.discard(b)
        else:
            # Empty bucket: drop its count and stale candidate batches;
            # its heap entry dies lazily in min_bucket().
            del self._counts[b]
            self._pending.pop(b, None)
            self._clean.discard(b)

    def _decrement(self, buckets: np.ndarray) -> None:
        """Retire one membership per entry of ``buckets`` (NO_BUCKET-free)."""
        if buckets.size == 1 or (buckets[0] == buckets).all():
            # Common case: the whole batch leaves one bucket.
            self._retire(int(buckets[0]), int(buckets.size))
            return
        uniq, counts = np.unique(buckets, return_counts=True)
        for b, c in zip(uniq.tolist(), counts.tolist()):
            self._retire(b, c)

    def on_relaxed(self, changed: np.ndarray, d: np.ndarray) -> None:
        """Distances of ``changed`` (unique, unsettled) vertices dropped."""
        changed = np.asarray(changed, dtype=np.int64)
        if changed.size == 0:
            return
        new_b = d[changed] // self.delta
        old_b = self._bucket_of[changed]
        moved = new_b != old_b
        if not moved.any():
            # Vertices stayed in their bucket — already indexed; nothing to do.
            return
        mv = changed[moved]
        mb = new_b[moved]
        self._bucket_of[mv] = mb
        was_indexed = old_b[moved] != NO_BUCKET
        if was_indexed.any():
            self._decrement(old_b[moved][was_indexed])
        if mv.size == 1 or (mb[0] == mb).all():
            # Common case: every mover lands in one target bucket.
            self._insert(int(mb[0]), int(mv.size), mv)
            return
        order = np.argsort(mb, kind="stable")
        uniq, counts = np.unique(mb, return_counts=True)
        grouped = mv[order]
        start = 0
        for b, end in zip(uniq.tolist(), np.cumsum(counts).tolist()):
            self._insert(b, end - start, grouped[start:end])
            start = end

    def _insert(self, b: int, c: int, chunk: np.ndarray) -> None:
        """Admit ``c`` new members (``chunk``, sorted unique) to bucket ``b``."""
        if b in self._counts:
            self._counts[b] += c
            self._pending[b].append(chunk)
            self._clean.discard(b)
        else:
            self._counts[b] = c
            self._pending[b] = [chunk]
            self._clean.add(b)
            heapq.heappush(self._heap, b)

    def on_settled(self, vertices: np.ndarray) -> None:
        """``vertices`` settled: they leave their buckets for good."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return
        old_b = self._bucket_of[vertices]
        indexed = old_b != NO_BUCKET
        self._bucket_of[vertices] = NO_BUCKET
        if indexed.any():
            self._decrement(old_b[indexed])

    # ------------------------------------------------------------------
    def min_bucket(self) -> int:
        """Smallest non-empty bucket index (``NO_BUCKET`` when none)."""
        heap = self._heap
        while heap:
            b = heap[0]
            if b in self._counts:
                return b
            heapq.heappop(heap)
        return NO_BUCKET

    def members(self, k: int) -> np.ndarray:
        """Sorted unsettled vertices in bucket ``k``.

        Byte-identical to ``bucket_members(d, settled, k, delta)``. Stale
        candidates are filtered against ``bucket_of`` and the surviving set
        is compacted back, so repeated reads of one bucket stay cheap.
        """
        k = int(k)
        if k in self._clean:
            # The single batch is exactly the sorted live membership.
            return self._pending[k][0]
        batches = self._pending.get(k)
        if not batches:
            return np.empty(0, dtype=np.int64)
        cand = batches[0] if len(batches) == 1 else np.concatenate(batches)
        out = np.unique(cand[self._bucket_of[cand] == k])
        self._pending[k] = [out]
        self._clean.add(k)
        return out

    def bucket_of_view(self) -> np.ndarray:
        """Read-only ground-truth array (for the paranoid cross-check)."""
        return self._bucket_of
