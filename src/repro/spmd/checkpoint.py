"""Durable on-disk checkpoint/resume for SSSP solves (DESIGN.md §8).

PR 1's epoch checkpoints live in memory: they survive an injected rank
crash but not a killed process. This module makes solve state *durable*: at
epoch boundaries the engine serialises everything needed to restart the
solve — the global tentative-distance array, settled flags, the active
frontier, the loop stage (bucket loop vs Bellman-Ford tail) and the
reliable mailbox's superstep counter — into a versioned ``.npz`` file.

The format is defensive end to end:

- **Atomic**: the payload is written to a temporary file in the same
  directory, fsync'd, then ``os.replace``'d into place, so a kill during a
  write can never leave a truncated checkpoint under a valid name.
- **Self-verifying**: a SHA-256 digest over every entry (key, dtype, shape
  and bytes, in sorted key order) is stored alongside the payload;
  :func:`load_checkpoint` recomputes it and rejects any mismatch.
- **Corruption-tolerant**: :func:`latest_checkpoint` scans newest-first and
  silently skips unreadable or digest-failing files, so a solve resumed
  after a crash-during-checkpoint falls back to the previous good epoch.
- **Identity-checked**: each checkpoint carries fingerprints of the graph
  and of the run configuration (engine, algorithm flags, machine shape,
  root); resuming against a different graph or config raises
  :class:`CheckpointError` instead of silently computing wrong distances.

Restoring a checkpoint is sound for the same reason PR 1's in-memory
restore is: tentative distances in a checkpoint are lengths of real paths,
so re-running the monotone min-apply relaxation from them converges to the
exact shortest-distance array.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "SolveCheckpoint",
    "CheckpointManager",
    "ensure_checkpoint_dir",
    "fingerprint_graph",
    "fingerprint_run",
    "save_checkpoint",
    "load_checkpoint",
    "latest_checkpoint",
]

CHECKPOINT_VERSION = 1
"""Format version; bumped on any incompatible layout change."""

_CKPT_PREFIX = "ckpt-"
_CKPT_SUFFIX = ".npz"

#: Scalar entries of the serialised payload (all stored as int64).
_SCALAR_KEYS = ("version", "epoch", "bucket_ordinal", "superstep", "root",
                "hybrid_switch_bucket")
#: String entries.
_STRING_KEYS = ("stage", "graph_digest", "run_digest")
#: Array entries.
_ARRAY_KEYS = ("d", "settled", "active")


class CheckpointError(RuntimeError):
    """A checkpoint is unreadable, corrupt, or belongs to a different run."""


@dataclass
class SolveCheckpoint:
    """One resumable snapshot of a solve at an epoch boundary.

    ``stage`` is ``"bucket"`` while the Δ-stepping bucket loop runs and
    ``"bf"`` once the solve is inside a Bellman-Ford stage (the Δ = ∞
    baseline, the hybridization tail, or a watchdog degradation pass);
    resume re-enters the solve at the matching loop. ``active`` holds
    *global* vertex ids (the SPMD engine re-slices them per rank).
    ``superstep`` is the reliable mailbox's counter, fast-forwarded on
    resume so fault-plan events pinned to completed supersteps never fire
    twice.
    """

    epoch: int
    stage: str
    bucket_ordinal: int
    superstep: int
    root: int
    d: np.ndarray
    settled: np.ndarray
    active: np.ndarray
    graph_digest: str
    run_digest: str
    hybrid_switch_bucket: int = -1
    version: int = CHECKPOINT_VERSION


def ensure_checkpoint_dir(path: str | Path) -> Path:
    """Create ``path`` if needed and verify it is writable *up front*.

    Raises ``ValueError`` (not a late ``OSError`` mid-solve) when the
    directory cannot be created or written.
    """
    directory = Path(path)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        probe = directory / f".probe-{os.getpid()}"
        probe.write_bytes(b"ok")
        probe.unlink()
    except OSError as exc:
        raise ValueError(
            f"checkpoint directory {directory} is not writable: {exc}"
        ) from exc
    return directory


def fingerprint_graph(graph) -> str:
    """SHA-256 over the CSR arrays — the identity of the solved graph."""
    h = hashlib.sha256()
    h.update(np.int64(graph.num_vertices).tobytes())
    h.update(np.ascontiguousarray(graph.indptr).tobytes())
    h.update(np.ascontiguousarray(graph.adj).tobytes())
    h.update(np.ascontiguousarray(graph.weights).tobytes())
    h.update(b"undirected" if graph.undirected else b"directed")
    return h.hexdigest()


def fingerprint_run(config, machine, root: int, engine: str) -> str:
    """SHA-256 over everything that must match for a resume to be valid.

    ``engine`` distinguishes the orchestrated and SPMD engines (their loop
    state is compatible in format but not in schedule, so cross-engine
    resume is rejected). ``config``'s frozen-dataclass repr covers every
    algorithm knob; the ``trace`` telemetry config is excluded so traced
    and untraced runs of the same solve share checkpoints.
    """
    if getattr(config, "trace", None) is not None:
        config = config.evolve(trace=None)
    desc = (
        f"engine={engine}|root={root}|ranks={machine.num_ranks}"
        f"|threads={machine.threads_per_rank}|{config!r}"
    )
    return hashlib.sha256(desc.encode()).hexdigest()


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
def _payload_digest(payload: dict[str, np.ndarray]) -> str:
    h = hashlib.sha256()
    for key in sorted(payload):
        arr = np.ascontiguousarray(payload[key])
        h.update(key.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def _checkpoint_payload(ckpt: SolveCheckpoint) -> dict[str, np.ndarray]:
    payload: dict[str, np.ndarray] = {
        "version": np.int64(ckpt.version),
        "epoch": np.int64(ckpt.epoch),
        "bucket_ordinal": np.int64(ckpt.bucket_ordinal),
        "superstep": np.int64(ckpt.superstep),
        "root": np.int64(ckpt.root),
        "hybrid_switch_bucket": np.int64(ckpt.hybrid_switch_bucket),
        "stage": np.array(ckpt.stage),
        "graph_digest": np.array(ckpt.graph_digest),
        "run_digest": np.array(ckpt.run_digest),
        "d": np.ascontiguousarray(ckpt.d, dtype=np.int64),
        "settled": np.ascontiguousarray(ckpt.settled, dtype=bool),
        "active": np.ascontiguousarray(ckpt.active, dtype=np.int64),
    }
    return payload


def checkpoint_path(directory: str | Path, epoch: int) -> Path:
    """Canonical file name of the epoch-``epoch`` checkpoint."""
    return Path(directory) / f"{_CKPT_PREFIX}{epoch:08d}{_CKPT_SUFFIX}"


def save_checkpoint(
    directory: str | Path, ckpt: SolveCheckpoint, *, fsync: bool = True
) -> Path:
    """Durably write ``ckpt`` under ``directory`` (atomic write-rename)."""
    directory = Path(directory)
    payload = _checkpoint_payload(ckpt)
    digest = _payload_digest(payload)
    final = checkpoint_path(directory, ckpt.epoch)
    tmp = directory / f".{final.name}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, digest=np.array(digest), **payload)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, final)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise
    if fsync:  # make the rename itself durable (best effort on odd FSes)
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - platform dependent
            pass
    return final


def load_checkpoint(path: str | Path) -> SolveCheckpoint:
    """Read and verify one checkpoint file.

    Raises :class:`CheckpointError` on an unreadable file, a missing key,
    an unknown version, or a digest mismatch.
    """
    path = Path(path)
    try:
        data = np.load(path, allow_pickle=False)
    except Exception as exc:  # zipfile/OS errors vary; normalise them all
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    with data:
        keys = set(data.files)
        missing = (
            {"digest", *(_SCALAR_KEYS + _STRING_KEYS + _ARRAY_KEYS)} - keys
        )
        if missing:
            raise CheckpointError(
                f"checkpoint {path} is missing entries: {sorted(missing)}"
            )
        try:
            payload = {k: data[k] for k in data.files if k != "digest"}
            stored = str(data["digest"][()])
        except Exception as exc:
            raise CheckpointError(
                f"corrupt checkpoint {path}: {exc}"
            ) from exc
        if _payload_digest(payload) != stored:
            raise CheckpointError(
                f"checkpoint {path} failed integrity verification "
                "(digest mismatch — file is corrupt or was tampered with)"
            )
        version = int(payload["version"])
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has format version {version}, "
                f"this build reads version {CHECKPOINT_VERSION}"
            )
        return SolveCheckpoint(
            epoch=int(payload["epoch"]),
            stage=str(payload["stage"][()]),
            bucket_ordinal=int(payload["bucket_ordinal"]),
            superstep=int(payload["superstep"]),
            root=int(payload["root"]),
            d=np.asarray(payload["d"], dtype=np.int64),
            settled=np.asarray(payload["settled"], dtype=bool),
            active=np.asarray(payload["active"], dtype=np.int64),
            graph_digest=str(payload["graph_digest"][()]),
            run_digest=str(payload["run_digest"][()]),
            hybrid_switch_bucket=int(payload["hybrid_switch_bucket"]),
            version=version,
        )


def latest_checkpoint(
    directory: str | Path,
) -> tuple[Path, SolveCheckpoint] | None:
    """Newest *valid* checkpoint in ``directory`` (or None).

    Corrupt or unreadable files — e.g. from a kill during an earlier epoch's
    write on a filesystem without atomic rename — are skipped, falling back
    to the next-newest valid one.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(
        directory.glob(f"{_CKPT_PREFIX}*{_CKPT_SUFFIX}"), reverse=True
    )
    for path in candidates:
        try:
            return path, load_checkpoint(path)
        except CheckpointError:
            continue
    return None


# ----------------------------------------------------------------------
# Engine-side manager
# ----------------------------------------------------------------------
class CheckpointManager:
    """Durable-checkpoint policy for one solve.

    Owns the directory (validated writable at construction, *before* any
    solve work), the run fingerprints, the cadence (every ``interval``
    epochs) and retention (newest ``keep`` files). Engines call
    :meth:`maybe_save` at epoch boundaries and :meth:`save` for the final
    forced checkpoint a :class:`~repro.runtime.watchdog.SolveTimeout`
    carries.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        graph,
        config,
        machine,
        root: int,
        engine: str,
        interval: int = 1,
        keep: int = 3,
        fsync: bool = True,
    ) -> None:
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        if keep < 1:
            raise ValueError("checkpoint retention must keep >= 1 file")
        self.directory = ensure_checkpoint_dir(directory)
        self.interval = interval
        self.keep = keep
        self.fsync = fsync
        self.root = root
        self.graph_digest = fingerprint_graph(graph)
        self.run_digest = fingerprint_run(config, machine, root, engine)
        self.last_path: Path | None = None
        self.saves = 0

    # ------------------------------------------------------------------
    def load_resume(self) -> SolveCheckpoint | None:
        """Newest valid checkpoint of *this* run, or None to start fresh.

        Raises :class:`CheckpointError` when the directory holds a valid
        checkpoint of a *different* graph or run configuration — resuming
        it would silently produce wrong distances.
        """
        found = latest_checkpoint(self.directory)
        if found is None:
            return None
        path, ckpt = found
        if ckpt.graph_digest != self.graph_digest:
            raise CheckpointError(
                f"checkpoint {path} was taken on a different graph "
                "(graph fingerprint mismatch)"
            )
        if ckpt.run_digest != self.run_digest:
            raise CheckpointError(
                f"checkpoint {path} belongs to a different run configuration "
                "(engine/algorithm/machine/root fingerprint mismatch)"
            )
        self.last_path = path
        return ckpt

    # ------------------------------------------------------------------
    def save(
        self,
        *,
        epoch: int,
        stage: str,
        bucket_ordinal: int,
        superstep: int,
        d: np.ndarray,
        settled: np.ndarray,
        active: np.ndarray,
        hybrid_switch_bucket: int = -1,
    ) -> Path:
        """Write one checkpoint now (atomic; prunes old files after)."""
        ckpt = SolveCheckpoint(
            epoch=epoch,
            stage=stage,
            bucket_ordinal=bucket_ordinal,
            superstep=superstep,
            root=self.root,
            d=d,
            settled=settled,
            active=active,
            graph_digest=self.graph_digest,
            run_digest=self.run_digest,
            hybrid_switch_bucket=hybrid_switch_bucket,
        )
        path = save_checkpoint(self.directory, ckpt, fsync=self.fsync)
        self.last_path = path
        self.saves += 1
        self._prune()
        return path

    def maybe_save(self, *, epoch: int, **state) -> Path | None:
        """Checkpoint iff ``epoch`` is on the configured cadence."""
        if epoch % self.interval != 0:
            return None
        return self.save(epoch=epoch, **state)

    def _prune(self) -> None:
        """Drop all but the newest ``keep`` checkpoints (best effort)."""
        files = sorted(
            self.directory.glob(f"{_CKPT_PREFIX}*{_CKPT_SUFFIX}"), reverse=True
        )
        for stale in files[self.keep:]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - racing cleanup is fine
                pass
