"""Micro-batcher: bounded queue with size/latency flush and EDF take order.

The same shape as an inference server's request batcher: admitted
requests accumulate in a bounded queue; a worker takes a *batch* when
either the batch-size trigger fires (``max_batch_size`` requests are
waiting — solve them together and amortize the per-batch overhead) or
the latency trigger fires (the oldest waiting request has been queued
for ``flush_interval_s`` — never hold a lonely request hostage to batch
economics). A closed batcher flushes whatever remains immediately, which
is what makes graceful drain prompt.

Within a flush the batch is ordered **earliest-deadline-first**: requests
exposing a ``deadline_at`` (``submitted_at + latency_budget_s``, see
:class:`~repro.serve.request.QueryRequest`) are served tightest-deadline
first, so a late-arriving tight-SLO request jumps older slack ones.
Requests without a budget sort as ``deadline_at = inf`` and keep FIFO
order among themselves — with no budgets anywhere the batcher is exactly
the old FIFO.

Admission control lives here too: :meth:`put` on a full queue raises
:class:`~repro.serve.request.ServiceOverload` instead of growing the
queue — the typed shed the broker surfaces to callers. Retries re-enter
through :meth:`requeue`, which bypasses both the capacity check (the
request was already admitted once) and the closed check (a draining
broker must still finish its retries); a ``ready_at`` in the future holds
the entry back until its backoff expires.

The clock is injectable (``clock=``) so the flush and EDF policies are
unit-testable without sleeping.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.serve.request import ServiceOverload, ServiceShutdown

__all__ = ["MicroBatcher"]


@dataclass
class _Entry:
    request: object
    seq: int
    enqueued_at: float
    ready_at: float
    deadline_at: float


class MicroBatcher:
    """Bounded queue of requests with EDF-ordered coalescing take-off.

    ``capacity`` bounds the number of *queued* (not yet taken) requests;
    ``max_batch_size`` bounds one take; ``flush_interval_s`` is the
    longest a request may wait for its batch to fill.
    """

    def __init__(
        self,
        *,
        capacity: int,
        max_batch_size: int,
        flush_interval_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if flush_interval_s < 0:
            raise ValueError("flush_interval_s must be >= 0")
        self.capacity = int(capacity)
        self.max_batch_size = int(max_batch_size)
        self.flush_interval_s = float(flush_interval_s)
        self.clock = clock
        self._queue: list[_Entry] = []
        self._seq = itertools.count()
        self._closed = False
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of queued (not yet taken) requests."""
        with self._cond:
            return len(self._queue)

    def __len__(self) -> int:
        return self.depth

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    # ------------------------------------------------------------------
    def _entry(
        self,
        request,
        now: float,
        ready_at: float | None,
        enqueued_at: float | None = None,
    ) -> _Entry:
        return _Entry(
            request=request,
            seq=next(self._seq),
            enqueued_at=now if enqueued_at is None else float(enqueued_at),
            ready_at=now if ready_at is None else float(ready_at),
            deadline_at=float(getattr(request, "deadline_at", float("inf"))),
        )

    def put(self, request) -> int:
        """Admit one request; returns the new depth.

        Raises :class:`ServiceOverload` when the queue is at capacity and
        :class:`ServiceShutdown` when the batcher is closed.
        """
        with self._cond:
            if self._closed:
                raise ServiceShutdown("batcher is closed")
            depth = len(self._queue)
            if depth >= self.capacity:
                raise ServiceOverload(depth, self.capacity)
            self._queue.append(self._entry(request, self.clock(), None))
            self._cond.notify_all()
            return len(self._queue)

    def requeue(
        self,
        request,
        *,
        ready_at: float | None = None,
        enqueued_at: float | None = None,
    ) -> int:
        """Re-admit a retried request, bypassing capacity *and* closed
        state: it was admitted once already (shedding it again would
        double-count the overload) and a draining broker must still
        finish its retries. ``ready_at`` (batcher-clock time) holds the
        entry back until its backoff expires. ``enqueued_at`` preserves
        the request's *original* enqueue time across the retry — without
        it the latency trigger would restart its full
        ``flush_interval_s`` wait from the retry instant, letting each
        retry push an already-late request further past its budget."""
        with self._cond:
            self._queue.append(
                self._entry(request, self.clock(), ready_at, enqueued_at)
            )
            self._cond.notify_all()
            return len(self._queue)

    # ------------------------------------------------------------------
    def _ready(self, now: float) -> list[_Entry]:
        return [e for e in self._queue if e.ready_at <= now]

    def take(self, *, block: bool = True) -> list | None:
        """Take the next batch (1..max_batch_size requests, EDF order).

        Blocks until a flush trigger fires; returns ``None`` when the
        batcher is closed and empty (the worker's exit signal). With
        ``block=False``, returns an immediately-ready batch or ``None``.
        """
        with self._cond:
            while True:
                now = self.clock()
                ready = self._ready(now)
                if ready:
                    wait = 0.0
                    if not self._closed and len(ready) < self.max_batch_size:
                        # Latency trigger runs off the oldest ready entry.
                        # Append order does NOT imply enqueue order: a
                        # requeued retry re-enters at the tail carrying
                        # its original enqueued_at, so take the min.
                        oldest = min(e.enqueued_at for e in ready)
                        wait = self.flush_interval_s - (now - oldest)
                    if wait <= 0:
                        ready.sort(key=lambda e: (e.deadline_at, e.seq))
                        batch = ready[: self.max_batch_size]
                        taken = {id(e) for e in batch}
                        self._queue = [
                            e for e in self._queue if id(e) not in taken
                        ]
                        self._cond.notify_all()
                        for e in batch:
                            # Queue wait is measured per dispatch from the
                            # entry's enqueue anchor — the same anchor the
                            # latency trigger flushes on (original
                            # admission time for requeued retries).
                            ctx = getattr(e.request, "ctx", None)
                            if ctx is not None:
                                ctx.note_dequeue(now - e.enqueued_at)
                        return [e.request for e in batch]
                elif not self._queue and (self._closed or not block):
                    return None
                if not block:
                    return None
                # Sleep until the earliest of: latency flush of the oldest
                # ready entry, or the next held-back entry becoming ready.
                timeout = wait if ready else None
                pending = [e.ready_at for e in self._queue if e.ready_at > now]
                if pending:
                    until_ready = min(pending) - now
                    timeout = (
                        until_ready
                        if timeout is None
                        else min(timeout, until_ready)
                    )
                self._cond.wait(timeout=timeout)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admissions; queued requests remain takeable (drain)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def cancel_pending(self) -> list:
        """Pop and return every queued request (immediate shutdown)."""
        with self._cond:
            pending, self._queue = self._queue, []
            self._cond.notify_all()
            return [e.request for e in pending]

    def wait_empty(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty; True on success."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._queue:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(timeout=remaining)
            return True
