"""Shared infrastructure for the paper-figure benchmark harness.

Every ``bench_*.py`` module reproduces one table or figure of the paper:
it prints the same rows/series the paper reports (against the simulated
machine's cost model) and registers at least one pytest-benchmark timing of
the underlying kernel. Each module also runs standalone::

    python benchmarks/bench_fig09_delta_sweep.py

Graph scales are shrunk from the paper's 2^23 vertices/node (Blue Gene/Q)
to laptop scale; the weak-scaling protocol, parameter sets and algorithm
compositions are unchanged. EXPERIMENTS.md records paper-vs-measured for
every figure.
"""

from __future__ import annotations

import functools
import json
import os

from repro.core.solver import SsspResult, solve_sssp
from repro.graph.csr import CSRGraph
from repro.graph.grid import grid_graph
from repro.graph.rmat import RMAT1, RMAT2, RMATParams, rmat_graph
from repro.graph.roots import choose_root, choose_roots
from repro.runtime.machine import MachineConfig
from repro.util.tables import format_table

__all__ = [
    "BENCH_SCALE",
    "VERTICES_PER_RANK_LOG2",
    "cached_rmat",
    "cached_grid",
    "default_machine",
    "load_bench_json",
    "print_table",
    "run_algorithm",
    "format_table",
    "choose_root",
    "choose_roots",
    "write_bench_json",
    "RMAT1",
    "RMAT2",
]

#: Base graph scale for fixed-size experiments. Override with REPRO_BENCH_SCALE.
BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "14"))

#: log2(vertices per simulated node) for weak-scaling experiments
#: (the paper uses 23 on Blue Gene/Q; shrunk for laptop runtimes).
VERTICES_PER_RANK_LOG2 = int(os.environ.get("REPRO_BENCH_VPR", "11"))


@functools.lru_cache(maxsize=16)
def cached_rmat(
    scale: int, family: str = "rmat1", seed: int = 1
) -> CSRGraph:
    """Generate (once) and weight-sort an R-MAT graph for benches.

    Returning the weight-sorted graph means every ``solve_sssp`` call reuses
    the preprocessing instead of re-sorting per run.
    """
    params: RMATParams = RMAT1 if family == "rmat1" else RMAT2
    return rmat_graph(scale=scale, seed=seed, params=params).sorted_by_weight()


@functools.lru_cache(maxsize=16)
def cached_grid(scale: int, *, seed: int = 7) -> CSRGraph:
    """Generate (once) and weight-sort a 2-D grid with ~``2**scale`` vertices.

    Grids are the large-diameter / many-buckets regime — the opposite end of
    the spectrum from R-MAT — so hot-path benchmarks cover both.
    """
    rows = 2 ** (scale // 2)
    cols = 2 ** (scale - scale // 2)
    return grid_graph(rows, cols, seed=seed).sorted_by_weight()


def load_bench_json(path: str) -> dict:
    """Read a benchmark-results JSON file (as written by ``write_bench_json``)."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_bench_json(path: str, payload: dict) -> None:
    """Write benchmark results as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def default_machine(num_ranks: int, threads_per_rank: int = 16) -> MachineConfig:
    """The harness's standard simulated machine shape."""
    return MachineConfig(num_ranks=num_ranks, threads_per_rank=threads_per_rank)


def run_algorithm(
    graph: CSRGraph,
    root: int,
    name: str,
    delta: int,
    machine: MachineConfig,
    **kwargs,
) -> SsspResult:
    """One benchmark run of a named algorithm preset."""
    return solve_sssp(
        graph, root, algorithm=name, delta=delta, machine=machine, **kwargs
    )


def print_table(rows, title: str) -> None:
    """Print a paper-style table, flushed so pytest -s shows it in order."""
    print()
    print(format_table(rows, title), flush=True)
