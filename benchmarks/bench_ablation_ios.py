"""Ablation — the inner/outer-short (IOS) heuristic (Section III-A).

The paper's contribution over Meyer–Sanders edge classification: during the
short phases relax only edges whose proposed distance lands inside the
current bucket. "Our experiments suggest that the number of short edge
relaxations decreases by about 10%, on the benchmark graphs." This ablation
measures the reduction across Δ values and checks total work never grows.
"""

from __future__ import annotations

import functools

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    BENCH_SCALE,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
)
from repro.core.config import SolverConfig
from repro.core.solver import solve_sssp

DELTAS = (25, 64, 128)


@functools.lru_cache(maxsize=1)
def compute_rows():
    rows = []
    machine = default_machine(8)
    for family in ("rmat1", "rmat2"):
        graph = cached_rmat(BENCH_SCALE, family)
        root = choose_root(graph, seed=0)
        for delta in DELTAS:
            base = solve_sssp(graph, root, algorithm="del", machine=machine,
                              config=SolverConfig(delta=delta))
            ios = solve_sssp(graph, root, algorithm="ios", machine=machine,
                             config=SolverConfig(delta=delta, use_ios=True))
            b_short = base.metrics.relaxations_by_kind().get("short_relax", 0)
            i_short = ios.metrics.relaxations_by_kind().get("short_relax", 0)
            rows.append(
                {
                    "family": family.upper(),
                    "delta": delta,
                    "short_relax_base": b_short,
                    "short_relax_ios": i_short,
                    "short_reduction": 1 - i_short / max(b_short, 1),
                    "total_base": base.metrics.total_relaxations,
                    "total_ios": ios.metrics.total_relaxations,
                }
            )
    return rows


def test_ablation_ios(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Ablation — IOS short-relaxation reduction (paper: ~10%)")
    for r in rows:
        # IOS strictly reduces short relaxations...
        assert r["short_relax_ios"] < r["short_relax_base"]
        # ...and never increases total work
        assert r["total_ios"] <= r["total_base"]
    # the reduction is material somewhere (the paper reports ~10%)
    assert max(r["short_reduction"] for r in rows) > 0.05


if __name__ == "__main__":
    print_table(compute_rows(), "Ablation — IOS")
