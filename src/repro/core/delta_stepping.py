"""The Δ-stepping engine (Section II-A, Fig. 2) with the paper's optimisations.

One engine executes the whole algorithm family; the
:class:`~repro.core.config.SolverConfig` flags select the variant:

- plain Δ-stepping with short/long edge classification (``Del-Δ``);
- inner/outer-short refinement (``use_ios``);
- pruning push/pull long phases with the decision heuristic
  (``use_pruning``);
- hybridization into Bellman-Ford (``use_hybrid``);
- Δ = 1 reproduces Dial/Dijkstra, Δ = ∞ reproduces Bellman-Ford.

Step selection — which window of tentative distances to drain and settle
next — is delegated to the :class:`~repro.core.stepping.SteppingStrategy`
chosen by ``config.strategy``: the paper's Δ-buckets (``"delta"``),
radius stepping (``"radius"``) or ρ-stepping (``"rho"``). The engine owns
the drain/settle loop, accounting, checkpoints and hybridization; the
strategy owns the window and the relaxation phase policy.

Execution is bulk-synchronous. Every epoch (bucket) runs a first stage of
iterative *short phases* (relaxing short — under IOS only inner short —
arcs of active vertices) until the bucket drains, settles the bucket
members, then one *long phase* relaxes the remaining arcs by push or pull.
All communication and per-thread compute is declared to the accounting
runtime, which is what the cost model and the paper-figure benches consume.
"""

from __future__ import annotations

import numpy as np

from repro.core.bellman_ford import bellman_ford_stage
from repro.core.bucket_index import BucketIndex
from repro.core.buckets import window_members
from repro.core.context import ExecutionContext
from repro.core.distances import INF, init_distances
from repro.core.hybrid import should_switch
from repro.core.pruning import bucket_census, long_phase_pull, long_phase_push
from repro.core.pushpull import decide_mode
from repro.core.relax import apply_relaxations
from repro.core.stepping import Step, make_strategy
from repro.runtime.comm import RELAX_RECORD_BYTES
from repro.runtime.metrics import ComputeKind
from repro.runtime.watchdog import (
    DeadlineConfig,
    DeadlineExceeded,
    SolveTimeout,
    Watchdog,
)
from repro.util.ranges import concat_ranges

__all__ = ["DeltaSteppingEngine", "run_delta_stepping"]


class DeltaSteppingEngine:
    """Executes one SSSP run over an :class:`ExecutionContext`."""

    def __init__(self, ctx: ExecutionContext) -> None:
        self.ctx = ctx

    # ------------------------------------------------------------------
    def run(
        self,
        root: int,
        *,
        checkpoint_dir=None,
        checkpoint_interval: int = 1,
        checkpoint_keep: int = 3,
        resume: bool = False,
        deadline: DeadlineConfig | None = None,
    ) -> np.ndarray:
        """Solve SSSP from ``root``; returns the distance array.

        ``checkpoint_dir`` enables durable epoch checkpoints (every
        ``checkpoint_interval`` epochs, newest ``checkpoint_keep`` kept);
        with ``resume`` the newest valid checkpoint of the same graph/run
        is loaded and the solve continues from it. ``deadline`` bounds the
        solve (see :class:`~repro.runtime.watchdog.DeadlineConfig`): on a
        trip the ``raise`` policy writes a final resumable checkpoint and
        raises :class:`~repro.runtime.watchdog.SolveTimeout`; the
        ``degrade`` policy collapses the remaining buckets into one
        Bellman-Ford pass (charged to the recovery phase) and returns
        correct distances.
        """
        ctx = self.ctx
        cfg = ctx.config
        n = ctx.graph.num_vertices
        tr = ctx.tracer

        ckpt_mgr = None
        if checkpoint_dir is not None:
            # Lazy import: spmd.checkpoint has no core dependencies, but
            # importing the spmd package at module scope would cycle.
            from repro.spmd.checkpoint import CheckpointManager

            ckpt_mgr = CheckpointManager(
                checkpoint_dir,
                graph=ctx.graph,
                config=cfg,
                machine=ctx.machine,
                root=root,
                engine="core-delta",
                interval=checkpoint_interval,
                keep=checkpoint_keep,
            )
        watchdog = (
            Watchdog(deadline)
            if deadline is not None and deadline.enabled
            else None
        )

        d = init_distances(n, root)
        settled = np.zeros(n, dtype=bool)
        bucket_ordinal = 0
        epoch = 0
        stage = "bucket"
        start_active: np.ndarray | None = None

        solve_span = (
            tr.begin(
                "solve",
                cat="solve",
                engine="core-delta",
                root=int(root),
                n=int(n),
                delta=int(cfg.delta),
            )
            if tr is not None
            else None
        )

        start_ckpt = (
            ckpt_mgr.load_resume() if (ckpt_mgr is not None and resume) else None
        )
        if start_ckpt is not None:
            d = start_ckpt.d.copy()
            settled = start_ckpt.settled.copy()
            bucket_ordinal = start_ckpt.bucket_ordinal
            epoch = start_ckpt.epoch
            stage = start_ckpt.stage
            start_active = start_ckpt.active.copy()
            ctx.metrics.hybrid_switch_bucket = start_ckpt.hybrid_switch_bucket
            if tr is not None:
                tr.instant(
                    "resume", epoch=int(epoch), stage=stage,
                    bucket_ordinal=int(bucket_ordinal),
                )

        def checkpoint_now(stage_name: str, active, *, force: bool = False):
            if ckpt_mgr is None:
                return None
            kwargs = dict(
                epoch=epoch,
                stage=stage_name,
                bucket_ordinal=bucket_ordinal,
                superstep=0,
                d=d,
                settled=settled,
                active=np.asarray(active, dtype=np.int64),
                hybrid_switch_bucket=ctx.metrics.hybrid_switch_bucket,
            )
            path = ckpt_mgr.save(**kwargs) if force else ckpt_mgr.maybe_save(**kwargs)
            if path is not None and tr is not None:
                tr.instant(
                    "checkpoint", stage=stage_name, epoch=int(epoch),
                    path=str(path),
                )
            return path

        def tick() -> None:
            if watchdog is not None:
                watchdog.note_epoch(
                    settled_total=int(settled.sum()),
                    relaxations=ctx.metrics.total_relaxations,
                )

        def bf_hook(active: np.ndarray) -> None:
            nonlocal epoch
            epoch += 1
            checkpoint_now("bf", active)
            tick()

        hook = bf_hook if (ckpt_mgr is not None or watchdog is not None) else None

        try:
            if cfg.is_bellman_ford:
                initial = (
                    start_active
                    if stage == "bf" and start_active is not None
                    else np.array([root], dtype=np.int64)
                )
                bellman_ford_stage(ctx, d, initial, epoch_hook=hook)
            elif stage == "bf":
                # Resume directly into the hybrid Bellman-Ford tail.
                bellman_ford_stage(ctx, d, start_active, epoch_hook=hook)
                settled |= d < INF
            else:
                strategy = make_strategy(cfg)
                strategy.prepare(ctx)
                # The incremental index replaces the per-epoch full scans;
                # built after a potential resume so it covers the restored
                # state. settled_count mirrors settled.sum() so the scan
                # charges stay numerically identical without the O(n) sum.
                # Only the delta strategy can use it — the index is keyed
                # on the fixed bucket width.
                index = (
                    BucketIndex(cfg.delta, d, settled)
                    if cfg.incremental_buckets and strategy.uses_bucket_index
                    else None
                )
                settled_count = int(settled.sum())
                while True:
                    # Next step: every rank scans its unsettled vertices
                    # for its window candidate, then the strategy's
                    # selection collective combines them.
                    ctx.scan_all_ranks(n - settled_count)
                    step = strategy.next_step(
                        ctx, d, settled, index, bucket_ordinal
                    )
                    if step is None:
                        break
                    settled_count = self._process_epoch(
                        d, settled, step, bucket_ordinal, index,
                        settled_count, strategy,
                    )
                    bucket_ordinal += 1
                    epoch += 1
                    if cfg.use_hybrid:
                        # Settled-fraction aggregate for the switch decision.
                        ctx.comm.allreduce(1, phase_kind="bucket")
                        if should_switch(
                            settled, cfg.tau, count=settled_count, tracer=tr
                        ):
                            ctx.metrics.hybrid_switch_bucket = step.key
                            remaining = np.nonzero(~settled & (d < INF))[
                                0
                            ].astype(np.int64)
                            checkpoint_now("bf", remaining)
                            tick()
                            bellman_ford_stage(ctx, d, remaining, epoch_hook=hook)
                            settled |= d < INF
                            break
                    checkpoint_now("bucket", np.empty(0, np.int64))
                    tick()
        except DeadlineExceeded as exc:
            self._resolve_deadline(
                exc, deadline, d, settled, watchdog, checkpoint_now
            )
        if ctx.guards is not None:
            ctx.guards.check_final(d, root)
            ctx.guards.check_recovery_separation(
                ctx.metrics, allowed=ctx.metrics.degraded_to_bf
            )
        if tr is not None:
            tr.end(solve_span, settled=int(settled.sum()))
            tr.finish(metrics=ctx.metrics)
        return d

    # ------------------------------------------------------------------
    def _resolve_deadline(
        self, exc, deadline, d, settled, watchdog, checkpoint_now
    ) -> None:
        """Apply the deadline policy after the watchdog tripped."""
        ctx = self.ctx
        if deadline.policy == "degrade":
            # Every tentative distance is the length of a real path, so a
            # Bellman-Ford fixpoint from the finite set recovers the exact
            # shortest distances — the paper's own hybridization machinery,
            # charged to the recovery phase.
            ctx.metrics.degraded_to_bf = True
            if ctx.tracer is not None:
                ctx.tracer.instant("degrade-to-bf", reason=str(exc.reason))
            finite = np.nonzero(d < INF)[0].astype(np.int64)
            bellman_ford_stage(ctx, d, finite, phase_kind="recovery")
            settled[:] = d < INF
            return
        finite = np.nonzero(d < INF)[0].astype(np.int64)
        # A stage="bf" checkpoint over the finite set is always resumable:
        # re-running Bellman-Ford from it converges to the exact answer.
        path = checkpoint_now("bf", finite, force=True)
        raise SolveTimeout(
            exc.reason,
            distances=d.copy(),
            epochs_completed=watchdog.epochs,
            supersteps=watchdog.supersteps,
            checkpoint_path=path,
        ) from exc

    # ------------------------------------------------------------------
    def _short_phase(
        self, d: np.ndarray, active: np.ndarray, step: Step
    ) -> np.ndarray:
        """One short-edge phase over ``active``; returns changed vertices."""
        ctx = self.ctx
        tr = ctx.tracer
        span = (
            tr.begin("short", cat="phase", bucket=int(step.key))
            if tr is not None
            else None
        )
        graph = ctx.graph
        hi = step.hi
        indptr, adj, weights = graph.indptr, graph.adj, graph.weights
        starts = indptr[active]
        ends = starts + ctx.short_offsets[active]
        arcs, owner_idx = concat_ranges(starts, ends)
        src = active[owner_idx]
        dst = adj[arcs]
        nd = d[src] + weights[arcs]
        scanned = (ends - starts).astype(np.float64)
        if ctx.config.use_ios:
            # Inner-short filter: relax only when the proposed distance lands
            # inside the current bucket; outer short arcs wait for the long
            # phase.
            inner = nd < hi
            if ctx.guards is not None:
                ctx.guards.check_ios_coverage(int(arcs.size), int(nd.size))
                ctx.guards.check_ios_partition(nd, hi, inner)
            src, dst, nd = src[inner], dst[inner], nd[inner]
        ctx.charge(ComputeKind.SHORT_RELAX, active, scanned, phase_kind="short")
        ctx.comm.exchange_by_vertex(src, dst, RELAX_RECORD_BYTES, phase_kind="short")
        ctx.charge(
            ComputeKind.SHORT_RELAX, dst, None, phase_kind="short", count_as_relax=True
        )
        ctx.metrics.note_phase("short", dst.size)
        changed = apply_relaxations(d, dst, nd)
        if ctx.guards is not None:
            ctx.guards.after_relaxations(d)
        if tr is not None:
            tr.end(span, active=int(active.size), relaxed=int(dst.size))
        return changed

    # ------------------------------------------------------------------
    def _process_epoch(
        self,
        d: np.ndarray,
        settled: np.ndarray,
        step: Step,
        bucket_ordinal: int,
        index: BucketIndex | None,
        settled_count: int,
        strategy,
    ) -> int:
        """Process one step's window to completion: short stage, settle,
        and (for the delta strategy) the long phase.

        Returns the updated settled count. ``index``, when given, replaces
        the membership scans and is kept current from the changed-vertex
        sets the relaxation phases return.
        """
        ctx = self.ctx
        cfg = ctx.config
        k = step.key
        lo = step.lo
        hi = step.hi
        tr = ctx.tracer
        epoch_span = (
            tr.begin(
                f"bucket {k}", cat="epoch", bucket=int(k),
                ordinal=int(bucket_ordinal),
            )
            if tr is not None
            else None
        )
        if ctx.guards is not None:
            ctx.guards.on_bucket_start(k)

        # Epoch start: identify the bucket members. The scan charge is the
        # same either way — each rank still owns a pass over its unsettled
        # block in the accounting model — but the index answers from the
        # changed set instead of touching all n vertices.
        ctx.scan_all_ranks(settled.size - settled_count)
        active = (
            index.members(k)
            if index is not None
            else window_members(d, settled, lo, hi)
        )

        # --- Stage 1: iterative short phases until the window drains.
        while True:
            ctx.comm.allreduce(1, phase_kind="bucket")
            if active.size == 0:
                break
            per_rank = np.bincount(
                np.asarray(ctx.partition.owner(active), dtype=np.int64),
                minlength=ctx.machine.num_ranks,
            )
            ctx.charge_scan(per_rank)
            changed = self._short_phase(d, active, step)
            if index is not None:
                index.on_relaxed(changed, d)
            if changed.size:
                in_bucket = (d[changed] >= lo) & (d[changed] < hi)
                active = changed[in_bucket]
            else:
                active = changed

        # --- Settle the window.
        members = (
            index.members(k)
            if index is not None
            else window_members(d, settled, lo, hi)
        )
        settled[members] = True
        settled_count += int(members.size)
        if index is not None:
            index.on_settled(members)
        if ctx.guards is not None:
            ctx.guards.check_settled(d, settled)

        stats: dict[str, int | str] = {}
        if cfg.collect_census:
            stats.update(bucket_census(ctx, d, settled, members, k))

        # --- Stage 2: one long phase, push or pull. The windowed
        # strategies classify every edge short, so their long phase is
        # structurally empty and skipped outright.
        if strategy.short_phase_only:
            mode = "none"
            estimate = None
            stats.update({"mode": "none", "relaxations": 0})
            if ctx.guards is not None and index is not None:
                ctx.guards.check_bucket_index(index, d, settled)
        else:
            long_span = (
                tr.begin("long", cat="phase", bucket=int(k))
                if tr is not None
                else None
            )
            mode, estimate = decide_mode(
                ctx, d, settled, members, k, bucket_ordinal
            )
            if mode == "push":
                changed, phase_stats = long_phase_push(ctx, d, members, k)
            else:
                changed, phase_stats = long_phase_pull(
                    ctx, d, settled, members, k
                )
            if tr is not None:
                tr.end(long_span, mode=mode, relaxed=int(changed.size))
            if index is not None:
                index.on_relaxed(changed, d)
            if ctx.guards is not None:
                ctx.guards.after_relaxations(d)
                if index is not None:
                    ctx.guards.check_bucket_index(index, d, settled)
            stats.update(phase_stats)
        stats["bucket"] = k
        stats["members"] = int(members.size)
        if estimate is not None:
            stats["est_push_cost"] = estimate.push_cost
            stats["est_pull_cost"] = estimate.pull_cost
        ctx.metrics.note_bucket(stats)
        if tr is not None:
            tr.end(epoch_span, members=int(members.size), mode=mode)
        return settled_count


def run_delta_stepping(ctx: ExecutionContext, root: int) -> np.ndarray:
    """Convenience wrapper: build the engine and solve from ``root``."""
    return DeltaSteppingEngine(ctx).run(root)
