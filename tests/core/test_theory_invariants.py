"""Δ-stepping theory invariants (Section II / Meyer–Sanders).

These pin the algorithmic guarantees the paper's correctness rests on,
checked against the engine's observable behaviour:

- epoch ``k`` settles exactly the vertices whose final distance lies in
  ``[kΔ, (k+1)Δ)`` (the recorded member counts must partition the reached
  set by final-distance bucket);
- the processed bucket sequence is strictly increasing;
- Bellman-Ford's productive phase count is bounded by the shortest-path
  tree's hop depth;
- Dijkstra mode (Δ=1) processes exactly one bucket per distinct finite
  distance.
"""

import numpy as np
import pytest

from repro.core.config import DELTA_INFINITY, SolverConfig
from repro.core.context import make_context
from repro.core.delta_stepping import DeltaSteppingEngine
from repro.core.distances import INF
from repro.core.paths import build_parent_tree, tree_depths
from repro.runtime.machine import MachineConfig


def run(graph, root, **cfg):
    machine = MachineConfig(num_ranks=4, threads_per_rank=2)
    ctx = make_context(graph, machine, SolverConfig(**cfg))
    d = DeltaSteppingEngine(ctx).run(root)
    return d, ctx.metrics


class TestEpochSettlement:
    @pytest.mark.parametrize("delta", [5, 25, 80])
    def test_members_partition_reached_set_by_bucket(self, rmat1_small, delta):
        d, metrics = run(rmat1_small, 3, delta=delta)
        reached = d[d < INF]
        # final-distance census per processed bucket
        for stats in metrics.per_bucket_stats:
            k = stats["bucket"]
            in_bucket = int(
                ((reached >= k * delta) & (reached < (k + 1) * delta)).sum()
            )
            assert stats["members"] == in_bucket
        # and the processed buckets cover every reached vertex
        total_members = sum(s["members"] for s in metrics.per_bucket_stats)
        assert total_members == reached.size

    @pytest.mark.parametrize("delta", [5, 25])
    def test_bucket_sequence_strictly_increasing(self, rmat2_small, delta):
        _, metrics = run(rmat2_small, 7, delta=delta)
        ks = [s["bucket"] for s in metrics.per_bucket_stats]
        assert all(b > a for a, b in zip(ks, ks[1:]))

    def test_empty_buckets_skipped(self, rmat2_small):
        # processed bucket count == number of non-empty final-distance
        # buckets, not max bucket index
        delta = 25
        d, metrics = run(rmat2_small, 7, delta=delta)
        reached = d[d < INF]
        nonempty = np.unique(reached // delta).size
        assert metrics.buckets_processed == nonempty


class TestPhaseBounds:
    def test_bf_phases_bounded_by_tree_depth(self, rmat1_small):
        d, metrics = run(rmat1_small, 3, delta=DELTA_INFINITY)
        parent = build_parent_tree(rmat1_small, d, 3)
        depth = tree_depths(parent, 3).max()
        # productive iterations <= depth + 1; one extra empty check
        assert metrics.bf_phases <= depth + 2

    def test_dijkstra_buckets_equal_distinct_distances(self, rmat1_small):
        d, metrics = run(rmat1_small, 3, delta=1)
        distinct = np.unique(d[d < INF]).size
        assert metrics.buckets_processed == distinct

    def test_short_phases_per_epoch_at_least_one(self, rmat2_small):
        _, metrics = run(rmat2_small, 7, delta=25)
        # every processed epoch runs at least one short phase (possibly
        # relaxing nothing) before the long phase
        assert metrics.short_phases >= metrics.buckets_processed


class TestMonotonicity:
    def test_larger_delta_fewer_buckets(self, rmat1_small):
        counts = []
        for delta in (5, 25, 125):
            _, metrics = run(rmat1_small, 3, delta=delta)
            counts.append(metrics.buckets_processed)
        assert counts[0] >= counts[1] >= counts[2]

    def test_larger_delta_no_fewer_relaxations(self, rmat1_small):
        # more aggressive bucketing can only re-relax more
        totals = []
        for delta in (1, 25, DELTA_INFINITY):
            _, metrics = run(rmat1_small, 3, delta=delta)
            totals.append(metrics.total_relaxations)
        assert totals[0] <= totals[1] <= totals[2]
