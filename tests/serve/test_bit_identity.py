"""Bit-identity property: served answers equal independent solves.

The serving layer's headline guarantee (ISSUE/DESIGN §11): whatever path
an answer takes through the service — cache hit, fresh solve inside a
batch, or coalesced with another request — the distance array and the
parent tree derived from it are *bit-identical* to an independent
:func:`~repro.core.solver.solve_sssp` call with the same coordinates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.paths import build_parent_tree
from repro.core.solver import solve_sssp
from repro.graph.builder import from_undirected_edges
from repro.serve.broker import QueryBroker
from repro.serve.workload import WorkloadSpec, root_sequence


@st.composite
def graph_and_stream(draw, max_n=32, max_m=96, max_w=40):
    """A random small graph plus a query stream with hot duplicates."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    tails = rng.integers(0, n, m)
    heads = rng.integers(0, n, m)
    weights = rng.integers(1, max_w + 1, m).astype(np.int64)
    graph = from_undirected_edges(tails, heads, weights, n)
    candidates = np.nonzero(graph.degrees > 0)[0]
    if candidates.size == 0:
        candidates = np.array([0])
    k = draw(st.integers(min_value=1, max_value=min(4, candidates.size)))
    hot = [int(candidates[i]) for i in
           draw(st.permutations(range(candidates.size)))[:k]]
    length = draw(st.integers(min_value=1, max_value=10))
    stream = [hot[draw(st.integers(0, k - 1))] for _ in range(length)]
    return graph, stream


def assert_bit_identical(graph, result, reference) -> None:
    assert np.array_equal(result.distances, reference.distances)
    assert result.distances.dtype == reference.distances.dtype
    served_parent = build_parent_tree(graph, result.distances, result.root)
    ref_parent = build_parent_tree(graph, reference.distances, result.root)
    assert np.array_equal(served_parent, ref_parent)


class TestBitIdentityProperty:
    @settings(max_examples=15, deadline=None)
    @given(gs=graph_and_stream(), delta=st.sampled_from([1, 7, 25]))
    def test_served_stream_matches_independent_solves(self, gs, delta):
        graph, stream = gs
        broker = QueryBroker(
            graph, algorithm="opt", delta=delta,
            num_ranks=2, threads_per_rank=2,
            num_workers=0, flush_interval_s=0.0, max_batch_size=8,
        )
        try:
            # batched phase: the whole stream in as few batches as possible
            futures = broker.submit_many(stream)
            while broker.process_once(block=False):
                pass
            reference = {
                root: solve_sssp(graph, root, algorithm="opt", delta=delta,
                                 num_ranks=2, threads_per_rank=2)
                for root in set(stream)
            }
            seen_sources = set()
            for future in futures:
                res = future.result()
                seen_sources.add(res.source)
                assert_bit_identical(graph, res, reference[res.root])
            # warm phase: every unique root again — all cache hits
            for root in set(stream):
                res = broker.query(root)
                assert res.cached
                assert_bit_identical(graph, res, reference[root])
            assert "solve" in seen_sources
        finally:
            broker.shutdown()


class TestBitIdentityPresets:
    @pytest.mark.parametrize("algorithm", ["delta", "prune", "opt", "lb-opt"])
    def test_zipf_stream_across_presets(self, rmat1_small, algorithm):
        broker = QueryBroker(
            rmat1_small, algorithm=algorithm, delta=25,
            num_ranks=4, threads_per_rank=2,
            num_workers=0, flush_interval_s=0.0, max_batch_size=8,
        )
        try:
            spec = WorkloadSpec(
                num_requests=12, zipf_s=1.3, root_universe=4, seed=11
            )
            stream = [int(r) for r in root_sequence(rmat1_small, spec)]
            results = broker.query_many(stream)
            reference = {
                root: solve_sssp(rmat1_small, root, algorithm=algorithm,
                                 delta=25, num_ranks=4, threads_per_rank=2)
                for root in set(stream)
            }
            sources = {r.source for r in results}
            for res in results:
                assert_bit_identical(rmat1_small, res, reference[res.root])
            # the stream is hot enough to exercise the cache path too
            assert "solve" in sources and "cache" in sources
        finally:
            broker.shutdown()
