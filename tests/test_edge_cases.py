"""Cross-cutting edge cases: tiny graphs, extreme shapes, config corners."""

import numpy as np
import pytest

from repro.core.config import DELTA_INFINITY, SolverConfig
from repro.core.distances import INF
from repro.core.reference import dijkstra_reference
from repro.core.solver import BatchSolver, solve_sssp
from repro.graph.builder import from_undirected_edges
from repro.graph.csr import CSRGraph
from repro.runtime.machine import MachineConfig


def single_edge():
    return from_undirected_edges(np.array([0]), np.array([1]), np.array([7]), 2)


class TestTinyGraphs:
    def test_single_vertex(self):
        g = CSRGraph(np.array([0, 0]), np.array([]), np.array([]))
        res = solve_sssp(g, 0, algorithm="opt", num_ranks=1, threads_per_rank=1)
        assert list(res.distances) == [0]
        assert res.num_reached == 1

    def test_single_edge_all_algorithms(self):
        g = single_edge()
        for algo in ("dijkstra", "bellman-ford", "delta", "prune", "opt"):
            res = solve_sssp(g, 0, algorithm=algo, delta=5,
                             num_ranks=2, threads_per_rank=1)
            assert list(res.distances) == [0, 7]

    def test_more_ranks_than_vertices(self):
        g = single_edge()
        res = solve_sssp(g, 0, algorithm="opt", delta=5,
                         num_ranks=7, threads_per_rank=3, validate=True)
        assert list(res.distances) == [0, 7]

    def test_two_vertex_spmd(self):
        from repro.spmd import spmd_delta_stepping

        g = single_edge()
        machine = MachineConfig(num_ranks=5, threads_per_rank=2)
        d, _ = spmd_delta_stepping(g, 0, machine, delta=3)
        assert list(d) == [0, 7]


class TestExtremeShapes:
    def test_complete_graph(self):
        n = 24
        iu, ju = np.triu_indices(n, k=1)
        rng = np.random.default_rng(0)
        w = rng.integers(1, 100, iu.size).astype(np.int64)
        g = from_undirected_edges(iu, ju, w, n)
        res = solve_sssp(g, 0, algorithm="opt", delta=25,
                         num_ranks=4, threads_per_rank=2, validate=True)
        assert res.num_reached == n

    def test_long_path_many_buckets(self):
        n = 300
        t = np.arange(n - 1)
        g = from_undirected_edges(t, t + 1, np.full(n - 1, 200), n)
        res = solve_sssp(g, 0, algorithm="delta", delta=25,
                         num_ranks=4, threads_per_rank=2, validate=True)
        # distances up to ~60k: many buckets, all handled
        assert res.metrics.buckets_processed > 100
        assert res.distances[n - 1] == 200 * (n - 1)

    def test_max_weight_one(self):
        g = from_undirected_edges(
            np.array([0, 1, 2]), np.array([1, 2, 3]), np.array([1, 1, 1]), 4
        )
        for delta in (1, 2, DELTA_INFINITY):
            res = solve_sssp(g, 0, algorithm="delta", delta=delta,
                             num_ranks=2, threads_per_rank=1)
            assert list(res.distances) == [0, 1, 2, 3]

    def test_star_with_huge_hub_and_lb(self):
        n = 500
        t = np.zeros(n - 1, dtype=np.int64)
        h = np.arange(1, n)
        w = np.random.default_rng(1).integers(1, 256, n - 1).astype(np.int64)
        g = from_undirected_edges(t, h, w, n)
        cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                           use_hybrid=True, intra_lb=True,
                           inter_split=True, split_degree=64)
        res = solve_sssp(g, 0, algorithm="lb", config=cfg,
                         num_ranks=4, threads_per_rank=4, validate=True)
        assert res.num_proxies >= 8  # the hub shatters into many proxies


class TestConfigCorners:
    def test_delta_between_weights(self):
        # delta larger than every weight: all edges short
        g = single_edge()
        res = solve_sssp(g, 0, algorithm="delta", delta=1000,
                         num_ranks=2, threads_per_rank=1)
        assert res.metrics.relaxations_by_kind().get("long_push_relax", 0) == 0

    def test_delta_one_all_long(self, rmat1_small):
        res = solve_sssp(rmat1_small, 3, algorithm="delta", delta=1,
                         num_ranks=2, threads_per_rank=1)
        assert res.metrics.relaxations_by_kind().get("short_relax", 0) == 0

    def test_histogram_one_bin(self, rmat1_small):
        cfg = SolverConfig(delta=25, use_ios=True, use_pruning=True,
                           pushpull_estimator="histogram", histogram_bins=1)
        res = solve_sssp(rmat1_small, 3, algorithm="h1", config=cfg,
                         num_ranks=2, threads_per_rank=2)
        assert np.array_equal(res.distances, dijkstra_reference(rmat1_small, 3))

    def test_batch_solver_on_directed(self):
        from repro.graph.builder import from_edges

        g = from_edges(np.array([0, 1]), np.array([1, 2]), np.array([2, 3]), 3)
        solver = BatchSolver(g, algorithm="delta", delta=5,
                             num_ranks=2, threads_per_rank=1)
        res = solver.solve(0)
        assert list(res.distances) == [0, 2, 5]

    def test_degree_partition_with_spmd(self, rmat1_small):
        # SPMD rank states honour any contiguous partition.
        from repro.core.config import SolverConfig as SC
        from repro.spmd import spmd_delta_stepping

        machine = MachineConfig(num_ranks=4, threads_per_rank=2)
        cfg = SC(delta=25, partition="degree")
        d, ctx = spmd_delta_stepping(rmat1_small, 3, machine, config=cfg)
        assert np.array_equal(d, dijkstra_reference(rmat1_small, 3))
        from repro.graph.partition import DegreeBalancedPartition

        assert isinstance(ctx.partition, DegreeBalancedPartition)
