"""Unit tests for edge-list -> CSR construction."""

import numpy as np
import pytest

from repro.graph.builder import compact_edges, from_edges, from_undirected_edges


class TestCompactEdges:
    def test_self_loops_dropped(self):
        t, h, w = compact_edges(
            np.array([0, 1, 1]), np.array([0, 1, 2]), np.array([5, 5, 5])
        )
        assert list(t) == [1]
        assert list(h) == [2]

    def test_self_loops_kept_when_asked(self):
        t, h, w = compact_edges(
            np.array([0]), np.array([0]), np.array([5]), drop_self_loops=False
        )
        assert list(t) == [0]

    def test_duplicates_keep_min_weight(self):
        t, h, w = compact_edges(
            np.array([0, 0, 0]), np.array([1, 1, 1]), np.array([9, 3, 7])
        )
        assert list(t) == [0]
        assert list(w) == [3]

    def test_sorted_output(self):
        t, h, w = compact_edges(
            np.array([2, 0, 1]), np.array([0, 1, 0]), np.array([1, 1, 1])
        )
        assert list(t) == [0, 1, 2]

    def test_empty_input(self):
        t, h, w = compact_edges(np.array([]), np.array([]), np.array([]))
        assert t.size == h.size == w.size == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            compact_edges(np.array([0]), np.array([1, 2]), np.array([1]))


class TestFromEdges:
    def test_basic_directed(self):
        g = from_edges(
            np.array([0, 0, 1]), np.array([1, 2, 2]), np.array([2, 7, 1]), 3
        )
        assert not g.undirected
        assert list(g.neighbors(0)) == [1, 2]
        assert g.num_arcs == 3

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            from_edges(np.array([0]), np.array([9]), np.array([1]), 3)

    def test_no_dedup_keeps_duplicates(self):
        g = from_edges(
            np.array([0, 0]), np.array([1, 1]), np.array([2, 3]), 2, dedup=False
        )
        assert g.num_arcs == 2

    def test_isolated_vertices_have_empty_adjacency(self):
        g = from_edges(np.array([0]), np.array([1]), np.array([1]), 5)
        for u in (2, 3, 4):
            assert g.degree(u) == 0


class TestFromUndirectedEdges:
    def test_symmetrization(self):
        g = from_undirected_edges(np.array([0]), np.array([1]), np.array([4]), 2)
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == [0]
        assert g.neighbor_weights(0)[0] == g.neighbor_weights(1)[0] == 4
        assert g.num_undirected_edges == 1

    def test_parallel_edges_collapse_to_lightest_both_directions(self):
        g = from_undirected_edges(
            np.array([0, 1]), np.array([1, 0]), np.array([9, 2]), 2
        )
        assert g.num_undirected_edges == 1
        assert g.neighbor_weights(0)[0] == 2
        assert g.neighbor_weights(1)[0] == 2

    def test_self_loop_removed(self):
        g = from_undirected_edges(np.array([0, 1]), np.array([0, 1]), np.array([1, 1]), 2)
        assert g.num_arcs == 0

    def test_degree_symmetry(self, rmat1_small):
        # every arc has its reverse: in-degree == out-degree per vertex
        rev = rmat1_small.reverse()
        assert np.array_equal(rmat1_small.degrees, rev.degrees)

    def test_weight_symmetry(self, rmat1_small):
        g = rmat1_small
        # check a sample of arcs for reverse-arc weight equality
        rng = np.random.default_rng(0)
        tails = g.arc_tails()
        for i in rng.integers(0, g.num_arcs, 50):
            u, v, w = int(tails[i]), int(g.adj[i]), int(g.weights[i])
            back = g.neighbors(v)
            j = np.nonzero(back == u)[0]
            assert j.size == 1
            assert g.neighbor_weights(v)[j[0]] == w
