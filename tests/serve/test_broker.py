"""QueryBroker semantics: admission, coalescing, deadlines, drain/shutdown.

Most tests run the broker in manual mode (``num_workers=0`` with
``process_once``) so batch composition is deterministic; a couple of
threaded smoke tests cover the worker-pool path.
"""

import numpy as np
import pytest

from repro.core.solver import solve_sssp
from repro.graph.roots import choose_root, choose_roots
from repro.runtime.watchdog import DeadlineConfig, SolveTimeout
from repro.serve.broker import QueryBroker
from repro.serve.request import ServiceOverload, ServiceShutdown


def manual_broker(graph, **kwargs):
    kwargs.setdefault("num_workers", 0)
    kwargs.setdefault("flush_interval_s", 0.0)
    kwargs.setdefault("num_ranks", 2)
    kwargs.setdefault("threads_per_rank", 2)
    return QueryBroker(graph, **kwargs)


class TestQueryPath:
    def test_cold_then_warm(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        root = int(choose_root(rmat1_small, seed=0))
        cold = broker.query(root)
        warm = broker.query(root)
        assert cold.source == "solve"
        assert warm.source == "cache" and warm.cached
        # a hit hands back the cached array itself: bit-identical for free
        assert warm.distances is cold.distances
        broker.shutdown()

    def test_distances_match_offline_solve(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        root = int(choose_root(rmat1_small, seed=1))
        served = broker.query(root)
        offline = solve_sssp(rmat1_small, root, algorithm="opt", delta=25,
                             num_ranks=2, threads_per_rank=2)
        assert np.array_equal(served.distances, offline.distances)
        assert served.distances.dtype == offline.distances.dtype
        broker.shutdown()

    def test_paths_to_targets(self, path_graph):
        broker = manual_broker(path_graph)
        res = broker.query(0, targets=(4, 2))
        assert res.paths[4] == [0, 1, 2, 3, 4]
        assert res.paths[2] == [0, 1, 2]
        assert res.distance_to(4) == 16
        broker.shutdown()

    def test_unreachable_target_is_none(self, disconnected_graph):
        broker = manual_broker(disconnected_graph)
        res = broker.query(0, targets=(1, 3))
        assert res.paths[1] == [0, 1]
        assert res.paths[3] is None
        broker.shutdown()

    def test_invalid_root_and_target(self, path_graph):
        broker = manual_broker(path_graph)
        with pytest.raises(ValueError, match="root"):
            broker.submit(99)
        with pytest.raises(ValueError, match="target"):
            broker.submit(0, targets=(99,))
        broker.shutdown()

    def test_query_many_input_order(self, rmat1_small):
        broker = manual_broker(rmat1_small, max_batch_size=8)
        roots = [int(r) for r in choose_roots(rmat1_small, 4, seed=2)]
        results = broker.query_many(roots)
        assert [r.root for r in results] == roots
        broker.shutdown()


class TestCoalescing:
    def test_duplicate_roots_share_one_solve(self, rmat1_small):
        broker = manual_broker(rmat1_small, max_batch_size=8)
        root = int(choose_root(rmat1_small, seed=3))
        other = int(choose_root(rmat1_small, seed=4))
        assert root != other
        futures = broker.submit_many([root, root, root, other])
        served = broker.process_once(block=True)
        assert served == 4
        results = [f.result() for f in futures]
        assert [r.source for r in results] == [
            "solve", "coalesced", "coalesced", "solve",
        ]
        assert broker.report()["solves"] == 2
        # coalesced answers are the same array as the fresh solve's
        assert results[1].distances is results[0].distances
        broker.shutdown()

    def test_different_deadlines_never_coalesce(self, rmat1_small):
        broker = manual_broker(rmat1_small, max_batch_size=8)
        root = int(choose_root(rmat1_small, seed=3))
        lax = DeadlineConfig(max_supersteps=100_000)
        f1 = broker.submit(root, deadline=None)
        f2 = broker.submit(root, deadline=lax)
        broker.process_once(block=True)
        assert f1.result().source == "solve"
        assert f2.result().source == "solve"  # own solve, not coalesced
        assert broker.report()["solves"] == 2
        broker.shutdown()

    def test_dispatch_rechecks_cache(self, rmat1_small):
        # A root queued behind an identical earlier batch is answered from
        # the cache at dispatch time, without another solve.
        broker = manual_broker(rmat1_small, max_batch_size=1)
        root = int(choose_root(rmat1_small, seed=3))
        f1 = broker.submit(root)
        f2 = broker.submit(root)  # separate batch (max_batch_size=1)
        broker.process_once(block=True)
        broker.process_once(block=True)
        assert f1.result().source == "solve"
        assert f2.result().source == "cache"
        assert broker.report()["solves"] == 1
        broker.shutdown()


class TestOverloadAndShutdown:
    def test_overload_sheds_typed(self, rmat1_small):
        broker = manual_broker(
            rmat1_small, capacity=2, flush_interval_s=60.0
        )
        roots = [int(r) for r in choose_roots(rmat1_small, 3, seed=5)]
        broker.submit(roots[0])
        broker.submit(roots[1])
        with pytest.raises(ServiceOverload) as info:
            broker.submit(roots[2])
        assert info.value.capacity == 2
        assert broker.queue_depth == 2
        report = broker.report()
        assert report["shed"] == 1
        assert report["offered"] == 3
        assert "serve_shed_total 1" in broker.registry.prometheus_text()
        broker.shutdown()  # graceful: the two queued requests complete
        assert broker.report()["completed"] == 2

    def test_shutdown_drains_queued_work(self, rmat1_small):
        broker = manual_broker(rmat1_small, flush_interval_s=60.0)
        roots = [int(r) for r in choose_roots(rmat1_small, 3, seed=6)]
        futures = broker.submit_many(roots)
        assert not any(f.done() for f in futures)
        broker.shutdown(drain=True)
        assert all(f.done() for f in futures)
        assert [f.result().root for f in futures] == roots

    def test_shutdown_refuses_new_submits(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        broker.shutdown()
        with pytest.raises(ServiceShutdown):
            broker.submit(0)
        with pytest.raises(ServiceShutdown):
            broker.query(0)

    def test_shutdown_without_drain_cancels_queued(self, rmat1_small):
        broker = manual_broker(rmat1_small, flush_interval_s=60.0)
        futures = broker.submit_many(
            [int(r) for r in choose_roots(rmat1_small, 2, seed=7)]
        )
        broker.shutdown(drain=False)
        for future in futures:
            with pytest.raises(ServiceShutdown):
                future.result()
        assert broker.report()["outcome_cancelled"] == 2

    def test_shutdown_idempotent(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        broker.shutdown()
        broker.shutdown()

    def test_context_manager_drains(self, rmat1_small):
        with manual_broker(rmat1_small, flush_interval_s=60.0) as broker:
            future = broker.submit(int(choose_root(rmat1_small, seed=8)))
        assert future.done()
        assert broker.closed


class TestDeadlines:
    def test_deadline_expiry_surfaces_watchdog_timeout(self, rmat1_small):
        # delta=1 forces many bucket epochs, so a 2-superstep budget trips.
        broker = manual_broker(rmat1_small, algorithm="delta", delta=1)
        root = int(choose_root(rmat1_small, seed=3))
        future = broker.submit(
            root, deadline=DeadlineConfig(max_supersteps=2)
        )
        broker.process_once(block=True)
        with pytest.raises(SolveTimeout, match="superstep budget"):
            future.result()
        assert broker.report()["outcome_timeout"] == 1
        broker.shutdown()

    def test_default_deadline_applies(self, rmat1_small):
        broker = manual_broker(
            rmat1_small,
            algorithm="delta",
            delta=1,
            default_deadline=DeadlineConfig(max_supersteps=2),
        )
        root = int(choose_root(rmat1_small, seed=3))
        with pytest.raises(SolveTimeout):
            broker.query(root)
        broker.shutdown()

    def test_timed_out_root_is_not_cached(self, rmat1_small):
        broker = manual_broker(rmat1_small, algorithm="delta", delta=1)
        root = int(choose_root(rmat1_small, seed=3))
        with pytest.raises(SolveTimeout):
            broker.query(root, deadline=DeadlineConfig(max_supersteps=2))
        # a lax retry must re-solve, not hit a poisoned cache entry
        res = broker.query(root)
        assert res.source == "solve"
        broker.shutdown()


class TestWorkersAndTelemetry:
    def test_worker_pool_serves(self, rmat1_small):
        broker = QueryBroker(
            rmat1_small, num_ranks=2, threads_per_rank=2,
            num_workers=2, max_batch_size=4, flush_interval_s=0.001,
        )
        roots = [int(r) for r in choose_roots(rmat1_small, 6, seed=9)]
        futures = broker.submit_many(roots + roots)  # half should hit/coalesce
        assert broker.drain(timeout=30.0)
        results = [f.result(timeout=5.0) for f in futures]
        base = {r: results[i].distances for i, r in enumerate(roots)}
        for res in results:
            assert np.array_equal(res.distances, base[res.root])
        broker.shutdown()
        report = broker.report()
        assert report["completed"] == 12
        # with racing workers duplicates may each solve before the cache
        # fills; the guarantee is answer identity, not solve count
        assert 6 <= report["solves"] <= 12

    def test_registry_metrics_exposed(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        broker.query(int(choose_root(rmat1_small, seed=0)))
        broker.shutdown()
        text = broker.registry.prometheus_text()
        for name in (
            "serve_requests_total",
            "serve_batches_total",
            "serve_solves_total",
            "serve_batch_size",
            "serve_request_latency_seconds",
            "serve_queue_depth",
            "serve_cache_misses_total",
        ):
            assert name in text, name

    def test_trace_artifacts_validate(self, rmat1_small, tmp_path):
        from repro.obs.export import validate_trace_file
        from repro.obs.tracer import TraceConfig

        path = tmp_path / "serve.jsonl"
        broker = manual_broker(
            rmat1_small, trace=TraceConfig(path=str(path))
        )
        root = int(choose_root(rmat1_small, seed=0))
        broker.query(root)
        broker.query(root)  # one cache hit
        broker.shutdown()
        fmt, problems = validate_trace_file(str(path))
        assert fmt == "jsonl"
        assert problems == []
