"""Tracing must be invisible: distances, counters and simulated cost are
bit-identical with telemetry on and off, on both engines, with and without
fault injection."""

import numpy as np
import pytest

from repro.core.solver import solve_sssp
from repro.obs.tracer import TraceConfig
from repro.runtime.costmodel import evaluate_cost
from repro.runtime.machine import MachineConfig
from repro.spmd.engine import spmd_bellman_ford, spmd_delta_stepping
from repro.spmd.faults import FaultPlan, solve_with_faults


@pytest.fixture()
def machine():
    return MachineConfig(num_ranks=4, threads_per_rank=4)


def _assert_identical(d0, m0, c0, d1, m1, c1):
    assert np.array_equal(d0, d1)
    assert m0.summary() == m1.summary()
    assert m0.relaxations == m1.relaxations
    assert c0 == c1


class TestOrchestratedEngine:
    @pytest.mark.parametrize("algorithm", ["opt", "bellman-ford"])
    def test_traced_solve_bit_identical(self, rmat1_small, machine, algorithm):
        r0 = solve_sssp(
            rmat1_small, 3, algorithm=algorithm, delta=25, machine=machine
        )
        r1 = solve_sssp(
            rmat1_small, 3, algorithm=algorithm, delta=25, machine=machine,
            trace=TraceConfig(path=None),
        )
        _assert_identical(
            r0.distances, r0.metrics, r0.cost,
            r1.distances, r1.metrics, r1.cost,
        )
        assert r0.trace is None
        assert r1.trace is not None


class TestSpmdEngine:
    def test_delta_stepping_bit_identical(self, rmat1_small, machine):
        d0, c0 = spmd_delta_stepping(rmat1_small, 3, machine, delta=25)
        d1, c1 = spmd_delta_stepping(
            rmat1_small, 3, machine, delta=25, trace=TraceConfig(path=None)
        )
        _assert_identical(
            d0, c0.metrics, evaluate_cost(c0.metrics, machine),
            d1, c1.metrics, evaluate_cost(c1.metrics, machine),
        )
        assert c1.tracer is not None and c1.tracer.num_records > 0

    def test_bellman_ford_bit_identical(self, rmat1_small, machine):
        d0, c0 = spmd_bellman_ford(rmat1_small, 3, machine)
        d1, c1 = spmd_bellman_ford(
            rmat1_small, 3, machine, trace=TraceConfig(path=None)
        )
        _assert_identical(
            d0, c0.metrics, evaluate_cost(c0.metrics, machine),
            d1, c1.metrics, evaluate_cost(c1.metrics, machine),
        )


class TestFaultedEngine:
    def test_faulted_solve_bit_identical(self, rmat1_small, machine):
        plan = FaultPlan.from_spec("loss=0.05,dup=0.02,seed=3")
        f0 = solve_with_faults(
            rmat1_small, 3, plan, algorithm="delta", delta=25, machine=machine
        )
        f1 = solve_with_faults(
            rmat1_small, 3, plan, algorithm="delta", delta=25, machine=machine,
            trace=TraceConfig(path=None),
        )
        _assert_identical(
            f0.distances, f0.metrics, f0.cost,
            f1.distances, f1.metrics, f1.cost,
        )
        # The reliable transport's recovery shows up as retransmit instants.
        instants = {
            e["name"] for e in f1.trace.events if e["type"] == "instant"
        }
        assert "retransmit" in instants

    def test_crash_recovery_traced(self, rmat1_small, machine):
        plan = FaultPlan.from_spec("crash=1@2,seed=5")
        f0 = solve_with_faults(
            rmat1_small, 3, plan, algorithm="delta", delta=25, machine=machine
        )
        f1 = solve_with_faults(
            rmat1_small, 3, plan, algorithm="delta", delta=25, machine=machine,
            trace=TraceConfig(path=None),
        )
        _assert_identical(
            f0.distances, f0.metrics, f0.cost,
            f1.distances, f1.metrics, f1.cost,
        )
        instants = {
            e["name"] for e in f1.trace.events if e["type"] == "instant"
        }
        assert "crash" in instants
