"""Live graphs in the serving plane (DESIGN.md §15).

Epoch handoff semantics: ``apply_updates`` swaps the serving snapshot
without draining — requests pinned at admission keep their snapshot's
graph, solver and cache entries until they terminally complete, and no
request ever observes a mix of two snapshots.
"""

import numpy as np
import pytest

from repro.core.solver import solve_sssp
from repro.dynamic.updates import UpdateBatch, random_update_batch
from repro.graph.roots import choose_root
from repro.serve.broker import QueryBroker
from repro.serve.chaos import ChaosPlan
from repro.serve.request import ServiceShutdown
from repro.serve.retry import RetryPolicy


def manual_broker(graph, **kwargs):
    kwargs.setdefault("num_workers", 0)
    kwargs.setdefault("flush_interval_s", 0.0)
    kwargs.setdefault("num_ranks", 2)
    kwargs.setdefault("threads_per_rank", 2)
    return QueryBroker(graph, **kwargs)


def offline(graph, root):
    return solve_sssp(
        graph, root, algorithm="opt", delta=25,
        num_ranks=2, threads_per_rank=2,
    ).distances


def churn(graph, seed, fraction=0.02):
    return random_update_batch(
        graph, np.random.default_rng(seed), churn_fraction=fraction
    )


class TestApplyUpdates:
    def test_swaps_snapshot_and_reports(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        report = broker.apply_updates(churn(rmat1_small, 1))
        assert report["snapshot_id"] == 1
        assert report["parent_id"] == 0
        assert report["batch_size"] > 0
        assert broker.report()["snapshot_id"] == 1
        assert broker.report()["updates"] == 1
        assert broker.graph is broker.versioner.current.graph
        broker.shutdown()

    def test_new_requests_solve_on_new_snapshot(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        root = int(choose_root(rmat1_small, seed=0))
        broker.apply_updates(churn(rmat1_small, 2))
        res = broker.query(root)
        assert res.snapshot_id == 1
        np.testing.assert_array_equal(
            res.distances, offline(broker.versioner.current.graph, root)
        )
        broker.shutdown()

    def test_closed_broker_refuses_updates(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        broker.shutdown()
        with pytest.raises(ServiceShutdown):
            broker.apply_updates(churn(rmat1_small, 3))

    def test_update_metrics(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        broker.apply_updates(churn(rmat1_small, 4))
        text = broker.registry.prometheus_text()
        assert "serve_updates_total" in text
        assert "serve_snapshot_id" in text
        broker.shutdown()


class TestPinning:
    def test_queued_request_keeps_admission_snapshot(self, rmat1_small):
        """A request admitted before the swap solves on its old graph."""
        broker = manual_broker(rmat1_small)
        root = int(choose_root(rmat1_small, seed=1))
        fut = broker.submit(root)
        broker.apply_updates(churn(rmat1_small, 5))
        broker.drain()
        res = fut.result()
        assert res.snapshot_id == 0
        np.testing.assert_array_equal(res.distances, offline(rmat1_small, root))
        # A fresh request for the same root lands on the new snapshot.
        res2 = broker.query(root)
        assert res2.snapshot_id == 1
        np.testing.assert_array_equal(
            res2.distances, offline(broker.versioner.current.graph, root)
        )
        broker.shutdown()

    def test_requests_across_snapshots_never_coalesce(self, rmat1_small):
        broker = manual_broker(rmat1_small, max_batch_size=8)
        root = int(choose_root(rmat1_small, seed=2))
        f0 = broker.submit(root)
        broker.apply_updates(churn(rmat1_small, 6))
        f1 = broker.submit(root)
        broker.drain()
        r0, r1 = f0.result(), f1.result()
        assert (r0.snapshot_id, r1.snapshot_id) == (0, 1)
        # Different snapshots => different solves, even for one root.
        assert r0.source == "solve" and r1.source == "solve"
        broker.shutdown()

    def test_paths_extracted_on_pinned_snapshot(self, path_graph):
        broker = manual_broker(path_graph)
        fut = broker.submit(0, targets=(4,))
        # Cut 3-4: on snapshot 1 the old path no longer exists.
        broker.apply_updates(UpdateBatch.build(deletes=([3], [4])))
        broker.drain()
        assert fut.result().paths[4] == [0, 1, 2, 3, 4]  # snapshot 0 path
        res = broker.query(0, targets=(4,))
        assert res.paths[4] is None  # snapshot 1: unreachable
        broker.shutdown()


class TestSnapshotCache:
    def test_cache_keys_are_snapshot_scoped(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        root = int(choose_root(rmat1_small, seed=3))
        broker.query(root)
        broker.apply_updates(churn(rmat1_small, 7))
        res = broker.query(root)
        assert res.source == "solve"  # old entry must not serve new snapshot
        assert (0, root) in broker.cache
        assert (1, root) in broker.cache
        hit = broker.query(root)
        assert hit.source == "cache" and hit.snapshot_id == 1
        broker.shutdown()

    def test_repair_in_place_carries_hot_roots(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        roots = [int(r) for r in np.flatnonzero(rmat1_small.degrees > 0)[:3]]
        for r in roots:
            broker.query(r)
        report = broker.apply_updates(
            churn(rmat1_small, 8), repair_hot_roots=len(roots)
        )
        assert report["repaired"] + report["repair_fallbacks"] == len(roots)
        new_graph = broker.versioner.current.graph
        hits = 0
        for r in roots:
            res = broker.query(r)
            assert res.snapshot_id == 1
            np.testing.assert_array_equal(
                res.distances, offline(new_graph, r)
            )
            hits += res.source == "cache"
        assert hits == report["repaired"]
        assert broker.report()["repairs"] == report["repaired"]
        broker.shutdown()

    def test_repaired_entries_bit_identical_to_fresh(self, rmat1_small):
        broker = manual_broker(rmat1_small)
        root = int(choose_root(rmat1_small, seed=4))
        broker.query(root)
        broker.apply_updates(churn(rmat1_small, 9), repair_hot_roots=1)
        cached = broker.cache.peek((1, root))
        if cached is not None:  # repaired (no fallback)
            np.testing.assert_array_equal(
                cached, offline(broker.versioner.current.graph, root)
            )
        broker.shutdown()

    def test_retired_snapshot_cache_swept(self, rmat1_small):
        broker = manual_broker(rmat1_small, snapshot_retention=1)
        root = int(choose_root(rmat1_small, seed=5))
        broker.query(root)
        assert (0, root) in broker.cache
        broker.apply_updates(churn(rmat1_small, 10))
        # retention=1 retires snapshot 0 immediately (nothing in flight).
        assert (0, root) not in broker.cache
        assert broker.report()["snapshots_resident"] == 1
        broker.shutdown()


class TestDeferredRetirement:
    def test_pinned_request_defers_retirement(self, rmat1_small):
        broker = manual_broker(rmat1_small, snapshot_retention=1)
        root = int(choose_root(rmat1_small, seed=6))
        broker.query(root)  # seeds (0, root) cache entry
        fut = broker.submit(int(choose_root(rmat1_small, seed=7)))
        broker.apply_updates(churn(rmat1_small, 11))
        # Snapshot 0 is out of retention but still pinned by `fut`.
        assert broker.report()["snapshots_resident"] == 2
        assert (0, root) in broker.cache
        broker.drain()
        res = fut.result()
        assert res.snapshot_id == 0
        np.testing.assert_array_equal(
            res.distances, offline(rmat1_small, res.root)
        )
        # Terminal completion released the pin: snapshot 0 fully retired.
        assert broker.report()["snapshots_resident"] == 1
        assert (0, root) not in broker.cache
        broker.shutdown()


class TestLiveObservability:
    def test_wide_events_carry_snapshot_id(self, rmat1_small):
        broker = manual_broker(rmat1_small, events=True)
        r0 = int(choose_root(rmat1_small, seed=8))
        broker.query(r0)
        broker.apply_updates(churn(rmat1_small, 12))
        broker.query(r0)
        events = broker.events.events()
        assert [e["snapshot_id"] for e in events] == [0, 1]
        assert all(e["schema"] == 1 for e in events)
        broker.shutdown()

    def test_chaos_one_draw_stream_across_snapshots(self, rmat1_small):
        """Chaos draws key on (root, attempt) — the snapshot does not
        shift the stream, so a chaos schedule replays across updates."""
        root = int(choose_root(rmat1_small, seed=9))
        plan = ChaosPlan(seed=3, error_rate=1.0, max_faulty_attempts=1)
        logs = []
        for with_update in (False, True):
            broker = manual_broker(
                rmat1_small, chaos=plan,
                retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
            )
            if with_update:
                broker.apply_updates(churn(rmat1_small, 13))
            res = broker.query(root)
            assert res.attempts == 2  # first attempt faulted, retry ok
            logs.append(list(broker.chaos.log))
            broker.shutdown()
        assert logs[0] == logs[1]
