"""BFS vs SSSP: the Fig. 1 discussion, measured.

The paper notes its SSSP is "only two to five times slower than BFS on the
same machine configuration" — quoting Graph 500 BFS records. Here both run
on the same simulated machine: the direction-optimizing BFS of Beamer et
al. (the algorithm that inspired the paper's pruning) against LB-OPT-25,
plus a look at what direction optimization itself buys, level by level.

Run:  python examples/bfs_comparison.py
"""

from __future__ import annotations

from repro import rmat_graph, solve_sssp
from repro.bfs import run_bfs
from repro.graph.roots import choose_root
from repro.util import format_table


def main() -> None:
    graph = rmat_graph(scale=13, seed=2).sorted_by_weight()
    root = choose_root(graph, seed=0)
    machine_kwargs = dict(num_ranks=8, threads_per_rank=16)

    rows = []
    for label, direction in [
        ("BFS auto (Beamer)", "auto"),
        ("BFS top-down only", "top-down"),
        ("BFS bottom-up only", "bottom-up"),
    ]:
        res = run_bfs(graph, root, direction=direction, **machine_kwargs)
        rows.append(
            {
                "algorithm": label,
                "gteps": res.gteps,
                "edges_examined": res.metrics.total_relaxations,
                "levels": res.num_levels,
            }
        )
    sssp = solve_sssp(graph, root, algorithm="lb-opt", delta=25, **machine_kwargs)
    rows.append(
        {
            "algorithm": "SSSP LB-OPT-25",
            "gteps": sssp.gteps,
            "edges_examined": sssp.metrics.total_relaxations,
            "levels": sssp.metrics.total_phases,
        }
    )
    print(format_table(rows, f"BFS vs SSSP on {graph}"))

    auto = run_bfs(graph, root, **machine_kwargs)
    print("\ndirection per BFS level:", auto.direction_per_level)
    ratio = auto.gteps / sssp.gteps
    print(f"BFS/SSSP speed ratio: {ratio:.2f}x "
          f"(the paper observes 2-5x on Blue Gene/Q)")


if __name__ == "__main__":
    main()
