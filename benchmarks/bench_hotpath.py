"""Hot-path benchmark: incremental bucket index vs from-scratch scans.

This is the perf baseline for the bucket-index + mailbox-lane work (PR 3,
DESIGN.md §9). For every preset it times full solves twice — once with
``incremental_buckets=False`` (the historical O(n)-per-epoch scan path)
and once with the incremental :class:`~repro.core.bucket_index.
BucketIndex` — asserts the two variants are bit-identical in distances,
execution counters and simulated cost, and reports wall-clock ns/edge and
epochs/sec for both.

Presets cover both ends of the bucket spectrum — RMAT-1 and RMAT-2
(skewed-degree, well-filled buckets) and a 2-D grid (large diameter, very
many sparse buckets, the regime where per-epoch rescans hurt most) — on
both engines: the orchestrated :class:`DeltaSteppingEngine` and the SPMD
engine (whose superstep path also carries the batched mailbox lanes).

Standalone usage::

    python benchmarks/bench_hotpath.py --scale tiny --out bench_tiny.json
    python benchmarks/bench_hotpath.py --scale default --update BENCH_PR3.json
    python benchmarks/bench_hotpath.py --scale tiny --check BENCH_PR3.json

Before/after protocol: the script also runs unmodified on the pre-PR tree
(where ``SolverConfig`` has no ``incremental_buckets`` field — the
incremental variant is then skipped and the scan numbers are the true
pre-PR hot path)::

    PYTHONPATH=<pre-PR>/src python benchmarks/bench_hotpath.py --out before.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --merge-before before.json --update BENCH_PR3.json

``--check`` exits non-zero when the incremental path's epochs/sec —
normalized by the same run's scan-path epochs/sec, so the gate is
machine-independent — regressed more than 25% against a committed
baseline. That is the CI smoke gate.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    cached_grid,
    cached_rmat,
    choose_root,
    default_machine,
    load_bench_json,
    print_table,
    write_bench_json,
)
from repro.core.config import DELTA_FREE_PRESETS, preset
from repro.core.solver import solve_sssp
from repro.runtime.costmodel import evaluate_cost
from repro.spmd.engine import spmd_delta_stepping

SCALE_LABELS = {"tiny": 10, "default": 16}

#: preset name -> (graph builder, algorithm, delta, engine)
#:
#: The radius/ρ rows exercise the windowed stepping strategies behind the
#: same harness. They never build a bucket index
#: (``uses_bucket_index=False``), so they run a single scan variant and
#: the scan-vs-incremental regression gate skips them — their purpose is
#: the per-strategy epochs/sec and ns/edge columns, benchmarked through
#: both engines.
PRESETS = {
    "rmat1": (lambda scale: cached_rmat(scale, "rmat1"), "delta", 8, "orch"),
    "rmat2": (lambda scale: cached_rmat(scale, "rmat2"), "delta", 8, "orch"),
    "grid": (lambda scale: cached_grid(scale), "delta", 25, "orch"),
    "rmat1-spmd": (lambda scale: cached_rmat(scale, "rmat1"), "delta", 8, "spmd"),
    "grid-spmd": (lambda scale: cached_grid(scale), "delta", 25, "spmd"),
    "rmat1-radius": (lambda scale: cached_rmat(scale, "rmat1"), "radius", 0, "orch"),
    "rmat1-rho": (lambda scale: cached_rmat(scale, "rmat1"), "rho", 0, "orch"),
    "grid-radius": (lambda scale: cached_grid(scale), "radius", 0, "orch"),
    "grid-rho": (lambda scale: cached_grid(scale), "rho", 0, "orch"),
    "rmat1-radius-spmd": (
        lambda scale: cached_rmat(scale, "rmat1"), "radius", 0, "spmd"
    ),
    "rmat1-rho-spmd": (lambda scale: cached_rmat(scale, "rmat1"), "rho", 0, "spmd"),
}

#: CI gate: fail when the normalized incremental epochs/sec drops below
#: this fraction of the committed baseline's.
REGRESSION_FLOOR = 0.75


def _evolve_incremental(cfg, incremental: bool):
    """Toggle the flag; None when this tree predates it (pre-PR run)."""
    try:
        return cfg.evolve(incremental_buckets=incremental)
    except TypeError:
        return cfg if not incremental else None


def _solve(graph, root, cfg, machine, engine: str):
    """One timed solve; returns (wall_s, distances, metrics, cost)."""
    if engine == "spmd":
        t0 = time.perf_counter()
        d, ctx = spmd_delta_stepping(graph, root, machine, config=cfg)
        wall = time.perf_counter() - t0
        return wall, d, ctx.metrics, evaluate_cost(ctx.metrics, machine)
    res = solve_sssp(graph, root, config=cfg, machine=machine)
    return res.wall_time_s, res.distances, res.metrics, res.cost


def _epochs(metrics) -> int:
    """Bucket epochs plus Bellman-Ford phases — one 'epoch' of either loop."""
    return int(metrics.buckets_processed + metrics.bf_phases)


def run_preset(name: str, scale: int, *, repeats: int, num_ranks: int) -> dict:
    """Time scan vs incremental solves of one preset; return a result row."""
    builder, algorithm, delta, engine = PRESETS[name]
    graph = builder(scale)
    root = choose_root(graph, seed=scale)
    machine = default_machine(num_ranks, threads_per_rank=8)
    base_cfg = preset(algorithm, delta)
    variant_specs = (("scan", False), ("incremental", True))
    if getattr(base_cfg, "strategy", "delta") != "delta":
        # Windowed strategies never consult the bucket index: the two
        # variants would be the same code path, so time it once.
        variant_specs = (("scan", False),)
    variants: dict[str, dict] = {}
    solves: dict[str, tuple] = {}
    for variant, incremental in variant_specs:
        cfg = _evolve_incremental(base_cfg, incremental)
        if cfg is None:
            continue
        best = None
        for _ in range(repeats):
            solved = _solve(graph, root, cfg, machine, engine)
            if best is None or solved[0] < best[0]:
                best = solved
        wall, _, metrics, _ = best
        solves[variant] = best
        num_edges = graph.num_undirected_edges
        variants[variant] = {
            "wall_s": wall,
            "ns_per_edge": wall * 1e9 / max(num_edges, 1),
            "epochs_per_sec": _epochs(metrics) / wall,
        }
    if len(solves) == 2:
        # Both variants must be bit-identical in results, counters and cost.
        _, d_a, m_a, c_a = solves["scan"]
        _, d_b, m_b, c_b = solves["incremental"]
        if not np.array_equal(d_a, d_b):
            raise AssertionError(f"{name}: distances differ between variants")
        if m_a.summary() != m_b.summary():
            raise AssertionError(f"{name}: metrics differ between variants")
        if c_a != c_b:
            raise AssertionError(f"{name}: simulated cost differs between variants")
    ref = solves.get("incremental", solves["scan"])
    row = {
        "preset": name,
        "engine": engine,
        "algorithm": (
            algorithm
            if algorithm in DELTA_FREE_PRESETS
            else f"{algorithm}-{delta}"
        ),
        "scale": scale,
        "n": graph.num_vertices,
        "m": graph.num_undirected_edges,
        "epochs": _epochs(ref[2]),
    }
    row.update(variants)
    if len(variants) == 2:
        row["speedup"] = (
            variants["incremental"]["epochs_per_sec"]
            / variants["scan"]["epochs_per_sec"]
        )
    return row


def run_suite(scale_label: str, *, repeats: int, num_ranks: int) -> dict:
    """Run every preset at one scale; return the JSON payload."""
    scale = SCALE_LABELS.get(scale_label)
    if scale is None:
        scale = int(scale_label)
    runs = []
    for name in PRESETS:
        try:
            preset(PRESETS[name][1], 1)
        except ValueError:
            continue  # pre-PR tree without this strategy: keep the protocol
        row = run_preset(name, scale, repeats=repeats, num_ranks=num_ranks)
        row["scale_label"] = scale_label
        runs.append(row)
    return {
        "schema": 1,
        "machine": {"num_ranks": num_ranks, "threads_per_rank": 8},
        "repeats": repeats,
        "runs": runs,
    }


def _normalized(run: dict) -> float | None:
    """Incremental epochs/sec normalized by the scan path's — the
    machine-independent quantity the CI gate compares."""
    if "incremental" not in run or "scan" not in run:
        return None
    return run["incremental"]["epochs_per_sec"] / run["scan"]["epochs_per_sec"]


def check_against_baseline(current: dict, baseline: dict) -> list[str]:
    """Compare normalized incremental throughput against a baseline.

    Returns a list of human-readable failures (empty = gate passes).
    Baseline rows at other scale labels are ignored, so a tiny-scale CI
    check can run against a baseline that also holds default-scale rows.
    """
    failures: list[str] = []
    index = {
        (run["scale_label"], run["preset"]): run for run in baseline.get("runs", [])
    }
    for run in current["runs"]:
        ref = index.get((run["scale_label"], run["preset"]))
        if ref is None:
            continue
        now, then = _normalized(run), _normalized(ref)
        if now is None or then is None:
            continue
        if now < then * REGRESSION_FLOOR:
            failures.append(
                f"{run['preset']}@{run['scale_label']}: normalized epochs/sec "
                f"{now:.3f} < {REGRESSION_FLOOR:.0%} of baseline {then:.3f}"
            )
    return failures


def merge_before(current: dict, before: dict) -> None:
    """Attach a pre-PR measurement as each run's ``pre_pr`` block.

    ``before`` is this script's output on the pre-PR tree (its scan
    variant is the true pre-PR hot path; it has no incremental variant).
    Adds ``speedup_vs_pre_pr`` where both sides are present.
    """
    index = {
        (run["scale_label"], run["preset"]): run for run in before.get("runs", [])
    }
    for run in current["runs"]:
        ref = index.get((run["scale_label"], run["preset"]))
        if ref is None or "scan" not in ref:
            continue
        run["pre_pr"] = ref["scan"]
        if "incremental" in run:
            run["speedup_vs_pre_pr"] = (
                run["incremental"]["epochs_per_sec"]
                / ref["scan"]["epochs_per_sec"]
            )


def merge_into_baseline(current: dict, baseline: dict) -> dict:
    """Replace baseline rows matched by (scale_label, preset); keep the rest."""
    fresh = {(r["scale_label"], r["preset"]): r for r in current["runs"]}
    kept = [
        r
        for r in baseline.get("runs", [])
        if (r["scale_label"], r["preset"]) not in fresh
    ]
    merged = dict(baseline) if baseline else {}
    merged["schema"] = current["schema"]
    merged["machine"] = current["machine"]
    merged["repeats"] = current["repeats"]
    merged["runs"] = sorted(
        kept + list(fresh.values()), key=lambda r: (r["scale_label"], r["preset"])
    )
    return merged


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="default",
        help="'tiny' (2^10), 'default' (2^16) or an explicit log2 vertex count",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument("--out", help="write results JSON to this path")
    parser.add_argument(
        "--check",
        help="fail if normalized epochs/sec regressed >25%% vs this baseline JSON",
    )
    parser.add_argument(
        "--update", help="merge results into this baseline JSON (create if absent)"
    )
    parser.add_argument(
        "--merge-before",
        help="attach pre-PR numbers from this JSON (produced by running this "
        "script on the pre-PR tree)",
    )
    args = parser.parse_args(argv)

    payload = run_suite(args.scale, repeats=args.repeats, num_ranks=args.ranks)
    if args.merge_before:
        merge_before(payload, load_bench_json(args.merge_before))
    rows = []
    for run in payload["runs"]:
        row = {
            "preset": run["preset"],
            "scale": run["scale"],
            "epochs": run["epochs"],
        }
        for variant in ("pre_pr", "scan", "incremental"):
            if variant in run:
                row[f"{variant} ep/s"] = f"{run[variant]['epochs_per_sec']:.1f}"
        if "incremental" in run:
            row["incr ns/edge"] = f"{run['incremental']['ns_per_edge']:.0f}"
        if "speedup" in run:
            row["vs scan"] = f"{run['speedup']:.2f}x"
        if "speedup_vs_pre_pr" in run:
            row["vs pre-PR"] = f"{run['speedup_vs_pre_pr']:.2f}x"
        rows.append(row)
    print_table(rows, f"Hot path: scan vs incremental bucket index ({args.scale})")

    if args.out:
        write_bench_json(args.out, payload)
    if args.update:
        base = load_bench_json(args.update) if Path(args.update).exists() else {}
        write_bench_json(args.update, merge_into_baseline(payload, base))
    if args.check:
        failures = check_against_baseline(payload, load_bench_json(args.check))
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("benchmark gate: OK (within 25% of baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
