"""Synthetic query workloads: arrival processes and Zipf root popularity.

Serving benchmarks need traffic that looks like traffic. This module
generates deterministic (seeded) query streams with the two standard
load-generator shapes:

- **open loop** — requests arrive on a Poisson process at ``rate_qps``
  regardless of how the service is doing; this is what exposes queueing
  collapse and shed behavior under overload;
- **closed loop** — ``concurrency`` synchronous clients each wait for
  their answer before sending the next; this is what measures sustainable
  throughput.

Root popularity is Zipf-skewed over a bounded universe of candidate
roots (``p(k) ∝ 1/k^s``): a handful of hot roots dominate — the regime
where the distance cache earns its keep — while ``zipf_s=0`` degenerates
to uniform (the cache-hostile regime). :func:`run_workload` drives a
:class:`~repro.serve.broker.QueryBroker` with a spec and returns the
merged report.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.graph.roots import choose_roots
from repro.runtime.watchdog import SolveTimeout
from repro.serve.chaos import InjectedFault
from repro.serve.request import (
    ServiceOverload,
    ServiceUnavailable,
    SolveCorrupted,
)

#: Typed terminal outcomes a resilient/chaos run produces by design; the
#: workload counts them (via the broker's outcome accounting) instead of
#: treating them as harness failures.
_EXPECTED_ERRORS = (
    ServiceOverload,
    ServiceUnavailable,
    SolveTimeout,
    SolveCorrupted,
    InjectedFault,
)

__all__ = [
    "ChurnSpec",
    "WorkloadSpec",
    "zipf_weights",
    "root_sequence",
    "interarrival_times",
    "run_workload",
]


@dataclass(frozen=True)
class ChurnSpec:
    """A seeded edge-churn stream interleaved with an open-loop workload.

    ``updates`` batches of ``churn_fraction`` edge churn (split between
    inserts, deletes and reweights per
    :func:`~repro.dynamic.updates.random_update_batch`) are applied at
    evenly spaced points of the request stream via
    :meth:`~repro.serve.broker.QueryBroker.apply_updates`. Each batch is
    drawn from ``np.random.default_rng((seed, round))`` against the
    broker's *current* snapshot, so the whole update schedule replays
    bit-identically from the spec. ``repair_hot_roots`` hot cached roots
    are carried across each snapshot by incremental repair.
    """

    updates: int = 4
    churn_fraction: float = 0.01
    insert_fraction: float = 0.34
    delete_fraction: float = 0.33
    repair_hot_roots: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.updates < 1:
            raise ValueError("updates must be >= 1")
        if not 0 < self.churn_fraction <= 1:
            raise ValueError("churn_fraction must be in (0, 1]")
        if self.repair_hot_roots < 0:
            raise ValueError("repair_hot_roots must be >= 0")

    def batch_for(self, graph, round_index: int):
        """The deterministic update batch of one churn round."""
        from repro.dynamic.updates import random_update_batch

        rng = np.random.default_rng((self.seed, int(round_index)))
        return random_update_batch(
            graph,
            rng,
            churn_fraction=self.churn_fraction,
            insert_fraction=self.insert_fraction,
            delete_fraction=self.delete_fraction,
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """One synthetic query stream.

    ``arrival`` selects the loop shape (``"open"`` / ``"closed"``);
    ``zipf_s`` the popularity skew (0 = uniform); ``root_universe`` how
    many distinct candidate roots the stream draws from.
    """

    num_requests: int = 200
    arrival: str = "closed"
    rate_qps: float = 500.0
    concurrency: int = 4
    zipf_s: float = 1.1
    root_universe: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival not in ("open", "closed"):
            raise ValueError(
                f"unknown arrival process {self.arrival!r} "
                "(expected 'open' or 'closed')"
            )
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be > 0")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if self.root_universe < 1:
            raise ValueError("root_universe must be >= 1")

    def evolve(self, **changes) -> "WorkloadSpec":
        return replace(self, **changes)


def zipf_weights(k: int, s: float) -> np.ndarray:
    """Normalized Zipf probabilities ``p(rank) ∝ 1/rank^s`` for ranks 1..k."""
    ranks = np.arange(1, k + 1, dtype=np.float64)
    weights = ranks ** (-float(s))
    return weights / weights.sum()

def root_sequence(graph, spec: WorkloadSpec) -> np.ndarray:
    """The stream's root per request (``int64[num_requests]``).

    Candidates are non-isolated vertices (via
    :func:`~repro.graph.roots.choose_roots`); popularity rank is the
    candidate's position in that draw, so the same seed reproduces the
    same hot set.
    """
    universe = np.asarray(
        choose_roots(
            graph,
            min(spec.root_universe, max(int((graph.degrees > 0).sum()), 1)),
            seed=spec.seed,
        ),
        dtype=np.int64,
    )
    rng = np.random.default_rng(spec.seed + 1)
    p = zipf_weights(universe.size, spec.zipf_s)
    return rng.choice(universe, size=spec.num_requests, p=p)


def interarrival_times(spec: WorkloadSpec) -> np.ndarray:
    """Open-loop inter-arrival gaps in seconds (exponential, seeded)."""
    rng = np.random.default_rng(spec.seed + 2)
    return rng.exponential(1.0 / spec.rate_qps, size=spec.num_requests)


def run_workload(broker, spec: WorkloadSpec, churn: ChurnSpec | None = None) -> dict:
    """Drive ``broker`` with the spec's stream; returns a report row.

    The report is the broker's :meth:`~repro.serve.broker.QueryBroker.
    report` restricted to this run (delta-based counters), plus the
    workload's own offered/shed/duration accounting. Shed requests
    (:class:`ServiceOverload`) are counted, not retried — the workload
    measures the service's overload policy rather than hiding it.

    With a :class:`ChurnSpec` (open loop only), its update batches land
    at evenly spaced points of the arrival stream — the live-graph
    regime: requests admitted before an update keep their pinned
    snapshot; requests after it see the new one.
    """
    if churn is not None and spec.arrival != "open":
        raise ValueError(
            "churn interleaving requires the open-loop arrival process "
            "(a closed loop has no deterministic arrival axis to pin "
            "updates to)"
        )
    roots = root_sequence(broker.graph, spec)
    update_at: dict[int, int] = {}
    if churn is not None:
        # Round r fires just before request index (r+1) * N / (updates+1):
        # updates are interior points of the stream, never before the
        # first or after the last arrival.
        for r in range(churn.updates):
            idx = ((r + 1) * spec.num_requests) // (churn.updates + 1)
            update_at[min(idx, spec.num_requests - 1)] = r
    before = broker.report()
    t0 = time.perf_counter()
    if spec.arrival == "open":
        gaps = interarrival_times(spec)
        futures = []
        next_at = time.perf_counter()
        for i, root in enumerate(roots):
            if i in update_at and churn is not None:
                batch = churn.batch_for(
                    broker.versioner.current.graph, update_at[i]
                )
                broker.apply_updates(
                    batch, repair_hot_roots=churn.repair_hot_roots
                )
            next_at += gaps[i]
            pause = next_at - time.perf_counter()
            if pause > 0:
                time.sleep(pause)
            try:
                futures.append(broker.submit(int(root)))
            except ServiceOverload:
                pass  # counted by the broker; the stream does not retry
            if broker.manual:
                # Manual mode: interleave batch execution with arrivals.
                broker.process_once(block=False)
        broker.drain()
        for future in futures:
            try:
                future.result()
            except _EXPECTED_ERRORS:
                pass  # typed terminal outcome; counted by the broker
    else:
        # Closed loop: `concurrency` clients, each synchronous.
        chunks = np.array_split(roots, spec.concurrency)
        errors: list[BaseException] = []

        def client(chunk: np.ndarray) -> None:
            for root in chunk:
                try:
                    broker.query(int(root))
                except _EXPECTED_ERRORS:
                    pass  # typed terminal outcome; counted by the broker
                except BaseException as exc:  # surfaced after the join
                    errors.append(exc)

        if broker.manual and spec.concurrency == 1:
            client(roots)
        else:
            threads = [
                threading.Thread(target=client, args=(chunk,))
                for chunk in chunks
                if chunk.size
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if errors:
            raise errors[0]
    wall = time.perf_counter() - t0
    after = broker.report()
    completed = after["completed"] - before["completed"]
    report = dict(after)
    report.update(
        {
            "workload": spec.arrival,
            "zipf_s": spec.zipf_s,
            "root_universe": spec.root_universe,
            "offered": spec.num_requests,
            "completed": completed,
            "shed": after["shed"] - before["shed"],
            "wall_s": wall,
            "throughput_qps": completed / wall if wall > 0 else 0.0,
        }
    )
    if churn is not None:
        report.update(
            {
                "churn_updates": after["updates"] - before["updates"],
                "churn_fraction": churn.churn_fraction,
                "repairs": after["repairs"] - before["repairs"],
                "repair_fallbacks": (
                    after["repair_fallbacks"] - before["repair_fallbacks"]
                ),
            }
        )
    return report
