"""Batched mailbox lanes: allocation discipline and accounting equivalence.

The deliver hot path is lane-batched (DESIGN.md §9): empty (src, dst) lanes
are skipped, traffic is accounted from per-lane counts, and no per-record
src/dst rank columns are materialised. These tests pin down the three
contracts that refactor must keep: an idle superstep allocates no per-lane
arrays at all, the lane-count accounting is metrics-identical to the
per-record accounting it replaced, and delivered record content (including
arrival order) is unchanged — for both the plain and the reliable mailbox.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.partition import BlockPartition
from repro.runtime.comm import RELAX_RECORD_BYTES, Communicator
from repro.runtime.machine import MachineConfig
from repro.runtime.metrics import Metrics
from repro.spmd.mailbox import Mailbox, ReliableMailbox

P = 4


def make_comm(p: int = P) -> Communicator:
    machine = MachineConfig(num_ranks=p, threads_per_rank=2)
    return Communicator(machine, BlockPartition(8 * p, p), Metrics(
        num_ranks=p, threads_per_rank=2
    ))


def post_random(mailbox: Mailbox, seed: int, *, rounds: int = 3) -> None:
    """Post a deterministic random mix of batches from every rank."""
    rng = np.random.default_rng(seed)
    for _ in range(rounds):
        for src in range(mailbox.num_ranks):
            k = int(rng.integers(0, 6))
            dst = rng.integers(0, mailbox.num_ranks, k)
            mailbox.post(
                src, dst, rng.integers(0, 32, k), rng.integers(0, 100, k)
            )


class TestIdleSuperstep:
    def test_no_per_lane_allocations(self, monkeypatch):
        """Satellite 3: a superstep with no posted records must not build
        any per-lane arrays (historically an O(P²) np.full pattern)."""
        mailbox = Mailbox(P, make_comm())

        def boom(*a, **k):  # pragma: no cover - fails the test if hit
            raise AssertionError("idle deliver must not allocate lane arrays")

        monkeypatch.setattr(np, "full", boom)
        monkeypatch.setattr(np, "repeat", boom)
        monkeypatch.setattr(np, "concatenate", boom)
        out = mailbox.deliver(RELAX_RECORD_BYTES, phase_kind="long")
        assert len(out) == P
        for cols in out:
            assert all(c.size == 0 and c.dtype == np.int64 for c in cols)

    def test_idle_step_record_still_emitted(self):
        """The zero exchange is still recorded (metrics shape unchanged)."""
        comm = make_comm()
        mailbox = Mailbox(P, comm)
        mailbox.deliver(RELAX_RECORD_BYTES, phase_kind="long")
        assert len(comm.metrics.records) == 1
        rec = comm.metrics.records[0]
        assert rec.bytes_total == 0 and rec.msgs_max == 0

    def test_empty_posted_batches_are_skipped(self):
        """Posting zero-length batches is equivalent to posting nothing."""
        comm = make_comm()
        mailbox = Mailbox(P, comm)
        empty = np.empty(0, dtype=np.int64)
        mailbox.post(0, empty, empty, empty)
        out = mailbox.deliver(RELAX_RECORD_BYTES)
        assert all(c.size == 0 for cols in out for c in cols)
        assert comm.metrics.records[0].bytes_total == 0


class TestLaneAccountingEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7])
    def test_counts_match_per_record_expansion(self, seed):
        """exchange_by_rank_counts(lanes) == exchange_by_rank(records)."""
        rng = np.random.default_rng(seed)
        k = 25
        src = rng.integers(0, P, k)
        dst = rng.integers(0, P, k)
        cnt = rng.integers(0, 9, k)  # includes zero-count lanes
        by_counts = make_comm()
        by_counts.exchange_by_rank_counts(
            src, dst, cnt, RELAX_RECORD_BYTES, phase_kind="long"
        )
        by_records = make_comm()
        by_records.exchange_by_rank(
            np.repeat(src, cnt), np.repeat(dst, cnt),
            RELAX_RECORD_BYTES, phase_kind="long",
        )
        assert by_counts.metrics.summary() == by_records.metrics.summary()

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_deliver_accounting_matches_reliable(self, seed):
        """Plain (lane-count) and reliable (per-record) accounting agree on
        a perfect wire — they charge the same exchange two different ways."""
        plain_comm, rel_comm = make_comm(), make_comm()
        plain = Mailbox(P, plain_comm)
        reliable = ReliableMailbox(P, rel_comm)
        post_random(plain, seed)
        post_random(reliable, seed)
        out_p = plain.deliver(RELAX_RECORD_BYTES, phase_kind="long")
        out_r = reliable.deliver(RELAX_RECORD_BYTES, phase_kind="long")
        assert plain_comm.metrics.summary() == rel_comm.metrics.summary()
        for cols_p, cols_r in zip(out_p, out_r):
            for a, b in zip(cols_p, cols_r):
                np.testing.assert_array_equal(a, b)


class TestDeliveryContent:
    @pytest.mark.parametrize("seed", [0, 1, 6])
    def test_content_and_order(self, seed):
        """Each receiver gets exactly its records, in (src asc, post order)."""
        rng = np.random.default_rng(seed)
        mailbox = Mailbox(P, make_comm())
        expected: list[list[tuple[int, int]]] = [[] for _ in range(P)]
        for src in range(P):
            for _ in range(3):
                k = int(rng.integers(1, 7))
                dst = np.sort(rng.integers(0, P, k))
                v = rng.integers(0, 32, k)
                w = rng.integers(0, 100, k)
                mailbox.post(src, dst, v, w)
                for r, vv, ww in zip(dst, v, w):
                    expected[r].append((int(vv), int(ww)))
        out = mailbox.deliver(RELAX_RECORD_BYTES)
        for r in range(P):
            got = list(zip(out[r][0].tolist(), out[r][1].tolist()))
            assert got == expected[r]

    def test_single_destination_post_fast_path(self):
        """A batch addressed to one rank skips the segmentation sort but
        must deliver identically to the general path."""
        fast = Mailbox(P, make_comm())
        fast.post(0, np.array([2, 2, 2]), np.array([5, 6, 7]),
                  np.array([50, 60, 70]))
        slow = Mailbox(P, make_comm())
        slow.post(0, np.array([2, 1, 2]), np.array([5, 9, 6]),
                  np.array([50, 90, 60]))
        out_f = fast.deliver(RELAX_RECORD_BYTES)
        out_s = slow.deliver(RELAX_RECORD_BYTES)
        np.testing.assert_array_equal(out_f[2][0], [5, 6, 7])
        np.testing.assert_array_equal(out_f[2][1], [50, 60, 70])
        np.testing.assert_array_equal(out_s[2][0], [5, 6])
        np.testing.assert_array_equal(out_s[1][0], [9])

    def test_out_of_range_destination_rejected(self):
        mailbox = Mailbox(P, make_comm())
        with pytest.raises(ValueError, match="out of range"):
            mailbox.post(0, np.array([P]), np.array([1]))
        with pytest.raises(ValueError, match="out of range"):
            mailbox.post(0, np.array([-1]), np.array([1]))
