"""Unit tests for the CSR graph container."""

import numpy as np
import pytest

from hypothesis import given, settings, strategies as st

from repro.graph.builder import from_edges, from_undirected_edges
from repro.graph.csr import CSRGraph


def make_simple() -> CSRGraph:
    # 0 -> 1 (w2), 0 -> 2 (w7), 1 -> 2 (w1), directed arcs
    indptr = np.array([0, 2, 3, 3])
    adj = np.array([1, 2, 2])
    weights = np.array([2, 7, 1])
    return CSRGraph(indptr, adj, weights, undirected=False)


class TestConstruction:
    def test_shapes(self):
        g = make_simple()
        assert g.num_vertices == 3
        assert g.num_arcs == 3
        assert g.num_undirected_edges == 3  # directed: arcs == edges

    def test_undirected_edge_count_halves_arcs(self, path_graph):
        assert path_graph.num_arcs == 8
        assert path_graph.num_undirected_edges == 4

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRGraph(np.array([1, 2]), np.array([0]), np.array([1]))

    def test_indptr_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(np.array([0, 2, 1, 2]), np.array([0, 1]), np.array([1, 1]))

    def test_adj_length_checked(self):
        with pytest.raises(ValueError, match="adj"):
            CSRGraph(np.array([0, 2]), np.array([0]), np.array([1]))

    def test_weights_alignment_checked(self):
        with pytest.raises(ValueError, match="weights"):
            CSRGraph(np.array([0, 1]), np.array([0]), np.array([1, 2]))

    def test_adjacency_bounds_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph(np.array([0, 1]), np.array([5]), np.array([1]))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CSRGraph(np.array([0, 1, 1]), np.array([1]), np.array([-1]))

    def test_zero_weights_allowed(self):
        g = CSRGraph(np.array([0, 1, 1]), np.array([1]), np.array([0]))
        assert g.max_weight == 0

    def test_empty_graph(self):
        g = CSRGraph(np.array([0]), np.array([]), np.array([]))
        assert g.num_vertices == 0
        assert g.num_arcs == 0
        assert g.max_weight == 0

    def test_dtype_coercion(self):
        g = CSRGraph(
            np.array([0, 1], dtype=np.int32),
            np.array([0], dtype=np.int16),
            np.array([3], dtype=np.uint8),
        )
        assert g.indptr.dtype == np.int64
        assert g.adj.dtype == np.int64
        assert g.weights.dtype == np.int64


class TestAccessors:
    def test_degrees(self):
        g = make_simple()
        assert list(g.degrees) == [2, 1, 0]

    def test_degree_scalar(self):
        g = make_simple()
        assert g.degree(0) == 2
        assert g.degree(2) == 0

    def test_neighbors_and_weights(self):
        g = make_simple()
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbor_weights(0)) == [2, 7]

    def test_max_weight(self):
        assert make_simple().max_weight == 7

    def test_arc_tails(self):
        g = make_simple()
        assert list(g.arc_tails()) == [0, 0, 1]

    def test_to_edge_list_round_trip(self, path_graph):
        tails, heads, weights = path_graph.to_edge_list()
        g2 = from_undirected_edges(
            tails[tails < heads], heads[tails < heads], weights[tails < heads], 5
        )
        assert np.array_equal(g2.indptr, path_graph.indptr)
        assert np.array_equal(g2.adj, path_graph.adj)
        assert np.array_equal(g2.weights, path_graph.weights)


class TestSortedByWeight:
    def test_sorting_preserves_edge_multiset(self, rmat1_small):
        g = rmat1_small
        s = g.sorted_by_weight()
        assert np.array_equal(s.indptr, g.indptr)
        for u in (0, 1, 5, g.num_vertices - 1):
            orig = sorted(
                zip(g.neighbors(u).tolist(), g.neighbor_weights(u).tolist())
            )
            new = sorted(
                zip(s.neighbors(u).tolist(), s.neighbor_weights(u).tolist())
            )
            assert orig == new

    def test_sorted_is_weight_monotone_per_vertex(self, rmat1_small):
        s = rmat1_small.sorted_by_weight()
        for u in range(0, s.num_vertices, 37):
            w = s.neighbor_weights(u)
            assert np.all(np.diff(w) >= 0)

    def test_sorted_idempotent(self, path_graph):
        s = path_graph.sorted_by_weight()
        assert s.sorted_by_weight() is s

    def test_short_edge_offsets_requires_sorted(self, path_graph):
        with pytest.raises(ValueError, match="sorted"):
            path_graph.short_edge_offsets(5)

    def test_short_edge_offsets_counts(self, path_graph):
        s = path_graph.sorted_by_weight()
        off = s.short_edge_offsets(5)
        # Vertex 0 has one incident edge of weight 5 -> not short for delta=5.
        assert off[0] == 0
        # Vertex 2 has edges w3 and w7; only w3 < 5.
        assert off[2] == 1
        # offsets never exceed degree
        assert np.all(off <= s.degrees)

    def test_short_edge_offsets_extremes(self, rmat1_small):
        s = rmat1_small.sorted_by_weight()
        assert np.array_equal(s.short_edge_offsets(1), np.zeros(s.num_vertices))
        assert np.array_equal(s.short_edge_offsets(10**9), s.degrees)


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=32))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.integers(0, 50),
            ),
            max_size=96,
        )
    )
    tails = np.array([e[0] for e in edges], dtype=np.int64)
    heads = np.array([e[1] for e in edges], dtype=np.int64)
    weights = np.array([e[2] for e in edges], dtype=np.int64)
    return n, tails, heads, weights


def assert_same_csr(a, b) -> None:
    assert a.undirected == b.undirected
    np.testing.assert_array_equal(a.indptr, b.indptr)
    np.testing.assert_array_equal(a.adj, b.adj)
    np.testing.assert_array_equal(a.weights, b.weights)


class TestEdgeListRoundTripProperty:
    """Hypothesis: ``to_edge_list`` is lossless against the builder."""

    @settings(deadline=None, max_examples=60)
    @given(edge_lists())
    def test_undirected_round_trip(self, spec):
        n, tails, heads, weights = spec
        g = from_undirected_edges(tails, heads, weights, n)
        t, h, w = g.to_edge_list()
        # Arcs are already symmetric and deduplicated, so a plain
        # rebuild must reproduce the CSR arrays bit for bit.
        rebuilt = from_edges(t, h, w, n, undirected=True)
        assert_same_csr(g, rebuilt)

    @settings(deadline=None, max_examples=60)
    @given(edge_lists())
    def test_directed_round_trip(self, spec):
        n, tails, heads, weights = spec
        g = from_edges(tails, heads, weights, n)
        rebuilt = from_edges(*g.to_edge_list(), n)
        assert_same_csr(g, rebuilt)

    @settings(deadline=None, max_examples=60)
    @given(edge_lists())
    def test_reverse_is_an_involution(self, spec):
        n, tails, heads, weights = spec
        g = from_edges(tails, heads, weights, n)
        assert_same_csr(g, g.reverse().reverse())

    @settings(deadline=None, max_examples=60)
    @given(edge_lists())
    def test_reverse_fixes_undirected_graphs(self, spec):
        n, tails, heads, weights = spec
        g = from_undirected_edges(tails, heads, weights, n)
        # A symmetrized graph is its own reverse, arrays included.
        assert_same_csr(g, g.reverse())


class TestReverse:
    def test_reverse_directed(self):
        g = make_simple()
        r = g.reverse()
        assert r.num_arcs == g.num_arcs
        assert list(r.neighbors(2)) == [0, 1]
        assert list(r.neighbors(0)) == []
        # weight follows the arc
        i = list(r.neighbors(2)).index(0)
        assert r.neighbor_weights(2)[i] == 7

    def test_reverse_undirected_is_same_graph(self, path_graph):
        r = path_graph.reverse()
        for u in range(path_graph.num_vertices):
            assert sorted(r.neighbors(u).tolist()) == sorted(
                path_graph.neighbors(u).tolist()
            )
