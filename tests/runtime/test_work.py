"""Unit tests for per-thread work attribution."""

import numpy as np
import pytest

from repro.graph.partition import BlockPartition
from repro.runtime.machine import MachineConfig
from repro.runtime.work import thread_index, thread_work, thread_work_balanced


def setup(n=16, ranks=2, threads=2):
    return BlockPartition(n, ranks), MachineConfig(num_ranks=ranks, threads_per_rank=threads)


class TestThreadIndex:
    def test_rank_offsets(self):
        part, machine = setup()
        idx = thread_index(np.arange(16), part, machine)
        # rank 0 owns 0..7 -> threads 0..1; rank 1 owns 8..15 -> threads 2..3
        assert set(idx[:8].tolist()) == {0, 1}
        assert set(idx[8:].tolist()) == {2, 3}

    def test_block_distribution_within_rank(self):
        part, machine = setup()
        idx = thread_index(np.arange(8), part, machine)
        assert list(idx) == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_uneven_blocks(self):
        part = BlockPartition(5, 2)  # rank0: 0..2, rank1: 3..4
        machine = MachineConfig(num_ranks=2, threads_per_rank=2)
        idx = thread_index(np.arange(5), part, machine)
        # rank0 has 3 vertices over 2 threads: 2 + 1
        assert list(idx[:3]) == [0, 0, 1]
        assert list(idx[3:]) == [2, 3]

    def test_more_threads_than_vertices(self):
        part = BlockPartition(2, 1)
        machine = MachineConfig(num_ranks=1, threads_per_rank=8)
        idx = thread_index(np.arange(2), part, machine)
        assert idx.max() < 8
        assert len(set(idx.tolist())) == 2


class TestThreadWork:
    def test_unit_counting(self):
        part, machine = setup()
        tw = thread_work(np.array([0, 1, 8]), None, part, machine)
        assert tw.sum() == 3
        assert tw[0] == 2  # vertices 0,1 on thread 0
        assert tw[2] == 1

    def test_weighted_units(self):
        part, machine = setup()
        tw = thread_work(np.array([0, 8]), np.array([5.0, 7.0]), part, machine)
        assert tw[0] == 5.0 and tw[2] == 7.0

    def test_empty(self):
        part, machine = setup()
        tw = thread_work(np.array([], dtype=np.int64), None, part, machine)
        assert tw.shape == (4,)
        assert tw.sum() == 0


class TestThreadWorkBalanced:
    def test_light_vertices_unchanged(self):
        part, machine = setup()
        a = thread_work(np.array([0, 8]), np.array([2.0, 3.0]), part, machine)
        b = thread_work_balanced(
            np.array([0, 8]), np.array([2.0, 3.0]), part, machine, heavy_threshold=10
        )
        assert np.array_equal(a, b)

    def test_heavy_vertex_spread_over_rank_threads(self):
        part, machine = setup()
        tw = thread_work_balanced(
            np.array([0]), np.array([100.0]), part, machine, heavy_threshold=10
        )
        # spread evenly over rank 0's two threads, none on rank 1
        assert tw[0] == tw[1] == 50.0
        assert tw[2] == tw[3] == 0.0

    def test_total_work_preserved(self):
        part, machine = setup()
        rng = np.random.default_rng(1)
        v = rng.integers(0, 16, 40)
        u = rng.uniform(0, 50, 40)
        a = thread_work(v, u, part, machine)
        b = thread_work_balanced(v, u, part, machine, heavy_threshold=20)
        assert a.sum() == pytest.approx(b.sum())

    def test_balancing_reduces_max(self):
        part, machine = setup()
        v = np.array([0, 1, 2])
        u = np.array([100.0, 1.0, 1.0])
        a = thread_work(v, u, part, machine)
        b = thread_work_balanced(v, u, part, machine, heavy_threshold=10)
        assert b.max() < a.max()

    def test_infinite_threshold_equals_plain(self):
        part, machine = setup()
        v = np.array([0, 5, 9])
        u = np.array([1000.0, 2.0, 3.0])
        a = thread_work(v, u, part, machine)
        b = thread_work_balanced(v, u, part, machine, heavy_threshold=float("inf"))
        assert np.array_equal(a, b)
