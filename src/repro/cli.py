"""Command-line interface.

Subcommands cover the common workflows::

    python -m repro solve        --scale 13 --algorithm opt --delta 25
    python -m repro compare      --scale 12 --delta 25
    python -m repro graph500     --scale 12 --roots 16
    python -m repro sweep        --scale 12 --deltas 1,10,25,40,100
    python -m repro serve-bench  --scale 12 --requests 200 --zipf 1.1
    python -m repro trace-report run.trace.jsonl

All graph and machine knobs are flags; output is the same plain-text
tables the benchmark harness prints.  ``solve --trace PATH`` captures a
structured trace of the run (``--trace-format perfetto`` writes a
Chrome/Perfetto ``trace_events`` file loadable in ui.perfetto.dev);
``trace-report`` summarises a captured trace offline.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.phase_stats import algorithm_comparison
from repro.analysis.sweep import delta_sweep
from repro.apps.graph500 import run_graph500
from repro.core.config import PRESETS
from repro.core.solver import solve_sssp
from repro.graph.rmat import RMAT1, RMAT2, rmat_graph
from repro.graph.roots import choose_root
from repro.runtime.machine import MachineConfig
from repro.util.tables import format_table

__all__ = ["main", "build_parser"]


def _add_graph_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", type=int, default=12,
                   help="log2 of the vertex count (default 12)")
    p.add_argument("--edge-factor", type=int, default=16,
                   help="undirected edges per vertex (default 16)")
    p.add_argument("--family", choices=["rmat1", "rmat2"], default="rmat1",
                   help="R-MAT parameter set (default rmat1)")
    p.add_argument("--seed", type=int, default=0, help="generator seed")
    p.add_argument("--max-weight", type=int, default=255,
                   help="maximum edge weight (default 255)")


def _add_machine_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--ranks", type=int, default=8,
                   help="simulated nodes (default 8)")
    p.add_argument("--threads", type=int, default=16,
                   help="threads per node (default 16)")


def _make_graph(args: argparse.Namespace):
    params = RMAT1 if args.family == "rmat1" else RMAT2
    return rmat_graph(args.scale, args.edge_factor, params,
                      seed=args.seed, max_weight=args.max_weight)


def _machine(args: argparse.Namespace) -> MachineConfig:
    return MachineConfig(num_ranks=args.ranks, threads_per_rank=args.threads)


def _add_serve_args(p: argparse.ArgumentParser) -> None:
    """Workload + broker knobs shared by ``serve-bench`` and ``serve-top``."""
    _add_graph_args(p)
    _add_machine_args(p)
    p.add_argument("--algorithm", choices=sorted(PRESETS), default="opt")
    p.add_argument("--delta", type=int, default=25)
    p.add_argument("--requests", type=int, default=200,
                   help="queries in the stream (default 200)")
    p.add_argument("--arrival", choices=["open", "closed"],
                   default="closed",
                   help="open loop (Poisson arrivals at --rate) or "
                        "closed loop (--concurrency sync clients)")
    p.add_argument("--rate", type=float, default=500.0,
                   help="open-loop arrival rate in queries/s")
    p.add_argument("--concurrency", type=int, default=4,
                   help="closed-loop client count (default 4)")
    p.add_argument("--zipf", type=float, default=1.1,
                   help="root popularity skew s in p(k) ~ 1/k^s "
                        "(0 = uniform; default 1.1)")
    p.add_argument("--root-universe", type=int, default=64,
                   help="distinct candidate roots (default 64)")
    p.add_argument("--batch-size", type=int, default=16,
                   help="micro-batcher size trigger (default 16)")
    p.add_argument("--flush-ms", type=float, default=2.0,
                   help="micro-batcher latency trigger in ms")
    p.add_argument("--capacity", type=int, default=256,
                   help="request queue bound; beyond it requests are "
                        "shed with ServiceOverload")
    p.add_argument("--workers", type=int, default=1,
                   help="batch worker threads (default 1)")
    p.add_argument("--cache-mb", type=float, default=64.0,
                   help="distance-cache byte budget in MiB (0 disables)")
    p.add_argument("--deadline", type=int, metavar="N", default=None,
                   help="per-request superstep budget (watchdog)")
    p.add_argument("--chaos", metavar="SPEC", default=None,
                   help="inject seeded faults, e.g. "
                        "'error=0.2,corrupt=0.1,clean-after=2,seed=3' "
                        "(see ChaosPlan.from_spec)")
    p.add_argument("--retries", type=int, metavar="N", default=None,
                   help="retry failed solves up to N attempts total")
    p.add_argument("--retry-backoff-ms", type=float, default=1.0,
                   help="base retry backoff in ms (doubles per "
                        "attempt, capped; default 1)")
    p.add_argument("--hedge-ms", type=float, default=None,
                   help="launch a hedged attempt when the primary "
                        "straggles past this many ms")
    p.add_argument("--breaker-threshold", type=int, metavar="N",
                   default=None,
                   help="open the circuit breaker after N consecutive "
                        "failures of one class")
    p.add_argument("--breaker-recovery-ms", type=float, default=250.0,
                   help="open→half-open recovery window in ms "
                        "(default 250)")
    p.add_argument("--negative-ttl-ms", type=float, default=0.0,
                   help="fast-fail repeat queries for a timed-out "
                        "root for this long (default off)")
    p.add_argument("--verify-structural", action="store_true",
                   help="structurally validate every solve before "
                        "serving it (detects corruption)")
    p.add_argument("--update-stream", type=int, metavar="N", default=0,
                   help="live-graph mode: interleave N seeded edge-churn "
                        "update batches with the (open-loop) request "
                        "stream")
    p.add_argument("--churn", type=float, default=0.01,
                   help="edge fraction churned per update batch "
                        "(default 0.01)")
    p.add_argument("--repair-hot-roots", type=int, metavar="K", default=4,
                   help="hot cached roots carried across each snapshot "
                        "by incremental repair (default 4)")


def _add_burn_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--burn-objective", type=float, default=None,
                   help="arm the multi-window SLO burn-rate monitor with "
                        "this availability objective (e.g. 0.99); alerts "
                        "are printed with the report")
    p.add_argument("--burn-latency-slo-ms", type=float, default=None,
                   help="also count good-but-slower-than-this requests "
                        "as error-budget spend")
    p.add_argument("--burn-fast-s", type=float, default=60.0,
                   help="fast (page) burn window in seconds (default 60)")
    p.add_argument("--burn-slow-s", type=float, default=300.0,
                   help="slow (ticket) burn window in seconds (default 300)")
    p.add_argument("--burn-min-samples", type=int, default=10,
                   help="suppress burn verdicts from windows with fewer "
                        "samples (default 10)")


def _burn_monitor(args: argparse.Namespace, broker, *, default_objective=None):
    """Build the burn-rate monitor over the broker's latency window, or
    None when not armed (no --burn-objective and no default)."""
    objective = args.burn_objective
    if objective is None:
        objective = default_objective
    if objective is None:
        return None
    from repro.obs.burnrate import BurnRateConfig, BurnRateMonitor

    config = BurnRateConfig(
        objective=objective,
        latency_slo_s=(
            None if args.burn_latency_slo_ms is None
            else args.burn_latency_slo_ms / 1e3
        ),
        fast_window_s=args.burn_fast_s,
        slow_window_s=args.burn_slow_s,
        min_samples=args.burn_min_samples,
    )
    return BurnRateMonitor(broker.latency, config)


def _build_serve_broker(args: argparse.Namespace, *, events=None):
    """Construct the (broker, workload spec) pair from serve CLI args."""
    from repro.runtime.watchdog import DeadlineConfig
    from repro.serve import QueryBroker, WorkloadSpec

    graph = _make_graph(args)
    deadline = None
    if args.deadline is not None:
        deadline = DeadlineConfig(max_supersteps=args.deadline)
    resilience: dict = {}
    if args.chaos is not None:
        from repro.serve.chaos import ChaosPlan

        resilience["chaos"] = ChaosPlan.from_spec(args.chaos)
    if args.retries is not None or args.hedge_ms is not None:
        from repro.serve.retry import RetryPolicy

        resilience["retry"] = RetryPolicy(
            max_attempts=args.retries if args.retries is not None else 3,
            backoff_base_s=args.retry_backoff_ms / 1e3,
            hedge_after_s=(
                None if args.hedge_ms is None else args.hedge_ms / 1e3
            ),
        )
    if args.breaker_threshold is not None:
        from repro.serve.breaker import BreakerConfig

        resilience["breaker"] = BreakerConfig(
            failure_threshold=args.breaker_threshold,
            recovery_time_s=args.breaker_recovery_ms / 1e3,
        )
    if args.verify_structural:
        resilience["verify"] = "structural"
    if args.negative_ttl_ms:
        resilience["negative_ttl_s"] = args.negative_ttl_ms / 1e3
    spec = WorkloadSpec(
        num_requests=args.requests,
        arrival=args.arrival,
        rate_qps=args.rate,
        concurrency=args.concurrency,
        zipf_s=args.zipf,
        root_universe=args.root_universe,
        seed=args.seed,
    )
    broker = QueryBroker(
        graph,
        algorithm=args.algorithm,
        delta=args.delta,
        machine=_machine(args),
        capacity=args.capacity,
        max_batch_size=args.batch_size,
        flush_interval_s=args.flush_ms / 1e3,
        num_workers=args.workers,
        cache_bytes=int(args.cache_mb * (1 << 20)),
        default_deadline=deadline,
        events=events,
        **resilience,
    )
    return graph, broker, spec


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all four subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalable SSSP reproduction (IPDPS 2014) on a simulated "
                    "massively parallel machine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="run one SSSP solve")
    _add_graph_args(p_solve)
    _add_machine_args(p_solve)
    p_solve.add_argument("--algorithm", choices=sorted(PRESETS), default="opt",
                         help="algorithm preset: the paper's Δ-stepping "
                              "family (dijkstra/bellman-ford/delta/prune/"
                              "opt/lb-opt*), or a windowed stepping strategy "
                              "— 'radius' (per-vertex window widths, arXiv "
                              "1602.03881) / 'rho' (settle the ρ closest "
                              "unsettled vertices per step, arXiv "
                              "2105.06145); --delta is ignored for those")
    p_solve.add_argument("--delta", type=int, default=25,
                         help="bucket width Δ for the Δ-stepping presets")
    p_solve.add_argument("--root", type=int, default=None,
                         help="source vertex (default: sampled non-isolated)")
    p_solve.add_argument("--validate", action="store_true",
                         help="cross-check against sequential Dijkstra")
    p_solve.add_argument("--validate-structural", action="store_true",
                         help="run the O(m+n) Graph 500-style structural "
                              "validator instead of a reference solve")
    p_solve.add_argument("--faults", metavar="SPEC", default=None,
                         help="inject faults and run the self-healing SPMD "
                              "engine (Δ-stepping, or Bellman-Ford with "
                              "--algorithm bellman-ford); SPEC is e.g. "
                              "'loss=0.05,dup=0.02,seed=3,crash=1@4'")
    p_solve.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                         help="write durable epoch checkpoints to DIR "
                              "(atomic, digest-protected); a killed solve "
                              "can be continued with --resume")
    p_solve.add_argument("--checkpoint-interval", type=int, default=1,
                         help="epochs between checkpoints (default 1)")
    p_solve.add_argument("--resume", action="store_true",
                         help="resume from the newest valid checkpoint in "
                              "--checkpoint-dir instead of starting over")
    p_solve.add_argument("--deadline", type=int, metavar="N", default=None,
                         help="superstep budget; the watchdog stops the "
                              "solve when it is exhausted or stalled")
    p_solve.add_argument("--stall-patience", type=int, metavar="K",
                         default=None,
                         help="trip the watchdog after K consecutive "
                              "supersteps without progress")
    p_solve.add_argument("--deadline-policy", choices=["raise", "degrade"],
                         default="raise",
                         help="on deadline: 'raise' a structured timeout "
                              "with a resumable checkpoint, or 'degrade' to "
                              "a Bellman-Ford finish (default raise)")
    p_solve.add_argument("--paranoid", action="store_true",
                         help="enable per-superstep runtime invariant "
                              "guards (bucket monotonicity, settled "
                              "finality, IOS edge conservation)")
    p_solve.add_argument("--json", metavar="PATH", default=None,
                         help="also write a JSON report to PATH ('-' = stdout)")
    p_solve.add_argument("--trace", metavar="PATH", default=None,
                         help="capture a structured trace of the solve to "
                              "PATH (see --trace-format)")
    p_solve.add_argument("--trace-format", choices=["jsonl", "perfetto"],
                         default="jsonl",
                         help="trace file format: 'jsonl' event log (read "
                              "back with 'repro trace-report') or 'perfetto' "
                              "Chrome trace_events JSON for ui.perfetto.dev "
                              "(default jsonl)")
    p_solve.add_argument("--metrics-out", metavar="PATH", default=None,
                         help="write a Prometheus text-format metrics "
                              "snapshot of the solve to PATH")
    p_solve.add_argument("--progress", action="store_true",
                         help="print live per-epoch progress to stderr "
                              "(enables the tracer)")

    p_cmp = sub.add_parser("compare", help="compare the algorithm family")
    _add_graph_args(p_cmp)
    _add_machine_args(p_cmp)
    p_cmp.add_argument("--delta", type=int, default=25)

    p_g500 = sub.add_parser("graph500", help="run the Graph 500 SSSP protocol")
    _add_graph_args(p_g500)
    _add_machine_args(p_g500)
    p_g500.add_argument("--algorithm", choices=sorted(PRESETS), default="opt")
    p_g500.add_argument("--delta", type=int, default=25)
    p_g500.add_argument("--roots", type=int, default=16,
                        help="number of search keys (official: 64)")

    p_sweep = sub.add_parser("sweep", help="sweep the bucket width Δ")
    _add_graph_args(p_sweep)
    _add_machine_args(p_sweep)
    p_sweep.add_argument("--algorithm", choices=sorted(PRESETS), default="delta")
    p_sweep.add_argument("--deltas", default="1,10,25,40,100",
                         help="comma-separated Δ values")

    p_bfs = sub.add_parser("bfs", help="run direction-optimizing BFS")
    _add_graph_args(p_bfs)
    _add_machine_args(p_bfs)
    p_bfs.add_argument("--direction", choices=["auto", "top-down", "bottom-up"],
                       default="auto")
    p_bfs.add_argument("--root", type=int, default=None)

    p_serve = sub.add_parser(
        "serve-bench",
        help="run a synthetic query workload against the serving layer",
    )
    _add_serve_args(p_serve)
    p_serve.add_argument("--slo-p99-ms", type=float, default=None,
                         help="fail (exit 1) when p99 latency exceeds this")
    p_serve.add_argument("--slo-min-hit-rate", type=float, default=None,
                         help="fail (exit 1) when the cache hit rate is lower")
    p_serve.add_argument("--metrics-out", metavar="PATH", default=None,
                         help="write the service metrics registry in "
                              "Prometheus text format to PATH")
    p_serve.add_argument("--json", metavar="PATH", default=None,
                         help="also write the report as JSON to PATH "
                              "('-' = stdout)")
    p_serve.add_argument("--events", metavar="PATH", default=None,
                         help="arm request-scoped observability and write "
                              "one wide event per request as JSONL to PATH "
                              "(canonical replay form via "
                              "'python -m repro.serve.events PATH "
                              "--canonical')")
    _add_burn_args(p_serve)

    p_top = sub.add_parser(
        "serve-top",
        help="live terminal dashboard over a serving workload (top-style)",
    )
    _add_serve_args(p_top)
    _add_burn_args(p_top)
    p_top.add_argument("--refresh-ms", type=float, default=500.0,
                       help="dashboard refresh interval in ms (default 500)")
    p_top.add_argument("--frames", type=int, default=None,
                       help="stop after N frames (default: until the "
                            "workload completes)")
    p_top.add_argument("--no-clear", action="store_true",
                       help="append frames instead of clearing the screen "
                            "(logs, CI, non-TTY output)")
    p_top.add_argument("--events", metavar="PATH", default=None,
                       help="also write the wide-event stream to PATH")

    p_trace = sub.add_parser(
        "trace-report",
        help="summarise a trace captured with 'solve --trace'",
    )
    p_trace.add_argument("trace", metavar="TRACE",
                         help="trace file (JSONL or Perfetto JSON)")
    p_trace.add_argument("--top", type=int, default=15,
                         help="spans to show in the slowest-spans table "
                              "(default 15)")
    p_trace.add_argument("--validate", action="store_true",
                         help="schema-check the trace file and exit non-zero "
                              "on problems (prints them) — used by CI")
    return parser


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.runtime.watchdog import DeadlineConfig, SolveTimeout

    graph = _make_graph(args)
    root = args.root if args.root is not None else choose_root(graph, seed=args.seed)
    validate: bool | str = "structural" if args.validate_structural else args.validate
    deadline = None
    if args.deadline is not None or args.stall_patience is not None:
        deadline = DeadlineConfig(
            max_supersteps=args.deadline,
            stall_patience=args.stall_patience,
            policy=args.deadline_policy,
        )
    trace_cfg = None
    if args.trace is not None or args.metrics_out is not None or args.progress:
        from repro.obs.tracer import TraceConfig

        trace_cfg = TraceConfig(
            path=args.trace,
            format=args.trace_format,
            metrics_path=args.metrics_out,
            progress=args.progress,
        )
    defense_kwargs = dict(
        paranoid=args.paranoid,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        resume=args.resume,
        deadline=deadline,
        trace=trace_cfg,
    )
    try:
        if args.faults is not None:
            from repro.spmd.faults import FaultPlan, solve_with_faults

            plan = FaultPlan.from_spec(args.faults)
            algo = "bellman-ford" if args.algorithm == "bellman-ford" else "delta"
            res = solve_with_faults(graph, root, plan, algorithm=algo,
                                    delta=args.delta, machine=_machine(args),
                                    validate=validate, **defense_kwargs)
        else:
            res = solve_sssp(graph, root, algorithm=args.algorithm,
                             delta=args.delta, machine=_machine(args),
                             validate=validate, **defense_kwargs)
    except SolveTimeout as exc:
        print(f"solve timed out: {exc}", file=sys.stderr)
        return 3
    print(f"graph: {graph}")
    print(f"root:  {root}")
    print(format_table([res.summary()], "result"))
    print(format_table([res.cost.as_row()], "simulated time breakdown"))
    if args.faults is not None:
        rec = res.metrics.recovery
        row = {
            **rec.summary(),
            "recovery_bytes": res.metrics.recovery_bytes,
            "checkpoints": rec.checkpoints_taken,
            "faults": sum(rec.faults_injected.values()),
        }
        print(format_table([row], "recovery overhead"))
    if res.trace is not None:
        from repro.obs.report import drift_table

        if res.trace.drift_rows:
            print(drift_table(res.trace.drift_rows))
        for kind, path in sorted(res.trace.artifacts.items()):
            print(f"{kind} written to {path}")
    if args.json is not None:
        from repro.util.reports import dump_json, sssp_report

        text = dump_json(sssp_report(res),
                         None if args.json == "-" else args.json)
        if args.json == "-":
            print(text)
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve import SloPolicy, run_workload

    graph, broker, spec = _build_serve_broker(args, events=args.events)
    monitor = _burn_monitor(args, broker)
    churn = None
    if args.update_stream:
        from repro.serve.workload import ChurnSpec

        churn = ChurnSpec(
            updates=args.update_stream,
            churn_fraction=args.churn,
            repair_hot_roots=args.repair_hot_roots,
            seed=args.seed,
        )
    try:
        report = run_workload(broker, spec, churn=churn)
    finally:
        broker.shutdown(drain=True)
    print(f"graph: {graph}")
    traffic = {
        k: report[k]
        for k in ("workload", "offered", "completed", "shed", "batches",
                  "solves", "mean_batch_size", "throughput_qps")
    }
    latency = {
        k: v for k, v in report.items()
        if k.endswith("_s") and k not in ("wall_s", "zipf_s")
    }
    print(format_table([traffic], "traffic"))
    print(format_table([{k: f"{v * 1e3:.3f}" for k, v in latency.items()}],
                       "latency (ms)"))
    print(format_table([broker.cache.stats.as_row()], "distance cache"))
    resilient = any(
        (args.chaos, args.retries, args.hedge_ms, args.breaker_threshold,
         args.verify_structural, args.negative_ttl_ms)
    )
    if resilient:
        row = {
            k: report[k]
            for k in ("retries", "hedges", "retried_ok",
                      "cache_quarantined", "negative_hits")
        }
        row.update({
            k: v for k, v in sorted(report.items())
            if k.startswith("outcome_")
        })
        print(format_table([row], "resilience"))
    if churn is not None:
        live = {
            k: report[k]
            for k in ("snapshot_id", "churn_updates", "churn_fraction",
                      "repairs", "repair_fallbacks", "snapshots_resident")
        }
        print(format_table([live], "live graph"))
    if monitor is not None:
        burn = monitor.summary()
        row = {
            k: (f"{v:.2f}" if isinstance(v, float) else v)
            for k, v in burn.items()
            if k not in ("alerts", "paging")
        }
        print(format_table([row], "SLO burn rate"))
        for alert in burn["alerts"]:
            print(f"BURN ALERT: {alert}", file=sys.stderr)
    if args.events is not None:
        print(f"{report.get('wide_events', 0)} wide events written "
              f"to {args.events}")
    if args.metrics_out is not None:
        with open(args.metrics_out, "w") as fh:
            fh.write(broker.registry.prometheus_text())
        print(f"metrics written to {args.metrics_out}")
    if args.json is not None:
        from repro.util.reports import dump_json

        text = dump_json(report, None if args.json == "-" else args.json)
        if args.json == "-":
            print(text)
    policy = SloPolicy(
        p99_s=None if args.slo_p99_ms is None else args.slo_p99_ms / 1e3,
        min_hit_rate=args.slo_min_hit_rate,
    )
    violations = policy.check(report)
    for violation in violations:
        print(f"SLO VIOLATION: {violation}", file=sys.stderr)
    return 1 if violations else 0


def _cmd_serve_top(args: argparse.Namespace) -> int:
    import threading

    from repro.serve import dashboard, run_workload

    if args.workers < 1:
        print("serve-top needs at least one worker thread", file=sys.stderr)
        return 2
    # Events are always armed: the dashboard's recent-requests pane
    # reads the wide-event stream (kept bounded in memory).
    from repro.serve.events import WideEventLog

    log = WideEventLog(args.events, capacity=4096)
    graph, broker, spec = _build_serve_broker(args, events=log)
    # The dashboard always shows burn rate; default the objective.
    monitor = _burn_monitor(args, broker, default_objective=0.99)
    workload_done = threading.Event()

    def drive() -> None:
        try:
            run_workload(broker, spec)
        finally:
            workload_done.set()

    driver = threading.Thread(target=drive, name="serve-top-load", daemon=True)
    print(f"graph: {graph}")
    driver.start()
    try:
        dashboard.run(
            broker,
            monitor=monitor,
            refresh_s=args.refresh_ms / 1e3,
            frames=args.frames,
            clear=not args.no_clear,
            should_stop=workload_done.is_set,
        )
        driver.join()
    finally:
        broker.shutdown(drain=True)
    # One final frame with the drained end-state.
    sys.stdout.write(dashboard.render(dashboard.snapshot(broker, monitor=monitor)))
    if args.events is not None:
        print(f"wide events written to {args.events}")
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs.export import validate_trace_file
    from repro.obs.report import load_trace, render_report

    if args.validate:
        fmt, problems = validate_trace_file(args.trace)
        if problems:
            print(f"{args.trace}: INVALID ({fmt})")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"{args.trace}: OK ({fmt})")
        return 0
    print(render_report(load_trace(args.trace), top=args.top))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = _make_graph(args)
    root = choose_root(graph, seed=args.seed)
    d = args.delta
    rows = algorithm_comparison(
        graph, root,
        [
            ("Dijkstra", "delta", 1),
            (f"Del-{d}", "delta", d),
            (f"Prune-{d}", "prune", d),
            (f"OPT-{d}", "opt", d),
            (f"LB-OPT-{d}", "lb-opt", d),
            ("Bellman-Ford", "bellman-ford", d),
        ],
        machine=_machine(args),
    )
    print(format_table(rows, f"algorithm family on {graph}"))
    return 0


def _cmd_graph500(args: argparse.Namespace) -> int:
    params = RMAT1 if args.family == "rmat1" else RMAT2
    res = run_graph500(
        args.scale, edge_factor=args.edge_factor, params=params,
        num_roots=args.roots, algorithm=args.algorithm, delta=args.delta,
        machine=_machine(args), seed=args.seed,
    )
    print(format_table(res.per_root, "per-root results"))
    print(format_table([res.summary()], "Graph 500 summary (harmonic-mean GTEPS)"))
    return 0 if res.all_valid else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    graph = _make_graph(args)
    root = choose_root(graph, seed=args.seed)
    deltas = [int(x) for x in args.deltas.split(",") if x]
    rows = delta_sweep(graph, root, deltas, algorithm=args.algorithm,
                       num_ranks=args.ranks, threads_per_rank=args.threads)
    print(format_table(rows, f"Δ sweep of {args.algorithm} on {graph}"))
    return 0


def _cmd_bfs(args: argparse.Namespace) -> int:
    from repro.bfs import run_bfs

    graph = _make_graph(args)
    root = args.root if args.root is not None else choose_root(graph, seed=args.seed)
    res = run_bfs(graph, root, machine=_machine(args), direction=args.direction)
    print(f"graph: {graph}")
    print(f"root:  {root}; reached {res.num_reached} vertices in "
          f"{res.num_levels} levels")
    print("direction per level:", " ".join(res.direction_per_level))
    row = {
        "gteps": res.gteps,
        "edges_examined": res.metrics.total_relaxations,
        "bytes": res.metrics.total_bytes,
        "time_s": res.cost.total_time,
    }
    print(format_table([row], "BFS result"))
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "compare": _cmd_compare,
    "graph500": _cmd_graph500,
    "sweep": _cmd_sweep,
    "bfs": _cmd_bfs,
    "serve-bench": _cmd_serve_bench,
    "serve-top": _cmd_serve_top,
    "trace-report": _cmd_trace_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
