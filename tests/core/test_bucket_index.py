"""Incremental bucket index: exact equivalence with the from-scratch scans.

The contract under test (DESIGN.md §9): after any legal update sequence,
:meth:`BucketIndex.members` is byte-identical to
:func:`~repro.core.buckets.bucket_members` and :meth:`BucketIndex.min_bucket`
to :func:`~repro.core.buckets.next_bucket` — for every bucket, not just the
minimum. The property tests drive randomized relax/settle histories (the
hypothesis suite shrinks counterexamples); the engine-level tests assert the
paranoid guard exercised that same equivalence every epoch of real solves,
including under fault plans and resume-from-checkpoint.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bucket_index import BucketIndex
from repro.core.buckets import (
    NO_BUCKET,
    bucket_index,
    bucket_members,
    next_bucket,
)
from repro.core.config import preset
from repro.core.distances import INF
from repro.graph.rmat import RMAT1, rmat_graph
from repro.runtime.guards import GuardViolation, InvariantGuards
from repro.runtime.machine import MachineConfig
from repro.spmd.engine import spmd_delta_stepping
from repro.spmd.faults import FaultPlan, RankCrash


def assert_matches_scans(index: BucketIndex, d: np.ndarray, settled: np.ndarray):
    """Full equivalence: bucket_of, min_bucket and every bucket's members."""
    delta = index.delta
    expected_of = np.where((d < INF) & ~settled, d // delta, np.int64(NO_BUCKET))
    np.testing.assert_array_equal(index.bucket_of_view(), expected_of)
    assert index.min_bucket() == next_bucket(d, settled, delta)
    for k in np.unique(expected_of[expected_of != NO_BUCKET]).tolist():
        got = index.members(k)
        want = bucket_members(d, settled, k, delta)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, want)
    # A bucket nothing lives in must read empty too.
    empty_k = int(expected_of.max(initial=0)) + 3
    assert index.members(empty_k).size == 0


class TestBucketIndexUnit:
    def test_initial_state_matches_scan(self):
        d = np.array([0, 7, 25, 60, INF, 26], dtype=np.int64)
        settled = np.zeros(6, dtype=bool)
        idx = BucketIndex(25, d, settled)
        assert_matches_scans(idx, d, settled)
        assert idx.min_bucket() == 0

    def test_settled_vertices_hold_no_bucket(self):
        d = np.array([0, 7, 25, 60], dtype=np.int64)
        settled = np.array([True, False, False, False])
        idx = BucketIndex(25, d, settled)
        assert idx.bucket_of_view()[0] == NO_BUCKET
        assert_matches_scans(idx, d, settled)

    def test_delta_must_be_positive(self):
        with pytest.raises(ValueError):
            BucketIndex(0, np.array([0], dtype=np.int64))

    def test_on_relaxed_moves_between_buckets(self):
        d = np.array([0, 80, 80, INF], dtype=np.int64)
        settled = np.zeros(4, dtype=bool)
        idx = BucketIndex(25, d, settled)
        d[1] = 10  # bucket 3 -> 0
        d[3] = 30  # unreached -> bucket 1
        idx.on_relaxed(np.array([1, 3], dtype=np.int64), d)
        assert_matches_scans(idx, d, settled)

    def test_on_relaxed_within_bucket_is_noop(self):
        d = np.array([0, 80], dtype=np.int64)
        settled = np.zeros(2, dtype=bool)
        idx = BucketIndex(25, d, settled)
        d[1] = 76  # still bucket 3
        idx.on_relaxed(np.array([1], dtype=np.int64), d)
        assert_matches_scans(idx, d, settled)

    def test_on_settled_empties_and_advances_min(self):
        d = np.array([0, 7, 60], dtype=np.int64)
        settled = np.zeros(3, dtype=bool)
        idx = BucketIndex(25, d, settled)
        settled[[0, 1]] = True
        idx.on_settled(np.array([0, 1], dtype=np.int64))
        assert_matches_scans(idx, d, settled)
        assert idx.min_bucket() == 2
        settled[2] = True
        idx.on_settled(np.array([2], dtype=np.int64))
        assert idx.min_bucket() == NO_BUCKET

    def test_members_repeated_reads_stay_exact(self):
        """Compaction (the `_clean` fast path) must not change results."""
        d = np.array([0, 3, 26, 27, 4], dtype=np.int64)
        settled = np.zeros(5, dtype=bool)
        idx = BucketIndex(25, d, settled)
        first = idx.members(0)
        second = idx.members(0)
        np.testing.assert_array_equal(first, second)
        # Now dirty bucket 0 with a mover and re-read.
        d[2] = 9
        idx.on_relaxed(np.array([2], dtype=np.int64), d)
        np.testing.assert_array_equal(
            idx.members(0), bucket_members(d, settled, 0, 25)
        )

    def test_rebuild_after_distance_raise(self):
        """Restores may raise distances; rebuild() is the lawful reset."""
        d = np.array([0, 7, 60], dtype=np.int64)
        settled = np.zeros(3, dtype=bool)
        idx = BucketIndex(25, d, settled)
        d[1] = INF  # rollback un-reached the vertex
        d[2] = 90
        idx.rebuild(d, settled)
        assert_matches_scans(idx, d, settled)


class TestBucketIndexRandomized:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("delta", [1, 7, 64])
    def test_random_relax_settle_history(self, seed, delta):
        rng = np.random.default_rng(seed)
        n = 200
        d = np.full(n, INF, dtype=np.int64)
        reached = rng.random(n) < 0.6
        d[reached] = rng.integers(0, 500, reached.sum())
        settled = np.zeros(n, dtype=bool)
        idx = BucketIndex(delta, d, settled)
        for _ in range(30):
            op = rng.integers(0, 2)
            if op == 0:
                # Relax: drop distances of a random unsettled subset.
                cand = np.nonzero(~settled)[0]
                if cand.size == 0:
                    break
                pick = np.unique(rng.choice(cand, rng.integers(1, 20)))
                drop = rng.integers(1, 100, pick.size)
                old = np.where(d[pick] < INF, d[pick], 600)
                d[pick] = np.maximum(old - drop, 0)
                idx.on_relaxed(pick, d)
            else:
                # Settle the current minimum bucket, like the engines do.
                k = next_bucket(d, settled, delta)
                if k == NO_BUCKET:
                    break
                members = bucket_members(d, settled, k, delta)
                settled[members] = True
                idx.on_settled(members)
            assert_matches_scans(idx, d, settled)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 40),
        st.integers(1, 12),
    )
    def test_hypothesis_equivalence(self, seed, delta, steps):
        """Satellite 4: index == from-scratch scans after every operation."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 60))
        d = np.full(n, INF, dtype=np.int64)
        reached = rng.random(n) < 0.7
        d[reached] = rng.integers(0, 300, int(reached.sum()))
        settled = np.zeros(n, dtype=bool)
        idx = BucketIndex(delta, d, settled)
        assert_matches_scans(idx, d, settled)
        for _ in range(steps):
            cand = np.nonzero(~settled)[0]
            if cand.size and rng.random() < 0.6:
                pick = np.unique(rng.choice(cand, int(rng.integers(1, 8))))
                old = np.where(d[pick] < INF, d[pick], 400)
                d[pick] = np.maximum(old - rng.integers(1, 80, pick.size), 0)
                idx.on_relaxed(pick, d)
            else:
                k = next_bucket(d, settled, delta)
                if k == NO_BUCKET:
                    break
                members = bucket_members(d, settled, k, delta)
                settled[members] = True
                idx.on_settled(members)
            assert_matches_scans(idx, d, settled)


class TestBucketIndexGuard:
    def test_clean_index_passes(self):
        d = np.array([0, 7, 60], dtype=np.int64)
        settled = np.zeros(3, dtype=bool)
        idx = BucketIndex(25, d, settled)
        g = InvariantGuards(3, 25)
        g.check_bucket_index(idx, d, settled)
        assert g.violations == 0

    def test_tampered_assignment_trips_guard(self):
        d = np.array([0, 7, 60], dtype=np.int64)
        settled = np.zeros(3, dtype=bool)
        idx = BucketIndex(25, d, settled)
        idx._bucket_of[1] = 5  # corrupt the ground-truth table
        g = InvariantGuards(3, 25)
        with pytest.raises(GuardViolation, match="bucket-index equivalence"):
            g.check_bucket_index(idx, d, settled)

    def test_stale_min_bucket_trips_guard(self):
        d = np.array([0, 60], dtype=np.int64)
        settled = np.zeros(2, dtype=bool)
        idx = BucketIndex(25, d, settled)
        # Index misses a relaxation entirely: d says bucket 0, index says 2.
        d[1] = 10
        g = InvariantGuards(2, 25)
        with pytest.raises(GuardViolation, match="bucket-index equivalence"):
            g.check_bucket_index(idx, d, settled)


# ----------------------------------------------------------------------
# Engine-level: the paranoid guard re-proves the equivalence every epoch
# of real solves — also under fault plans and resume-from-checkpoint.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=8, edge_factor=4, params=RMAT1, seed=11)


@pytest.fixture(scope="module")
def machine():
    return MachineConfig(num_ranks=4, threads_per_rank=2)


class TestIndexGuardInSolves:
    def test_paranoid_clean_solve_checks_every_epoch(self, graph, machine):
        cfg = preset("delta", 25).evolve(paranoid=True)
        _, ctx = spmd_delta_stepping(graph, 0, machine, config=cfg)
        assert ctx.guards is not None
        assert ctx.guards.checks > 0
        assert ctx.guards.violations == 0

    def test_paranoid_under_fault_plan(self, graph, machine):
        """Crashes roll rank state back (rebuild path) mid-solve; the guard
        must still find index == scans after every subsequent epoch."""
        plan = FaultPlan(
            seed=3,
            loss_rate=0.15,
            dup_rate=0.05,
            crashes=(RankCrash(rank=1, superstep=3),),
        )
        cfg = preset("delta", 25).evolve(paranoid=True)
        d_ref, _ = spmd_delta_stepping(graph, 0, machine, config=preset("delta", 25))
        d, ctx = spmd_delta_stepping(graph, 0, machine, config=cfg, faults=plan)
        assert np.array_equal(d, d_ref)
        assert ctx.guards is not None and ctx.guards.violations == 0
        assert ctx.guards.checks > 0

    def test_paranoid_resume_from_checkpoint(self, graph, machine, tmp_path):
        """Resume rebuilds the index from restored distances; equivalence
        must hold from the first post-resume epoch onward."""
        cfg = preset("delta", 25).evolve(paranoid=True)
        d_full, _ = spmd_delta_stepping(
            graph, 0, machine, config=cfg, checkpoint_dir=tmp_path
        )
        d_res, ctx = spmd_delta_stepping(
            graph, 0, machine, config=cfg, checkpoint_dir=tmp_path, resume=True
        )
        assert np.array_equal(d_res, d_full)
        assert ctx.guards is not None and ctx.guards.violations == 0


class TestScanBucketIndexHelper:
    def test_no_copy_and_dtype(self):
        """bucket_index hands back np.where's int64 output directly — the
        historical trailing ``.astype(np.int64)`` full-array copy is gone."""
        d = np.array([0, 7, 25, INF], dtype=np.int64)
        out = bucket_index(d, 25)
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, [0, 0, 1, NO_BUCKET])

    def test_no_astype_copy(self):
        import inspect

        source = inspect.getsource(bucket_index)
        assert ".astype" not in source, (
            "bucket_index must not re-copy np.where's int64 output"
        )
