"""Pluggable stepping strategies: who decides what settles next.

The Δ-stepping skeleton the paper builds on (buckets of width Δ, drain
the lowest bucket with short phases, settle it, relax the rest in one
long phase) generalises cleanly: with everything below ``lo`` settled,
repeatedly relaxing the frontier until no changed vertex lands below
``hi`` and then settling every unsettled vertex with ``d < hi`` is exact
for *any* ``hi > lo`` — the standard Dijkstra safety argument, since no
path through a vertex at distance ``>= hi`` can improve a tentative
distance below ``hi``. A :class:`SteppingStrategy` owns exactly that
choice of window plus the policies that hang off it:

- **step selection** — which ``[lo, hi)`` window to drain next
  (:meth:`~SteppingStrategy.next_step` for the orchestrated engine,
  :meth:`~SteppingStrategy.next_step_spmd` for the rank-local one,
  including the next-step collective's accounting charge);
- **edge classification** — the weight threshold below which an edge is
  relaxed eagerly in the short phases
  (:meth:`~SteppingStrategy.classification_width`);
- **relaxation phase policy** — whether a separate long phase exists at
  all (:attr:`~SteppingStrategy.short_phase_only`);
- **termination** — ``next_step`` returning ``None``.

Three families are registered:

``delta``
    The paper's Δ-stepping: fixed-width buckets ``[kΔ, (k+1)Δ)``, short
    edges are ``weight < Δ``, long edges wait for the push/pull long
    phase. This strategy reproduces the historical engines *bit for bit*
    — same scans, same allreduces, same bucket keys — and is the only
    one the IOS/pruning/census machinery (whose maths is Δ-specific)
    composes with. It is also the only user of the incremental
    :class:`~repro.core.bucket_index.BucketIndex` (keyed on fixed Δ).

``radius``
    Radius stepping (Blelloch et al., arXiv 1602.03881): per-vertex
    radius ``r(v)`` = the ``radius_k``-th smallest incident edge weight
    (an O(1) lookup per vertex on the weight-sorted CSR), and each step
    settles everything below ``min over the unsettled frontier of
    (d(v) + r(v)) + 1``. Vertices whose ``radius_k`` nearest edges all
    stay inside the window settle together, so low-diameter regions
    collapse into few steps without a global Δ to mistune.

``rho``
    ρ-stepping (Dong et al., arXiv 2105.06145): a lazy-batched priority
    queue — each step extracts (at least) the ``rho`` closest unsettled
    vertices by setting ``hi`` just past the ρ-th smallest unsettled
    tentative distance (one ``np.partition``, the lazy batching: no
    per-vertex heap discipline). ρ interpolates between Dijkstra
    (ρ = 1) and Bellman-Ford (ρ = n).

Both new families relax *every* edge of an active vertex in the short
phases (classification width ∞ ⇒ zero long edges), so their step is one
drain-and-settle loop with no long phase; exactness then needs no edge
classification argument at all, only the window safety above. Zero-weight
edges and disconnected vertices are handled by the same drain loop —
a changed vertex landing inside the window is simply re-activated.

Strategies are selected by :attr:`SolverConfig.strategy
<repro.core.config.SolverConfig.strategy>` (presets ``radius``/``rho``
wire it through :func:`~repro.core.config.preset`, ``solve_sssp``,
``BatchSolver`` and the CLI) and gated by the conformance suite:
every registered strategy must be bit-identical to
:func:`repro.core.reference.dijkstra_reference` on every fixture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.buckets import NO_BUCKET, next_bucket
from repro.core.distances import INF

__all__ = [
    "Step",
    "SteppingStrategy",
    "DeltaStepping",
    "RadiusStepping",
    "RhoStepping",
    "STRATEGIES",
    "make_strategy",
]


@dataclass(frozen=True)
class Step:
    """One settle window ``[lo, hi)`` chosen by a strategy.

    ``key`` labels the step for tracing, guards and the hybrid-switch
    marker: the bucket id ``k`` for Δ-stepping (where it doubles as the
    bucket-index key), the running step ordinal for the windowed
    families. It is strictly increasing over a solve either way.
    """

    key: int
    lo: int
    hi: int


class SteppingStrategy:
    """Base class: the step-selection seam both engines consume.

    Subclasses override the hooks below; the engines own everything else
    (phases, settling, accounting, checkpoints, hybridization). The
    ``next_step*`` hooks charge their own selection collective — the
    engines charge the preceding unsettled scan — so a strategy with a
    wider collective (ρ-stepping's candidate merge) prices it honestly.
    """

    #: registry name, also the value of ``SolverConfig.strategy``
    name: str = ""
    #: True when the Δ-keyed incremental BucketIndex applies
    uses_bucket_index: bool = False
    #: True when every edge relaxes in short phases (no long phase runs)
    short_phase_only: bool = False

    def __init__(self, config) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def classification_width(self) -> int:
        """Short-edge weight threshold for the context's split tables."""
        raise NotImplementedError

    def prepare(self, ctx) -> None:
        """Orchestrated precompute hook (runs once, before the loop)."""

    def prepare_spmd(self, ctx, states) -> None:
        """SPMD precompute hook (runs once, before the loop)."""

    def next_step(self, ctx, d, settled, index, ordinal: int) -> Step | None:
        """Select the next window from the global arrays (orchestrated).

        Charges the selection allreduce; returns ``None`` at termination.
        """
        raise NotImplementedError

    def next_step_spmd(self, ctx, states, mailbox, ordinal: int) -> Step | None:
        """Select the next window from rank-local state (SPMD).

        Each rank contributes only its own candidate; the mailbox
        collective combines them (and charges the allreduce).
        """
        raise NotImplementedError


class DeltaStepping(SteppingStrategy):
    """Fixed-width buckets ``[kΔ, (k+1)Δ)`` — the paper's algorithm.

    ``next_step`` reproduces the historical next-bucket search exactly
    (same allreduce charge, same ``BucketIndex``/scan split), which is
    what keeps the orchestrated and SPMD engines bit-identical in
    metrics and simulated cost across this refactor.
    """

    name = "delta"
    uses_bucket_index = True

    def classification_width(self) -> int:
        return self.config.delta

    def next_step(self, ctx, d, settled, index, ordinal: int) -> Step | None:
        delta = self.config.delta
        ctx.comm.allreduce(1, phase_kind="bucket")
        k = index.min_bucket() if index is not None else next_bucket(d, settled, delta)
        if k == NO_BUCKET:
            return None
        return Step(key=int(k), lo=int(k) * delta, hi=(int(k) + 1) * delta)

    def next_step_spmd(self, ctx, states, mailbox, ordinal: int) -> Step | None:
        delta = self.config.delta
        k = mailbox.allreduce_min(
            [st.min_unsettled_bucket(delta) for st in states]
        )
        if k >= INF:
            return None
        return Step(key=int(k), lo=int(k) * delta, hi=(int(k) + 1) * delta)


def vertex_radii(graph, k: int) -> np.ndarray:
    """Per-vertex radius: the ``k``-th smallest incident edge weight.

    On a weight-sorted CSR this is the ``min(k, deg(v))``-th entry of
    each adjacency row — one gather, no per-vertex sort. Degree-0
    vertices get radius 0 (they have no frontier to hold back).
    """
    degrees = graph.degrees
    n = graph.num_vertices
    r = np.zeros(n, dtype=np.int64)
    has_edges = degrees > 0
    take = np.minimum(np.int64(k), degrees[has_edges]) - 1
    r[has_edges] = graph.weights[graph.indptr[:-1][has_edges] + take]
    return r


class RadiusStepping(SteppingStrategy):
    """Per-vertex radii feed the window width (arXiv 1602.03881).

    Window: ``hi = min over unsettled finite v of (d(v) + r(v)) + 1``.
    Every vertex ``v`` with ``d(v) < hi - r(v)`` would settle in the
    classic formulation; the ``+ 1`` guarantees progress even when a
    zero-weight incident edge makes ``r(v) = 0`` (the window then still
    clears at least the current minimum). ``lo = 0`` is valid because
    everything below the previous ``hi`` is already settled.
    """

    name = "radius"
    short_phase_only = True

    def __init__(self, config) -> None:
        super().__init__(config)
        self._r: np.ndarray | None = None

    def classification_width(self) -> int:
        from repro.core.config import DELTA_INFINITY

        return DELTA_INFINITY

    def prepare(self, ctx) -> None:
        self._r = vertex_radii(ctx.graph, self.config.radius_k)

    def prepare_spmd(self, ctx, states) -> None:
        # The radius of an owned vertex derives from its own adjacency
        # row, so the full-table compute is rank-local work; each rank
        # only ever reads its own slice.
        self._r = vertex_radii(ctx.graph, self.config.radius_k)

    def _local_candidate(self, d, settled, r) -> int:
        mask = ~settled & (d < INF)
        if not mask.any():
            return int(INF)
        return int((d[mask] + r[mask]).min())

    def next_step(self, ctx, d, settled, index, ordinal: int) -> Step | None:
        ctx.comm.allreduce(1, phase_kind="bucket")
        cand = self._local_candidate(d, settled, self._r)
        if cand >= INF:
            return None
        return Step(key=ordinal, lo=0, hi=cand + 1)

    def next_step_spmd(self, ctx, states, mailbox, ordinal: int) -> Step | None:
        cand = mailbox.allreduce_min(
            [
                self._local_candidate(
                    st.d, st.settled, self._r[st.lo : st.hi]
                )
                for st in states
            ]
        )
        if cand >= INF:
            return None
        return Step(key=ordinal, lo=0, hi=int(cand) + 1)


class RhoStepping(SteppingStrategy):
    """Lazy-batched priority queue with ρ-bounded extraction (arXiv
    2105.06145).

    Each step sets ``hi`` just past the ρ-th smallest unsettled
    tentative distance — one ``np.partition`` over the frontier instead
    of ρ heap pops, the "lazy batching". The selection collective is a
    ρ-length vector allreduce (each rank contributes its ρ smallest
    candidates), charged as such.
    """

    name = "rho"
    short_phase_only = True

    def classification_width(self) -> int:
        from repro.core.config import DELTA_INFINITY

        return DELTA_INFINITY

    def _local_candidates(self, d, settled) -> np.ndarray:
        rho = self.config.rho
        u = d[~settled & (d < INF)]
        if u.size > rho:
            u = np.partition(u, rho - 1)[:rho]
        return u

    def _window_hi(self, merged: np.ndarray) -> int:
        rho = self.config.rho
        if merged.size <= rho:
            return int(merged.max()) + 1
        return int(np.partition(merged, rho - 1)[rho - 1]) + 1

    def next_step(self, ctx, d, settled, index, ordinal: int) -> Step | None:
        ctx.comm.allreduce(self.config.rho, phase_kind="bucket")
        cands = self._local_candidates(d, settled)
        if cands.size == 0:
            return None
        return Step(key=ordinal, lo=0, hi=self._window_hi(cands))

    def next_step_spmd(self, ctx, states, mailbox, ordinal: int) -> Step | None:
        # Rank-local ρ-smallest candidate arrays, merged by a modeled
        # ρ-vector min-allreduce (charged below, same as next_step).
        ctx.comm.allreduce(self.config.rho, phase_kind="bucket")
        merged = np.concatenate(
            [self._local_candidates(st.d, st.settled) for st in states]
        )
        if merged.size == 0:
            return None
        return Step(key=ordinal, lo=0, hi=self._window_hi(merged))


STRATEGIES: dict[str, type[SteppingStrategy]] = {
    "delta": DeltaStepping,
    "radius": RadiusStepping,
    "rho": RhoStepping,
}
"""Registry: ``SolverConfig.strategy`` value → strategy class."""


def make_strategy(config) -> SteppingStrategy:
    """Instantiate the strategy selected by ``config.strategy``."""
    try:
        cls = STRATEGIES[config.strategy]
    except KeyError:
        raise ValueError(
            f"unknown stepping strategy {config.strategy!r}; "
            f"choose from {sorted(STRATEGIES)}"
        ) from None
    return cls(config)
