"""Fig. 3 — Number of phases (a) and relaxations (b) per algorithm.

The paper's Fig. 3 compares Dijkstra (Δ=1), Δ-stepping at Δ ∈ {10, 25, 40},
Hybrid, Prune and Bellman-Ford on both R-MAT families, establishing the
work/phase trade-off of Section II-B:

    work:    Dijkstra <= Δ-stepping <= Bellman-Ford
    phases:  Bellman-Ford <= Δ-stepping <= Dijkstra

with Prune beating even Dijkstra on relaxations and Hybrid approaching
Bellman-Ford on phases.
"""

from __future__ import annotations

import functools

import pytest

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    BENCH_SCALE,
    cached_rmat,
    choose_root,
    default_machine,
    print_table,
)
from repro.analysis.phase_stats import algorithm_comparison

SPECS = [
    ("Dijkstra", "delta", 1),
    ("Del-10", "delta", 10),
    ("Del-25", "delta", 25),
    ("Del-40", "delta", 40),
    ("Hybrid-25", "opt", 25),
    ("Prune-25", "prune", 25),
    ("Bellman-Ford", "bellman-ford", 25),
]


@functools.lru_cache(maxsize=2)
def compute_rows(family: str):
    graph = cached_rmat(BENCH_SCALE, family)
    root = choose_root(graph, seed=0)
    rows = algorithm_comparison(
        graph, root, SPECS, machine=default_machine(8)
    )
    for row in rows:
        row["family"] = family.upper()
    return rows


def _by_name(rows):
    return {r["algorithm"]: r for r in rows}


@pytest.mark.parametrize("family", ["rmat1", "rmat2"])
def test_fig03_tradeoffs(benchmark, family):
    rows = benchmark.pedantic(
        lambda: compute_rows(family), rounds=1, iterations=1
    )
    print_table(rows, f"Fig. 3 — phases and relaxations ({family.upper()})")
    by = _by_name(rows)
    # (a) phase ordering
    assert by["Bellman-Ford"]["phases"] <= by["Del-25"]["phases"]
    assert by["Del-25"]["phases"] <= by["Dijkstra"]["phases"]
    # hybrid approaches Bellman-Ford
    assert by["Hybrid-25"]["phases"] <= 3 * by["Bellman-Ford"]["phases"]
    # (b) work ordering
    assert by["Dijkstra"]["relaxations"] <= by["Del-25"]["relaxations"]
    assert by["Del-25"]["relaxations"] <= by["Bellman-Ford"]["relaxations"]
    # pruning beats Dijkstra (Section III-B headline)
    assert by["Prune-25"]["relaxations"] < by["Dijkstra"]["relaxations"]


if __name__ == "__main__":
    for family in ("rmat1", "rmat2"):
        print_table(
            compute_rows(family),
            f"Fig. 3 — phases and relaxations ({family.upper()})",
        )
