"""Unit tests for solver configuration and presets."""

import pytest

from repro.core.config import DELTA_INFINITY, PRESETS, SolverConfig, preset


class TestSolverConfig:
    def test_defaults(self):
        cfg = SolverConfig()
        assert cfg.delta == 25
        assert not cfg.use_ios and not cfg.use_pruning and not cfg.use_hybrid

    def test_validation(self):
        with pytest.raises(ValueError):
            SolverConfig(delta=0)
        with pytest.raises(ValueError):
            SolverConfig(tau=1.5)
        with pytest.raises(ValueError):
            SolverConfig(pushpull_mode="maybe")
        with pytest.raises(ValueError):
            SolverConfig(pushpull_sequence=("push", "shove"))
        with pytest.raises(ValueError):
            SolverConfig(imbalance_weight=-1)
        with pytest.raises(ValueError):
            SolverConfig(pushpull_estimator="guess")

    def test_bellman_ford_detection(self):
        assert SolverConfig(delta=DELTA_INFINITY).is_bellman_ford
        assert not SolverConfig(delta=25).is_bellman_ford

    def test_derived_heavy_degree(self):
        cfg = SolverConfig()
        assert cfg.derived_heavy_degree(10.0) == 40
        assert SolverConfig(heavy_degree=7).derived_heavy_degree(10.0) == 7
        assert cfg.derived_heavy_degree(0.1) == 8  # floor

    def test_derived_split_degree(self):
        cfg = SolverConfig()
        assert cfg.derived_split_degree(10.0) == 160
        assert SolverConfig(split_degree=99).derived_split_degree(10.0) == 99
        assert cfg.derived_split_degree(0.1) == 64  # floor

    def test_evolve(self):
        cfg = SolverConfig().evolve(delta=7, use_ios=True)
        assert cfg.delta == 7 and cfg.use_ios


class TestPresets:
    def test_all_presets_constructible(self):
        for name in PRESETS:
            cfg = preset(name, 25)
            assert isinstance(cfg, SolverConfig)

    def test_dijkstra_is_delta_one(self):
        assert preset("dijkstra").delta == 1

    def test_bellman_ford_is_delta_infinity(self):
        assert preset("bellman-ford").is_bellman_ford

    def test_del_is_plain(self):
        cfg = preset("delta", 40)
        assert cfg.delta == 40
        assert not cfg.use_pruning and not cfg.use_hybrid

    def test_prune_composition(self):
        cfg = preset("prune", 25)
        assert cfg.use_ios and cfg.use_pruning and not cfg.use_hybrid

    def test_opt_composition(self):
        cfg = preset("opt", 25)
        assert cfg.use_ios and cfg.use_pruning and cfg.use_hybrid
        assert cfg.tau == 0.4

    def test_lb_opt_composition(self):
        cfg = preset("lb-opt", 25)
        assert cfg.intra_lb and not cfg.inter_split

    def test_lb_opt_split_composition(self):
        cfg = preset("lb-opt-split", 25)
        assert cfg.intra_lb and cfg.inter_split

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            preset("quantum")

    def test_case_insensitive(self):
        assert preset("OPT", 25) == preset("opt", 25)
