"""Transportation-style SSSP: large-diameter mesh graphs.

The paper's introduction motivates SSSP with transportation and VLSI
applications. Road-like networks are the *opposite* regime from R-MAT:
near-uniform degree, huge diameter, shortest distances spread over a very
wide range — so Δ-stepping needs many buckets and the hybridization
heuristic (Section III-D) is the optimisation that matters, while pruning
and load balancing matter less. This example routes over a perturbed grid
(city blocks with random congestion weights) and a random geometric graph
(an ad-hoc road network), comparing the algorithm family in this regime.

Run:  python examples/road_network.py
"""

from __future__ import annotations

import numpy as np

from repro import grid_graph, random_geometric_graph, solve_sssp
from repro.core.distances import INF
from repro.util import format_table


def compare_on(graph, root: int, title: str, delta: int = 255) -> None:
    rows = []
    for label, algo, d in [
        ("Dijkstra", "delta", 1),
        (f"Del-{delta}", "delta", delta),
        (f"Prune-{delta}", "prune", delta),
        (f"OPT-{delta}", "opt", delta),
        ("Bellman-Ford", "bellman-ford", delta),
    ]:
        res = solve_sssp(graph, root, algorithm=algo, delta=d,
                         num_ranks=8, threads_per_rank=8, validate=True)
        rows.append(
            {
                "algorithm": label,
                "gteps": res.gteps,
                "buckets": res.metrics.buckets_processed,
                "phases": res.metrics.total_phases,
                "relaxations": res.metrics.total_relaxations,
                "bkt_ms": res.cost.bucket_time * 1e3,
            }
        )
    print(format_table(rows, title))
    print()


def route_extraction(graph, root: int) -> None:
    """Show the per-destination output a routing engine would consume."""
    res = solve_sssp(graph, root, algorithm="opt", delta=255,
                     num_ranks=8, threads_per_rank=8)
    d = res.distances
    far = int(np.argmax(np.where(d < INF, d, -1)))
    print(f"farthest reachable intersection from {root}: {far} "
          f"(cost {int(d[far])})")
    print(f"mean travel cost: {d[d < INF].mean():.1f}; "
          f"buckets processed: {res.metrics.buckets_processed} "
          f"(hybrid switch at bucket {res.metrics.hybrid_switch_bucket})")


if __name__ == "__main__":
    # 1. A 128x128 city grid: weights model per-block congestion.
    city = grid_graph(128, 128, max_weight=255, seed=3)
    compare_on(city, root=0, title="city grid 128x128 (large diameter)")

    # 2. An ad-hoc geometric road network.
    adhoc = random_geometric_graph(12_000, radius=0.02, seed=4)
    # pick a root inside the giant component
    from repro.graph.roots import choose_root

    compare_on(adhoc, root=choose_root(adhoc, seed=1),
               title="random geometric network (12k nodes)")

    route_extraction(city, root=0)
