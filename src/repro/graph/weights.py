"""Edge-weight assignment.

The (proposed) Graph 500 SSSP benchmark assigns each edge an integer weight
drawn uniformly at random from ``[0, 255]``. Section II of the paper requires
strictly positive weights (``w(e) > 0``), so we draw from ``[1, max_weight]``
— the uniform-distribution assumption that the push–pull volume estimator
relies on (Section III-C) is unaffected.

Alternative distributions (exponential, bimodal, constant) are provided for
the weight-sensitivity ablations: the paper's expectation estimator *assumes*
uniform weights, and these generators probe what happens when that
assumption breaks (``benchmarks/bench_ablation_weights.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_weights",
    "exponential_weights",
    "bimodal_weights",
    "constant_weights",
    "reweight",
    "DEFAULT_MAX_WEIGHT",
]

DEFAULT_MAX_WEIGHT = 255
"""The SSSP benchmark's maximum edge weight."""


def uniform_weights(
    num_edges: int,
    max_weight: int = DEFAULT_MAX_WEIGHT,
    *,
    seed: int = 0,
) -> np.ndarray:
    """Draw ``num_edges`` integer weights uniformly from ``[1, max_weight]``.

    Parameters
    ----------
    num_edges:
        Number of weights to draw.
    max_weight:
        Inclusive upper bound; must be at least 1.
    seed:
        Seed for the dedicated :class:`numpy.random.Generator`.
    """
    if max_weight < 1:
        raise ValueError("max_weight must be >= 1")
    if num_edges < 0:
        raise ValueError("num_edges must be non-negative")
    rng = np.random.default_rng(seed)
    return rng.integers(1, max_weight + 1, size=num_edges, dtype=np.int64)


def exponential_weights(
    num_edges: int,
    max_weight: int = DEFAULT_MAX_WEIGHT,
    *,
    mean: float | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Exponentially distributed integer weights in ``[1, max_weight]``.

    Most edges are light, a long tail is heavy — the regime where almost
    every edge is short for moderate Δ, starving the long-edge phases. The
    default mean is ``max_weight / 8``.
    """
    if max_weight < 1:
        raise ValueError("max_weight must be >= 1")
    if num_edges < 0:
        raise ValueError("num_edges must be non-negative")
    rng = np.random.default_rng(seed)
    scale = mean if mean is not None else max_weight / 8
    raw = rng.exponential(scale, size=num_edges)
    return np.clip(raw.astype(np.int64) + 1, 1, max_weight)


def bimodal_weights(
    num_edges: int,
    max_weight: int = DEFAULT_MAX_WEIGHT,
    *,
    light_fraction: float = 0.8,
    seed: int = 0,
) -> np.ndarray:
    """Two-point mixture: ``light_fraction`` of edges at weight 1, the rest
    at ``max_weight``.

    The worst case for the uniform-expectation request estimator: the
    weight mass sits entirely at the extremes, so interpolating the window
    fraction is maximally wrong, while per-vertex histograms capture it.
    """
    if not 0.0 <= light_fraction <= 1.0:
        raise ValueError("light_fraction must be in [0, 1]")
    if max_weight < 1:
        raise ValueError("max_weight must be >= 1")
    if num_edges < 0:
        raise ValueError("num_edges must be non-negative")
    rng = np.random.default_rng(seed)
    heavy = rng.random(num_edges) >= light_fraction
    out = np.ones(num_edges, dtype=np.int64)
    out[heavy] = max_weight
    return out


def constant_weights(num_edges: int, weight: int = 1) -> np.ndarray:
    """All edges at the same weight — SSSP degenerates to (scaled) BFS."""
    if weight < 1:
        raise ValueError("weight must be >= 1")
    if num_edges < 0:
        raise ValueError("num_edges must be non-negative")
    return np.full(num_edges, weight, dtype=np.int64)


def reweight(graph, weights_for_edges, *, seed: int = 0):
    """Replace a graph's weights, keeping both arc directions consistent.

    ``weights_for_edges(count, seed=...)`` is one of the generators above
    (or any callable with that signature); each *undirected* edge draws one
    weight, applied to both of its arcs.
    """
    from repro.graph.builder import from_undirected_edges

    tails, heads, _ = graph.to_edge_list()
    once = tails < heads
    t, h = tails[once], heads[once]
    w = weights_for_edges(int(t.size), seed=seed)
    return from_undirected_edges(t, h, w, graph.num_vertices)
