"""Unit tests for the push/pull long-phase implementations (incl. Fig. 6)."""

import numpy as np
import pytest

from repro.core.buckets import bucket_members
from repro.core.config import SolverConfig
from repro.core.context import make_context
from repro.core.delta_stepping import DeltaSteppingEngine
from repro.core.distances import init_distances
from repro.core.pruning import (
    bucket_census,
    gather_pull_requests,
    gather_push_records,
    later_vertices,
    long_phase_pull,
    long_phase_push,
    member_mask,
)
from repro.core.reference import dijkstra_reference
from repro.runtime.machine import MachineConfig


def ctx_for(graph, *, delta=5, ranks=2, threads=2, **cfg):
    machine = MachineConfig(num_ranks=ranks, threads_per_rank=threads)
    return make_context(graph, machine, SolverConfig(delta=delta, **cfg))


class TestFig6Example:
    """The paper's Fig. 6: push costs 40 total; pull in the second long
    phase costs 10 instead of 30."""

    def _state_after_bucket0(self, ctx, graph):
        d = init_distances(graph.num_vertices, 0)
        settled = np.zeros(graph.num_vertices, dtype=bool)
        # bucket 0 = {root}; no short edges; settle and long-phase push.
        members = bucket_members(d, settled, 0, 5)
        settled[members] = True
        changed, stats = long_phase_push(ctx, d, members, 0)
        return d, settled, stats

    def test_first_long_phase_relaxes_root_edges(self, fig6_graph):
        ctx = ctx_for(fig6_graph)
        d, settled, stats = self._state_after_bucket0(ctx, fig6_graph)
        assert stats["relaxations"] == 5  # the root's clique edges
        # clique vertices now at distance 10 = bucket 2
        assert np.all(d[1:6] == 10)

    def test_second_iteration_push_costs_30(self, fig6_graph):
        ctx = ctx_for(fig6_graph)
        d, settled, _ = self._state_after_bucket0(ctx, fig6_graph)
        members = bucket_members(d, settled, 2, 5)
        settled[members] = True
        _, stats = long_phase_push(ctx, d, members, 2)
        # each clique vertex relaxes 4 clique arcs + 1 root arc + 1 pendant
        assert stats["relaxations"] == 30

    def test_second_iteration_pull_costs_10(self, fig6_graph):
        ctx = ctx_for(fig6_graph)
        d, settled, _ = self._state_after_bucket0(ctx, fig6_graph)
        members = bucket_members(d, settled, 2, 5)
        settled[members] = True
        _, stats = long_phase_pull(ctx, d, settled, members, 2)
        # 5 pendant requests + 5 responses = 10 (the paper's count)
        assert stats["requests"] == 5
        assert stats["responses"] == 5
        assert stats["relaxations"] == 10
        assert np.all(d[6:] == 20)

    def test_push_and_pull_produce_identical_distances(self, fig6_graph):
        for mode in ("push", "pull"):
            ctx = ctx_for(
                fig6_graph, use_pruning=True, pushpull_mode=mode
            )
            d = DeltaSteppingEngine(ctx).run(0)
            assert np.array_equal(d, dijkstra_reference(fig6_graph, 0))


class TestGatherHelpers:
    def test_push_records_cover_all_long_arcs(self, rmat1_small):
        ctx = ctx_for(rmat1_small, delta=25)
        d = dijkstra_reference(rmat1_small, 3)
        members = np.nonzero((d >= 0) & (d < 25))[0]
        src, dst, nd, scanned = gather_push_records(ctx, d, members, 0)
        assert src.size == ctx.long_degrees[members].sum()
        assert np.all(nd == d[src] + 0 + (nd - d[src]))  # nd consistent
        assert scanned.sum() >= src.size

    def test_push_with_ios_includes_outer_short(self, rmat1_small):
        ctx_plain = ctx_for(rmat1_small, delta=25)
        ctx_ios = ctx_for(rmat1_small, delta=25, use_ios=True)
        d = dijkstra_reference(rmat1_small, 3)
        members = np.nonzero(d < 25)[0]
        plain = gather_push_records(ctx_plain, d, members, 0)[0].size
        ios = gather_push_records(ctx_ios, d, members, 0)[0].size
        assert ios >= plain

    def test_pull_requests_respect_eq1(self, rmat1_small):
        ctx = ctx_for(rmat1_small, delta=25)
        d = dijkstra_reference(rmat1_small, 3).copy()
        settled = d < 25
        later = later_vertices(ctx, d, settled, 0)
        req_v, req_u, req_w, gen = gather_pull_requests(ctx, d, later, 0)
        # every request satisfies w < d(v) - k*delta with k = 0
        assert np.all(req_w < d[req_v])
        # and all requests ride long arcs when IOS is off
        assert np.all(req_w >= 25)

    def test_pull_requests_with_ios_include_short_arcs(self, rmat1_small):
        ctx = ctx_for(rmat1_small, delta=25, use_ios=True)
        d = dijkstra_reference(rmat1_small, 3).copy()
        settled = d < 25
        later = later_vertices(ctx, d, settled, 0)
        _, _, req_w, _ = gather_pull_requests(ctx, d, later, 0)
        assert req_w.size == 0 or req_w.min() < 25

    def test_empty_members(self, rmat1_small):
        ctx = ctx_for(rmat1_small)
        d = init_distances(rmat1_small.num_vertices, 3)
        src, dst, nd, scanned = gather_push_records(
            ctx, d, np.empty(0, dtype=np.int64), 0
        )
        assert src.size == 0 and scanned.size == 0

    def test_member_mask(self, rmat1_small):
        ctx = ctx_for(rmat1_small)
        mask = member_mask(ctx, np.array([1, 5, 9]))
        assert mask.sum() == 3 and mask[5]


class TestPhaseAccounting:
    def test_pull_counts_requests_plus_responses(self, fig6_graph):
        ctx = ctx_for(fig6_graph)
        d = init_distances(11, 0)
        settled = np.zeros(11, dtype=bool)
        members = bucket_members(d, settled, 0, 5)
        settled[members] = True
        long_phase_push(ctx, d, members, 0)
        before = ctx.metrics.total_relaxations
        members2 = bucket_members(d, settled, 2, 5)
        settled[members2] = True
        _, stats = long_phase_pull(ctx, d, settled, members2, 2)
        counted = ctx.metrics.total_relaxations - before
        assert counted == stats["requests"] + stats["responses"]

    def test_push_notes_long_phase(self, fig6_graph):
        ctx = ctx_for(fig6_graph)
        d = init_distances(11, 0)
        settled = np.zeros(11, dtype=bool)
        members = bucket_members(d, settled, 0, 5)
        settled[members] = True
        long_phase_push(ctx, d, members, 0)
        assert ctx.metrics.long_phases == 1

    def test_empty_pull_noop(self, path_graph):
        ctx = ctx_for(path_graph, delta=100)
        d = dijkstra_reference(path_graph, 0)
        settled = np.ones(5, dtype=bool)
        changed, stats = long_phase_pull(ctx, d, settled, np.arange(5), 0)
        assert changed.size == 0
        assert stats["relaxations"] == 0


class TestBucketCensus:
    def test_fig6_bucket2_census(self, fig6_graph):
        ctx = ctx_for(fig6_graph)
        d = init_distances(11, 0)
        settled = np.zeros(11, dtype=bool)
        members0 = bucket_members(d, settled, 0, 5)
        settled[members0] = True
        long_phase_push(ctx, d, members0, 0)
        members2 = bucket_members(d, settled, 2, 5)
        settled[members2] = True
        census = bucket_census(ctx, d, settled, members2, 2)
        # clique vertices: 5*4 self arcs (clique), 5 backward (to root),
        # 5 forward (to pendants)
        assert census["self_edges"] == 20
        assert census["backward_edges"] == 5
        assert census["forward_edges"] == 5
        assert census["push_relaxations"] == 30
        assert census["pull_requests"] == 5
        assert census["pull_responses"] == 5
