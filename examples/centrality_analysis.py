"""Network centrality powered by the distributed SSSP solver.

The paper's introduction motivates fast SSSP with complex-network analysis
— Brandes' betweenness and Freeman's closeness measures both reduce to many
single-source shortest-path computations. This example finds the most
central actors of a synthetic social network using the OPT solver as the
SSSP engine, and cross-checks a small instance against networkx.

Run:  python examples/centrality_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import synthetic_social_graph
from repro.apps.centrality import betweenness_centrality, closeness_centrality
from repro.graph.degree import degree_stats
from repro.util import format_table


def main() -> None:
    graph = synthetic_social_graph("orkut", scale=11, seed=7)
    stats = degree_stats(graph)
    print(f"network: n={stats.num_vertices}, m={stats.num_undirected_edges}, "
          f"max degree={stats.max_degree}")

    # Approximate betweenness from 64 sampled sources (Brandes-Pich).
    bc = betweenness_centrality(graph, num_sources=64, seed=1,
                                num_ranks=4, threads_per_rank=8)
    top = np.argsort(bc)[::-1][:10]

    # Closeness of exactly those candidates.
    cc = closeness_centrality(graph, sources=top,
                              num_ranks=4, threads_per_rank=8)

    rows = [
        {
            "vertex": int(v),
            "degree": graph.degree(int(v)),
            "betweenness": bc[v],
            "closeness": cc[int(v)],
        }
        for v in top
    ]
    print(format_table(rows, "top-10 vertices by (approximate) betweenness"))

    # Hubs should dominate the centrality ranking in a scale-free network.
    mean_deg = stats.mean_degree
    hub_share = sum(1 for r in rows if r["degree"] > 2 * mean_deg) / len(rows)
    print(f"\n{hub_share:.0%} of the top-10 are hubs (degree > 2x mean) — "
          "degree and centrality correlate strongly in scale-free graphs")


if __name__ == "__main__":
    main()
