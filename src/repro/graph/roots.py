"""Root (search key) selection.

Graph 500 samples search keys uniformly among vertices with at least one
edge — an isolated root makes the run trivial and the TEPS meaningless.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["choose_root", "choose_roots"]


def choose_roots(graph: CSRGraph, count: int, *, seed: int = 0) -> np.ndarray:
    """Sample ``count`` distinct non-isolated roots (Graph 500 style)."""
    deg = graph.degrees
    candidates = np.nonzero(deg > 0)[0]
    if candidates.size == 0:
        raise ValueError("graph has no edges; no valid root exists")
    rng = np.random.default_rng(seed)
    count = min(count, candidates.size)
    return rng.choice(candidates, size=count, replace=False).astype(np.int64)


def choose_root(graph: CSRGraph, *, seed: int = 0) -> int:
    """Sample one non-isolated root."""
    return int(choose_roots(graph, 1, seed=seed)[0])
