"""Byte-budgeted distance cache with cost-aware eviction (DESIGN.md §11/§12).

One :class:`DistanceCache` serves one (graph, config, machine) triple —
the broker owns exactly one. On a frozen graph the key is simply the
root; a live-graph broker (DESIGN.md §15) keys entries by
``(snapshot_id, root)`` tuples so answers computed against different
graph versions can never alias — :meth:`evict_snapshot` sweeps every
entry (and negative tombstone) of a retired snapshot in one call. Both
key shapes go through one normaliser, so a frozen-graph broker keeps the
plain-int keys unchanged. Values are full distance arrays, stored
read-only so a hit can hand back the cached array itself without a copy:
hits are **bit-identical** to a fresh solve because the cached array
*was* a fresh solve's output, and solves are deterministic. A miss
degrades to an exact solve — the cache can only ever make a query
faster, never different.

Eviction runs under a byte budget (``distances.nbytes`` per entry) and is
**cost-aware**: among the ``evict_scan`` least-recently-used entries, the
one whose solve was cheapest (recorded wall-time ``cost_s``) goes first —
cheap-to-recompute answers are the ones worth dropping. With no recorded
costs this degrades to plain LRU. An entry larger than the whole budget
is rejected outright (counted in ``stats.rejected``) instead of evicting
everything for a value that cannot fit.

Resilience hardening (DESIGN.md §12): with ``checksum=True`` every entry
carries a CRC-32 of its bytes; when ``verify_get`` is on (the broker
raises it while the circuit breaker is degraded) reads re-verify and
**quarantine** corrupted entries — drop them and count a miss rather than
serve bad bytes. ``negative_ttl_s > 0`` enables TTL'd *negative caching*
of timed-out roots, so a root known to blow its deadline fails fast
instead of burning another solve.

All operations are thread-safe; stats mirror into an optional
:class:`~repro.obs.registry.MetricsRegistry`.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["CacheStats", "DistanceCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters plus the live byte footprint."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected: int = 0
    quarantined: int = 0
    negative_hits: int = 0
    bytes_in_use: int = 0
    byte_budget: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_row(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "quarantined": self.quarantined,
            "negative_hits": self.negative_hits,
            "bytes_in_use": self.bytes_in_use,
            "byte_budget": self.byte_budget,
        }


@dataclass
class _Entry:
    distances: np.ndarray
    nbytes: int = field(default=0)
    cost_s: float = 0.0
    crc: int | None = None


def _crc(distances: np.ndarray) -> int:
    return zlib.crc32(distances.tobytes())


def _key(root) -> int | tuple:
    """Normalise a cache key: plain roots to ``int``, ``(snapshot_id,
    root)`` tuples to a tuple of ints. Hashable, no aliasing between the
    two shapes."""
    if isinstance(root, tuple):
        return tuple(int(part) for part in root)
    return int(root)


class DistanceCache:
    """Root → distance-array cache under a byte budget.

    ``byte_budget=0`` disables storage entirely (every ``put`` is
    rejected, every ``get`` misses) — the broker uses that to run a
    cache-less baseline through the identical code path.
    """

    def __init__(
        self,
        byte_budget: int,
        *,
        registry=None,
        checksum: bool = False,
        negative_ttl_s: float = 0.0,
        max_negative: int = 4096,
        clock=time.monotonic,
        evict_scan: int = 8,
    ) -> None:
        if byte_budget < 0:
            raise ValueError("byte_budget must be >= 0")
        if negative_ttl_s < 0:
            raise ValueError("negative_ttl_s must be >= 0")
        if max_negative < 1:
            raise ValueError("max_negative must be >= 1")
        if evict_scan < 1:
            raise ValueError("evict_scan must be >= 1")
        self.byte_budget = int(byte_budget)
        self.checksum = bool(checksum)
        self.negative_ttl_s = float(negative_ttl_s)
        self.max_negative = int(max_negative)
        self.evict_scan = int(evict_scan)
        self.clock = clock
        #: when True (and ``checksum`` is on), every read re-verifies the
        #: entry's CRC; the broker toggles this from the breaker state.
        self.verify_get = False
        self.stats = CacheStats(byte_budget=self.byte_budget)
        self.registry = registry
        self._entries: "OrderedDict[int | tuple, _Entry]" = OrderedDict()
        self._negative: dict[int | tuple, float] = {}  # key -> expiry time
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, root) -> bool:
        with self._lock:
            return _key(root) in self._entries

    def roots(self) -> list:
        """Cached keys (roots or ``(snapshot_id, root)`` tuples),
        least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------
    def _verify_locked(self, root: int, entry: _Entry) -> bool:
        """True when the entry's bytes still match its CRC (or checking
        is off); quarantines and drops the entry otherwise."""
        if not (self.checksum and self.verify_get) or entry.crc is None:
            return True
        if _crc(entry.distances) == entry.crc:
            return True
        del self._entries[root]
        self.stats.bytes_in_use -= entry.nbytes
        self.stats.quarantined += 1
        self._mirror("serve_cache_quarantined_total", 1)
        self._gauge()
        return False

    def get(self, root: int) -> np.ndarray | None:
        """The cached distance array for ``root`` (read-only), or None.

        A hit refreshes the entry's LRU position. Misses and hits are
        both counted — the hit rate is the headline cache metric. A
        checksum mismatch under ``verify_get`` quarantines the entry and
        counts a miss.
        """
        root = _key(root)
        with self._lock:
            entry = self._entries.get(root)
            if entry is None or not self._verify_locked(root, entry):
                self.stats.misses += 1
                self._mirror("serve_cache_misses_total", 1)
                return None
            self._entries.move_to_end(root)
            self.stats.hits += 1
            self._mirror("serve_cache_hits_total", 1)
            return entry.distances

    def peek(self, root: int) -> np.ndarray | None:
        """Like :meth:`get` but touches neither stats nor LRU order
        (quarantine still applies under ``verify_get``)."""
        root = _key(root)
        with self._lock:
            entry = self._entries.get(root)
            if entry is None or not self._verify_locked(root, entry):
                return None
            return entry.distances

    def _pick_victim(self) -> int:
        """Root to evict: the cheapest-to-recompute entry among the
        ``evict_scan`` least-recently-used ones (lock held, non-empty).
        ``min`` is stable, so equal costs fall back to pure LRU."""
        window = []
        for root, entry in self._entries.items():
            window.append((root, entry.cost_s))
            if len(window) >= self.evict_scan:
                break
        return min(window, key=lambda item: item[1])[0]

    def put(self, root: int, distances: np.ndarray, cost_s: float = 0.0) -> bool:
        """Insert ``root``'s distances; returns False when rejected.

        The array is stored as a read-only view (no copy) so the caller
        must not mutate it afterwards — the broker hands out the same
        array to result futures, which makes hits bit-identical by
        construction. ``cost_s`` records the solve wall-time that
        produced the entry and drives cost-aware eviction. Evicts until
        the budget holds.
        """
        root = _key(root)
        distances = np.asarray(distances)
        distances.setflags(write=False)
        nbytes = int(distances.nbytes)
        crc = _crc(distances) if self.checksum else None
        with self._lock:
            if nbytes > self.byte_budget:
                self.stats.rejected += 1
                self._mirror("serve_cache_rejected_total", 1)
                return False
            old = self._entries.pop(root, None)
            if old is not None:
                self.stats.bytes_in_use -= old.nbytes
            while (
                self._entries
                and self.stats.bytes_in_use + nbytes > self.byte_budget
            ):
                victim = self._entries.pop(self._pick_victim())
                self.stats.bytes_in_use -= victim.nbytes
                self.stats.evictions += 1
                self._mirror("serve_cache_evictions_total", 1)
            self._entries[root] = _Entry(distances, nbytes, float(cost_s), crc)
            self.stats.bytes_in_use += nbytes
            self.stats.insertions += 1
            self._negative.pop(root, None)  # a fresh answer clears the tombstone
            if self._negative:
                # Reap *other* roots' expired tombstones too — without
                # this, entries for roots never probed again would
                # accumulate forever (each root's tombstone used to be
                # dropped only when that exact root was re-probed).
                self._sweep_negative_locked(self.clock())
            self._gauge()
            return True

    def audit(self) -> list[int]:
        """Verify every entry's CRC (regardless of ``verify_get``);
        quarantine and return the roots that failed. No-op without
        ``checksum``."""
        if not self.checksum:
            return []
        bad: list[int] = []
        with self._lock:
            for root in list(self._entries):
                entry = self._entries[root]
                if entry.crc is not None and _crc(entry.distances) != entry.crc:
                    del self._entries[root]
                    self.stats.bytes_in_use -= entry.nbytes
                    self.stats.quarantined += 1
                    self._mirror("serve_cache_quarantined_total", 1)
                    bad.append(root)
            if bad:
                self._gauge()
        return bad

    # ------------------------------------------------------------------
    def _sweep_negative_locked(self, now: float) -> None:
        """Drop expired tombstones (lock held). Cost is bounded by
        ``max_negative``, which caps the map size."""
        expired = [r for r, expiry in self._negative.items() if now >= expiry]
        for r in expired:
            del self._negative[r]

    def note_timeout(self, root: int) -> None:
        """Record ``root`` as recently timed out (negative cache).

        For ``negative_ttl_s`` seconds, :meth:`negative` reports True and
        the broker fails matching requests fast instead of re-burning a
        solve. Expired tombstones of *other* roots are reaped here, and
        the map is capped at ``max_negative`` entries (soonest-to-expire
        evicted first), so a workload touching many distinct timed-out
        roots once cannot grow the map without bound. No-op when
        negative caching is disabled."""
        if self.negative_ttl_s <= 0:
            return
        with self._lock:
            now = self.clock()
            self._sweep_negative_locked(now)
            self._negative[_key(root)] = now + self.negative_ttl_s
            while len(self._negative) > self.max_negative:
                soonest = min(self._negative, key=self._negative.__getitem__)
                del self._negative[soonest]

    def negative(self, root: int, *, count: int = 0) -> bool:
        """Whether ``root`` is under a live negative-cache tombstone.

        A bare probe is a *peek*: it touches no stats, so drain paths and
        repeated checks cannot inflate the negative-hit counters. When
        the caller actually sheds work on a live tombstone it passes
        ``count`` — the number of requests failed fast — and the stats
        (and the mirrored ``serve_cache_negative_hits_total``) advance by
        exactly that, i.e. once per shed request."""
        if self.negative_ttl_s <= 0:
            return False
        root = _key(root)
        with self._lock:
            expiry = self._negative.get(root)
            if expiry is None:
                return False
            if self.clock() >= expiry:
                del self._negative[root]
                return False
            if count > 0:
                self.stats.negative_hits += count
                self._mirror("serve_cache_negative_hits_total", count)
            return True

    def negative_size(self) -> int:
        """Live tombstone-map entry count (expired entries included
        until the next sweep)."""
        with self._lock:
            return len(self._negative)

    def evict_snapshot(self, snapshot_id: int) -> int:
        """Drop every entry and negative tombstone keyed on ``snapshot_id``.

        Applies to tuple-keyed ``(snapshot_id, root)`` entries only —
        plain-int keys (frozen-graph brokers) are untouched. Returns the
        number of distance entries dropped; drops count as evictions
        (the entries were retired by policy, not corrupted)."""
        sid = int(snapshot_id)
        dropped = 0
        with self._lock:
            stale = [
                key
                for key in self._entries
                if isinstance(key, tuple) and key[0] == sid
            ]
            for key in stale:
                entry = self._entries.pop(key)
                self.stats.bytes_in_use -= entry.nbytes
                self.stats.evictions += 1
                dropped += 1
            if dropped:
                self._mirror("serve_cache_evictions_total", dropped)
            for key in [
                key
                for key in self._negative
                if isinstance(key, tuple) and key[0] == sid
            ]:
                del self._negative[key]
            if dropped:
                self._gauge()
        return dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._negative.clear()
            self.stats.bytes_in_use = 0
            self._gauge()

    # ------------------------------------------------------------------
    def _mirror(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.inc(name, value)

    def _gauge(self) -> None:
        if self.registry is not None:
            self.registry.set_gauge(
                "serve_cache_bytes",
                self.stats.bytes_in_use,
                help="live byte footprint of the distance cache",
            )
            self.registry.set_gauge(
                "serve_cache_entries",
                len(self._entries),
                help="live entry count of the distance cache",
            )
