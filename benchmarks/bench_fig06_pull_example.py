"""Fig. 6 — The pull-model benefit on the paper's example graph.

Root -10- 5-clique -10- five pendant vertices, Δ = 5. The push-only run
costs 40 relaxations over three long phases (5 + 30 + 5); applying the pull
model in the second iteration drops its cost from 30 to 10 (5 requests + 5
responses), for a 20-relaxation total — exactly the numbers in the figure.
"""

from __future__ import annotations

import functools

import numpy as np

import sys
from pathlib import Path

if __package__ in (None, ""):  # standalone execution: python benchmarks/bench_*.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import default_machine, print_table
from repro.core.config import SolverConfig
from repro.core.solver import solve_sssp
from repro.graph.builder import from_undirected_edges


def fig6_graph():
    clique = np.arange(1, 6)
    pend = np.arange(6, 11)
    cu, cv = np.triu_indices(5, k=1)
    tails = np.concatenate([np.zeros(5, dtype=np.int64), clique[cu], clique])
    heads = np.concatenate([clique, clique[cv], pend])
    weights = np.full(tails.size, 10, dtype=np.int64)
    return from_undirected_edges(tails, heads, weights, 11)


@functools.lru_cache(maxsize=1)
def compute_rows():
    graph = fig6_graph()
    machine = default_machine(2, threads_per_rank=2)
    rows = []
    for label, seq in [
        ("push-push-push", ("push", "push", "push")),
        ("push-pull-push", ("push", "pull", "push")),
    ]:
        cfg = SolverConfig(
            delta=5, use_pruning=True,
            pushpull_mode="sequence", pushpull_sequence=seq,
        )
        res = solve_sssp(graph, 0, algorithm=label, config=cfg, machine=machine,
                         validate=True)
        per_bucket = [s["relaxations"] for s in res.metrics.per_bucket_stats]
        rows.append(
            {
                "decisions": label,
                "bucket0": per_bucket[0],
                "bucket2": per_bucket[1],
                "bucket4": per_bucket[2],
                "total_relaxations": res.metrics.total_relaxations,
            }
        )
    return rows


def test_fig06_pull_benefit(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(rows, "Fig. 6 — push vs pull on the example graph (Δ=5)")
    push, mixed = rows
    # the paper's exact numbers
    assert (push["bucket0"], push["bucket2"], push["bucket4"]) == (5, 30, 5)
    assert push["total_relaxations"] == 40
    assert mixed["bucket2"] == 10  # 5 requests + 5 responses
    assert mixed["total_relaxations"] == 20


if __name__ == "__main__":
    print_table(compute_rows(), "Fig. 6 — push vs pull on the example graph")
